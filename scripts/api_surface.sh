#!/usr/bin/env bash
# Public API surface snapshot. Extracts every `pub fn/struct/enum/trait/
# type/const` declaration line from the facade and workspace crates,
# normalizes it, and compares against the committed snapshot in
# docs/api-surface.txt. CI runs the default check mode and fails on drift
# so API changes are always a visible, reviewed diff; after an intentional
# change, run `scripts/api_surface.sh --update` and commit the result.
set -euo pipefail
cd "$(dirname "$0")/.."

SNAPSHOT=docs/api-surface.txt

generate() {
    # One line per declaration, `path: signature`. Line numbers are
    # dropped and bodies trimmed so the snapshot only churns when a
    # signature actually changes. Multi-line signatures contribute their
    # first line, which is enough to detect drift.
    grep -r --include='*.rs' -E '^[[:space:]]*pub (async )?(fn|struct|enum|trait|type|const) ' \
        src crates/*/src \
        | sed -E 's|^([^:]+):[[:space:]]*|\1: |; s/[[:space:]]+/ /g; s/ ?\{.*$//; s/;$//; s/ $//' \
        | LC_ALL=C sort
}

case "${1:-check}" in
--update)
    generate > "$SNAPSHOT"
    echo "api surface: snapshot updated ($(wc -l < "$SNAPSHOT") declarations)"
    ;;
check)
    if [[ ! -f "$SNAPSHOT" ]]; then
        echo "api surface: $SNAPSHOT missing — run scripts/api_surface.sh --update" >&2
        exit 1
    fi
    if ! diff -u "$SNAPSHOT" <(generate); then
        echo >&2
        echo "api surface: drift detected against $SNAPSHOT." >&2
        echo "If the API change is intentional, run scripts/api_surface.sh --update" >&2
        echo "and commit the refreshed snapshot." >&2
        exit 1
    fi
    echo "api surface: clean ($(wc -l < "$SNAPSHOT") declarations)"
    ;;
*)
    echo "usage: scripts/api_surface.sh [--update]" >&2
    exit 2
    ;;
esac
