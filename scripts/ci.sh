#!/usr/bin/env bash
# Full local CI: format, lint, build, test, docs, quick experiments.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt =="
cargo fmt --all --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== build (all targets) =="
cargo build --workspace --all-targets

echo "== tests =="
cargo test --workspace

echo "== docs =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "== experiments (quick smoke) =="
cargo run -p mc-bench --release --bin experiments -- all --quick > /dev/null

echo "CI OK"
