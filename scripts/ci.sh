#!/usr/bin/env bash
# Full local CI: format, lint, build, test, docs, quick experiments.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt =="
cargo fmt --all --check

echo "== api surface =="
# Declaration-level snapshot of the public API; drift fails until the
# snapshot is refreshed with scripts/api_surface.sh --update.
scripts/api_surface.sh

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== build (all targets) =="
cargo build --workspace --all-targets

echo "== deprecation-free build =="
# The PR-5..PR-10 API redesign removed every #[deprecated] item; this leg
# keeps the workspace clean of both new deprecations and uses of any
# deprecated std/vendored API.
RUSTFLAGS="-D deprecated" cargo check --workspace --all-targets

echo "== tests =="
cargo test --workspace

echo "== docs =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "== experiments (quick smoke) =="
cargo run -p mc-bench --release --bin experiments -- all --quick > /dev/null

echo "== lab conformance (fixed-seed campaign) =="
# Sim engine vs real-thread lab runtime vs mc-check replay: 10^4 seeds per
# protocol over the bounded adversary matrix; any divergence exits nonzero.
cargo run -p mc-bench --release --bin lab_explore -- --seeds 10000

echo "== engine throughput (pooling smoke) =="
# Sustained ReplicatedLog append-apply loop plus a ConsensusEngine submit
# stream: exits nonzero unless RSS after 10x the warm-up volume stays
# within 5% of the warm-up RSS, pool hit rate exceeds 90%, and every slot
# instance shares the log's validated options allocation.
cargo run -p mc-bench --release --bin engine_throughput -- --warmup 5000
test -s BENCH_engine_throughput.json

echo "== service throughput (batching gate) =="
# Pipelined service vs per-call submit at 8 producer threads, both legs
# with a streaming recorder attached, best of 3 trials per leg: exits
# nonzero unless the service sustains >= 1.5x ops/sec (the gate is looser
# than the ~4x measured on idle hardware so shared-runner noise cannot
# flake it; the report carries the strict measured speedup) and the
# proposal count reconciles exactly on every trial.
cargo run -p mc-bench --release --bin service_throughput -- --ops 20000
test -s BENCH_service_throughput.json

echo "== store throughput (state-machine SLO gate) =="
# Replicated KV store end to end: the open-loop leg must sustain >= 1M
# applied commands/sec across 1.25M distinct client sessions (telemetry
# reconciled exactly), and the closed-loop call p99 must stay under 20ms
# at 8 synchronous clients. Both gates are far looser than the ~2.5-3M/s
# and sub-millisecond p99 measured on idle hardware so shared-runner
# noise cannot flake them; the report carries the strict figures.
cargo run -p mc-bench --release --bin store_throughput
test -s BENCH_store_throughput.json

echo "== graph checker (n=3 sweep) =="
# Graph-based model checker over every composed protocol at n=3 (full
# adversary-choice tree, symmetry-reduced), the path engine as n=2
# cross-validation oracle, and the lab replaying the negative control's
# minimal counterexample. The state budget guards against state-space
# regressions: exhaustion fails the campaign.
cargo run -p mc-bench --release --bin check_campaign -- --state-budget 2000000 > /dev/null
test -s BENCH_check_campaign.json

echo "== chaos campaign (exactly-once under worker failure) =="
# Chaos plan x supervision policy sweep over the service: seeded worker
# panics at drain boundaries, mid-drain stalls, and register faults. Every
# submitted proposal must decide exactly once (zero lost, zero duplicate
# ledger entries, restarts within budget), recovery latency quantiles land
# in BENCH_chaos_recovery.json, and the supervised service with an empty
# chaos plan must sustain >= 0.9x the legacy restart_budget=0 throughput
# (the report carries the measured ratio; the gate is looser than the
# ~1.0x measured on idle hardware so shared-runner noise cannot flake it).
cargo run -p mc-bench --release --bin chaos_campaign -- --seeds 5 --min-ratio 0.9 > chaos_campaign.jsonl
test -s chaos_campaign.jsonl
test -s BENCH_chaos_recovery.json

echo "== coin campaign (portfolio δ̂ reconciliation) =="
# Shared-coin portfolio x adversary-class matrix: every voting-coin cell's
# measured agreement rate must clear twice the per-side theory δ lower
# bound (Wilson 95%), the local coin must reproduce its exact 2^{1-n}
# agreement probability, and the graph engine must exhaustively certify
# CoinConciliator(voting coin) at n=3 plus the full coin-built chain at
# n=2 under pinned vote streams. Trials are bounded for CI wall-clock; the
# state budget must stay >= 2000000 so the n=3 certificates never truncate.
cargo run -p mc-bench --release --bin coin_campaign -- --trials 120 --state-budget 2000000
test -s BENCH_coin_campaign.json

echo "== fault campaign (degradation smoke) =="
# Fault class x rate x protocol sweep over fault-injected lab runs: safety
# must hold with zero violations in every cell, bounded consensus must
# terminate on every seed, and measured fallback rates must reconcile with
# theory::fallback_probability. One machine-readable JSON line per cell on
# stdout; nonzero exit on any violation.
cargo run -p mc-bench --release --bin fault_campaign -- --seeds 1000 > fault_campaign.jsonl
test -s fault_campaign.jsonl

echo "CI OK"
