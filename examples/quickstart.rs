//! Quickstart: wait-free randomized consensus among real threads.
//!
//! Eight threads propose conflicting values; the consensus object (the
//! paper's `R₋₁; R₀; C₁; R₁; …` construction on std atomics) makes them all
//! return the same proposal.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use modular_consensus::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let n = 8;

    // --- Binary consensus ---------------------------------------------
    let consensus = Arc::new(Consensus::builder().n(n).build());
    let handles: Vec<_> = (0..n as u64)
        .map(|t| {
            let c = Arc::clone(&consensus);
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(t);
                let proposal = t % 2;
                let decision = c.decide(proposal, &mut rng);
                (t, proposal, decision)
            })
        })
        .collect();
    println!("binary consensus among {n} threads:");
    let mut agreed = None;
    for h in handles {
        let (t, proposal, decision) = h.join().expect("thread panicked");
        println!("  thread {t}: proposed {proposal}, decided {decision}");
        assert_eq!(
            *agreed.get_or_insert(decision),
            decision,
            "agreement violated!"
        );
    }
    println!("  -> all threads decided {}\n", agreed.unwrap());

    // --- 100-valued consensus ------------------------------------------
    let consensus = Arc::new(Consensus::builder().n(n).values(100).build());
    println!(
        "multivalued consensus (m = 100, binomial quorums, capacity {}):",
        consensus.capacity()
    );
    let handles: Vec<_> = (0..n as u64)
        .map(|t| {
            let c = Arc::clone(&consensus);
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(1000 + t);
                c.decide(t * 11, &mut rng)
            })
        })
        .collect();
    let decisions: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    println!("  decisions: {decisions:?}");
    assert!(decisions.windows(2).all(|w| w[0] == w[1]));
    println!(
        "  -> agreed on {} using {} protocol stages",
        decisions[0],
        consensus.stages_used()
    );

    // --- Typed API ------------------------------------------------------
    let consensus = Arc::new(TypedConsensus::<bool>::new(2));
    let peer = {
        let c = Arc::clone(&consensus);
        std::thread::spawn(move || c.decide(true, &mut SmallRng::seed_from_u64(1)))
    };
    let mine = consensus.decide(false, &mut SmallRng::seed_from_u64(2));
    let theirs = peer.join().unwrap();
    println!("\ntyped consensus over bool: me={mine}, peer={theirs}");
    assert_eq!(mine, theirs);
}
