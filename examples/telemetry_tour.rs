//! A tour of the telemetry layer: run consensus on both substrates with
//! recorders attached, then read the histograms against the paper's
//! Theorem 7 bounds.
//!
//! Three stops:
//!
//! 1. **Runtime**: many rounds of real-thread binary consensus with an
//!    [`AggregatingRecorder`] and the `R₋₁; R₀` fast path disabled (so the
//!    conciliators actually run), checking the probability-doubling round
//!    histogram against the `2⌈lg n⌉ + O(1)` individual-work bound of
//!    Theorem 7 and printing decide-latency quantiles.
//! 2. **Simulator**: one traced run replayed through the same recorder
//!    type, reconciled op-for-op against the engine's own `WorkMetrics`.
//! 3. **Export**: the runtime snapshot rendered as text, JSON, and
//!    Prometheus exposition.
//!
//! Run with: `cargo run --release --example telemetry_tour`

use std::sync::{Arc, Barrier};

use modular_consensus::analysis::theory;
use modular_consensus::core::protocol::ConsensusBuilder;
use modular_consensus::runtime::Consensus;
use modular_consensus::sim::adversary::RandomScheduler;
use modular_consensus::sim::harness::{self, inputs};
use modular_consensus::sim::{observe, EngineConfig};
use modular_consensus::telemetry::{AggregatingRecorder, Recorder};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let n = 8usize;
    let rounds = 60u64;

    // ── Stop 1: real threads, aggregated events ────────────────────────
    println!("── runtime: {rounds} rounds of binary consensus, n = {n} ──");
    let agg = Arc::new(AggregatingRecorder::new());
    for round in 0..rounds {
        // No R₋₁;R₀ prefix: all processes are released at once, but under
        // the benign OS scheduler the fast path would still absorb nearly
        // every decide, leaving nothing for the conciliator histograms
        // this tour is about.
        let consensus = Arc::new(
            Consensus::builder()
                .n(n)
                .fast_path(false)
                .recorder(Arc::clone(&agg) as Arc<dyn Recorder>)
                .build(),
        );
        let barrier = Arc::new(Barrier::new(n));
        let handles: Vec<_> = (0..n as u64)
            .map(|t| {
                let c = Arc::clone(&consensus);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(round * 1_000 + t);
                    barrier.wait();
                    c.decide((t + round) % 2, &mut rng)
                })
            })
            .collect();
        let decisions: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(decisions.windows(2).all(|w| w[0] == w[1]), "agreement");
    }

    let decisions = agg.decisions();
    assert_eq!(decisions, rounds * n as u64);
    println!("decisions          : {decisions}");
    println!(
        "conciliator rounds : {} across {} prob-writes ({} landed)",
        agg.conciliator_rounds(),
        agg.prob_writes_attempted(),
        agg.prob_writes_performed()
    );
    assert!(agg.conciliator_rounds() > 0, "conciliators must have run");

    // Theorem 7: each conciliator call costs at most 2⌈lg n⌉ + O(1)
    // operations, so the probability-doubling round index is bounded by
    // ⌈lg n⌉ plus a small constant. The OS scheduler is far kinder than
    // the adversary the bound is proved against, so a generous slack
    // suffices to catch instrumentation bugs without flaking.
    let lg_n = theory::ceil_lg(n as u64);
    let max_round = agg.max_round();
    println!("max doubling round : {max_round} (⌈lg n⌉ = {lg_n})");
    assert!(
        max_round <= 2 * lg_n + 8,
        "round {max_round} way past the Theorem 7 regime"
    );

    let stage_hist = agg.rounds_to_decide();
    println!(
        "deciding stage     : mean {:.2}, p99 ≤ {}, max {}",
        stage_hist.mean(),
        stage_hist.quantile_upper(0.99),
        stage_hist.max()
    );
    let latency = agg.decide_latency_ns();
    println!(
        "decide latency     : median ≤ {}ns, p99 ≤ {}ns",
        latency.quantile_upper(0.5),
        latency.quantile_upper(0.99)
    );

    // ── Stop 2: the simulator speaks the same schema ───────────────────
    println!("\n── simulator: traced run replayed through a recorder ──");
    let spec = ConsensusBuilder::binary().build();
    let ins = inputs::alternating(n, 2);
    let out = harness::run_object(
        &spec,
        &ins,
        &mut RandomScheduler::new(7),
        7,
        &EngineConfig::default().with_trace(),
    )
    .expect("sim run");
    let sim_agg = AggregatingRecorder::new();
    let emitted = observe::export_run(7, out.trace.as_ref(), &out.metrics, &sim_agg);
    println!("events replayed    : {emitted}");
    println!("engine metrics     : {}", out.metrics);

    // Exact reconciliation: the replayed event stream carries the same
    // counts the engine tallied natively.
    assert_eq!(sim_agg.ops(), out.metrics.total_work());
    assert_eq!(sim_agg.individual_ops(), out.metrics.individual_work());
    assert_eq!(sim_agg.per_process_ops(), out.metrics.per_process);
    assert_eq!(
        sim_agg.prob_writes_attempted(),
        out.metrics.prob_writes_attempted
    );
    assert_eq!(
        sim_agg.prob_writes_performed(),
        out.metrics.prob_writes_performed
    );
    println!("reconciliation     : event stream == WorkMetrics ✓");

    // ── Stop 3: snapshot export formats ────────────────────────────────
    println!("\n── snapshot of one more instrumented runtime object ──");
    let consensus = Arc::new(Consensus::builder().n(n).build());
    let handles: Vec<_> = (0..n as u64)
        .map(|t| {
            let c = Arc::clone(&consensus);
            std::thread::spawn(move || c.decide(t % 2, &mut SmallRng::seed_from_u64(t)))
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = consensus.telemetry().snapshot();
    println!("{}", snap.to_text());
    let json = snap.to_json();
    modular_consensus::telemetry::json::validate(&json).expect("snapshot JSON is valid");
    println!("json bytes         : {}", json.len());
    let prom = snap.to_prometheus();
    println!(
        "prometheus         : {} metric lines",
        prom.lines().filter(|l| !l.starts_with('#')).count()
    );
}
