//! Exhaustive checking: prove safety over *every* schedule, and compute the
//! exact worst-case agreement probability at n = 2.
//!
//! The simulator samples executions; the `mc-check` explorer enumerates
//! them. For small systems that turns statistical confidence into proof
//! (within the step bound) — and turns Theorem 7's inequality into an exact
//! number.
//!
//! Run with: `cargo run --release --example exhaustive_check`

use std::sync::Arc;

use modular_consensus::analysis::theory;
use modular_consensus::check::{CheckConfig, Explorer};
use modular_consensus::prelude::*;

fn main() {
    // 1. Exhaustive safety of the binary ratifier (Theorem 8) at n = 3.
    let ratifier_cfg = CheckConfig {
        check_acceptance: true,
        ..CheckConfig::default()
    };
    for inputs in [vec![0u64, 1, 0], vec![1, 1, 1]] {
        let report = Explorer::new(Ratifier::binary(), inputs.clone())
            .with_config(ratifier_cfg.clone())
            .verify_safety()
            .expect("explorable");
        println!(
            "binary ratifier, inputs {:?}: {} interleavings, {}",
            inputs,
            report.complete_paths,
            if report.is_exhaustive_pass() {
                "validity + coherence + acceptance hold on ALL of them"
            } else {
                "VIOLATION FOUND"
            }
        );
    }

    // 2. Exact worst-case agreement of the impatient conciliator at n = 2.
    let value = Explorer::new(FirstMoverConciliator::impatient(), vec![0, 1])
        .worst_case_agreement()
        .expect("fully explorable at n = 2");
    let bound = theory::impatient_agreement_lower_bound();
    println!(
        "\nimpatient conciliator, n = 2, split inputs:\n\
         exact worst-case agreement δ* = {:.4}  (over {} executions, {} truncated)\n\
         Theorem 7's analytic bound    δ ≥ {:.4}\n\
         the closed-form analysis is {:.1}x below the true two-process value",
        value.probability,
        value.complete_paths,
        value.truncated,
        bound,
        value.probability / bound,
    );

    // 3. A deliberately broken "ratifier" (scan skipped) is caught with a
    //    witness schedule.
    use modular_consensus::model::{
        Action, Ctx, DecidingObject, Decision, InstantiateCtx, Op, ProcessId, RegisterId, Response,
        Session,
    };
    #[derive(Clone)]
    struct NoScanRatifier;
    struct Obj {
        reg: RegisterId,
    }
    struct Sess {
        reg: RegisterId,
        input: u64,
    }
    impl DecidingObject for Obj {
        fn session(&self, _pid: ProcessId) -> Box<dyn Session + Send> {
            Box::new(Sess {
                reg: self.reg,
                input: 0,
            })
        }
    }
    impl Session for Sess {
        fn begin(&mut self, input: u64, _ctx: &mut Ctx<'_>) -> Action {
            self.input = input;
            Action::Invoke(Op::Write {
                reg: self.reg,
                value: input,
            })
        }
        fn poll(&mut self, _r: Response, _ctx: &mut Ctx<'_>) -> Action {
            // Decides without scanning for conflicts — unsound.
            Action::Halt(Decision::decide(self.input))
        }
    }
    impl ObjectSpec for NoScanRatifier {
        fn instantiate(&self, ctx: &mut InstantiateCtx<'_>) -> std::sync::Arc<dyn DecidingObject> {
            Arc::new(Obj {
                reg: ctx.alloc.alloc_block(1),
            })
        }
        fn name(&self) -> String {
            "no-scan-ratifier".into()
        }
    }
    let report = Explorer::new(NoScanRatifier, vec![0, 1])
        .verify_safety()
        .expect("explorable");
    let (path, violation) = report.violation.expect("the checker must catch this");
    println!(
        "\nbroken ratifier (scan skipped): caught after {} paths\n\
         violation: {violation}\n\
         witness schedule: {:?}",
        report.complete_paths, path,
    );
}
