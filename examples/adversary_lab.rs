//! Adversary lab: measure the impatient conciliator's agreement probability
//! under the whole adversary hierarchy of §2.1.
//!
//! Theorem 7 guarantees agreement with probability at least
//! `(1 − e^{−1/4})/4 ≈ 0.0553` against *any* location-oblivious adversary.
//! This example runs thousands of trials under benign schedulers and under
//! attackers that actively try to break the race, and prints the measured
//! rates with Wilson confidence intervals next to the paper's bound.
//!
//! Run with: `cargo run --release --example adversary_lab`

use modular_consensus::analysis::{theory, wilson_interval, Table};
use modular_consensus::prelude::*;
use modular_consensus::sim::Adversary;

fn main() {
    let n = 16;
    let trials = 2_000;
    let delta = theory::impatient_agreement_lower_bound();

    type Maker = (&'static str, fn(u64, usize) -> Box<dyn Adversary>);
    let schedulers: Vec<Maker> = vec![
        ("round-robin", |_, _| Box::new(adversary::RoundRobin::new())),
        ("random", |s, _| {
            Box::new(adversary::RandomScheduler::new(s))
        }),
        ("bursty", |_, n| {
            Box::new(adversary::FixedOrder::bursty(n, 4))
        }),
        ("write-blocker (value-oblivious)", |_, _| {
            Box::new(adversary::WriteBlocker::new())
        }),
        ("impatience-exploiter (location-oblivious)", |_, _| {
            Box::new(adversary::ImpatienceExploiter::new())
        }),
        ("split-keeper (adaptive)", |s, _| {
            Box::new(adversary::SplitKeeper::new(s))
        }),
    ];

    println!(
        "Impatient first-mover conciliator, n = {n}, {trials} trials per adversary.\n\
         Theorem 7 lower bound: δ ≥ {delta:.4}\n"
    );

    let mut table = Table::new(
        "Agreement probability by adversary",
        &["adversary", "agree rate", "95% CI", "≥ δ?"],
    );
    let spec = FirstMoverConciliator::impatient();
    for (name, make) in schedulers {
        let stats = harness::run_trials(
            &spec,
            trials,
            0xC0FFEE,
            &EngineConfig::default(),
            |_| harness::inputs::alternating(n, 2),
            |seed| make(seed, n),
        )
        .expect("runs complete");
        let ci = wilson_interval(stats.agreements, stats.trials);
        table.row(&[
            name.to_string(),
            format!("{:.4}", stats.agreement_rate()),
            format!("[{:.4}, {:.4}]", ci.low, ci.high),
            if ci.low >= delta {
                "yes".into()
            } else {
                "marginal".into()
            },
        ]);
    }
    println!("{table}");

    println!(
        "Every adversary class leaves the agreement rate well above the paper's\n\
         worst-case δ — the bound is loose in practice, as §5.2's analysis suggests."
    );
}
