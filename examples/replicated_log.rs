//! Replicated state machine: the classic application the consensus problem
//! motivates, on the library's [`ReplicatedLog`].
//!
//! A bank of threads ("replicas") each receives a local stream of client
//! commands and must apply the *same* commands in the *same* order. Each
//! log slot is one consensus instance; [`ReplicatedLog::append`] drives
//! slots until the caller's command lands, learning other replicas'
//! entries along the way.
//!
//! Run with: `cargo run --release --example replicated_log`

use std::sync::Arc;

use modular_consensus::runtime::ReplicatedLog;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A command in the toy key-value machine: `set key value` with key in 0..8
/// and value in 0..32, packed into a u64 code (3 + 5 bits).
#[derive(Debug, Clone, Copy, PartialEq)]
struct SetCmd {
    key: u8,
    value: u8,
}

impl SetCmd {
    fn encode(self) -> u64 {
        u64::from(self.key) << 5 | u64::from(self.value)
    }

    fn decode(code: u64) -> SetCmd {
        SetCmd {
            key: (code >> 5) as u8 & 0x7,
            value: (code & 0x1F) as u8,
        }
    }
}

/// The replicated state machine: 8 registers written by `set` commands.
#[derive(Debug, Default, PartialEq, Clone)]
struct Machine {
    regs: [u8; 8],
}

impl Machine {
    fn apply(&mut self, cmd: SetCmd) {
        self.regs[cmd.key as usize] = cmd.value;
    }

    fn replay(log: &[u64]) -> Machine {
        let mut machine = Machine::default();
        for &code in log {
            machine.apply(SetCmd::decode(code));
        }
        machine
    }
}

fn main() {
    let replicas = 4;
    let commands_per_replica = 4;
    // 8-bit command codes => a 256-value log.
    let log = Arc::new(ReplicatedLog::new(replicas, 256));

    // Each replica appends its local client's commands; placement is decided
    // by consensus, one instance per slot.
    let handles: Vec<_> = (0..replicas as u64)
        .map(|replica| {
            let log = Arc::clone(&log);
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(replica);
                let mut placements = Vec::new();
                for i in 0..commands_per_replica {
                    let cmd = SetCmd {
                        key: (replica as u8 * 3 + i) % 8,
                        value: replica as u8 * 10 + i,
                    };
                    let slot = log.append(cmd.encode(), &mut rng);
                    placements.push((slot, cmd));
                }
                (replica, placements)
            })
        })
        .collect();

    let mut placements_by_replica: Vec<(u64, Vec<(usize, SetCmd)>)> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();
    placements_by_replica.sort_by_key(|(r, _)| *r);

    // Every command landed; the shared log's decided prefix contains all of
    // them in one agreed order.
    let ordered = log.snapshot();
    println!(
        "replicated log across {replicas} replicas ({} commands total):\n",
        ordered.len()
    );
    for (slot, &code) in ordered.iter().enumerate() {
        let cmd = SetCmd::decode(code);
        println!("  slot {slot:>2}: set r{} = {}", cmd.key, cmd.value);
    }
    assert_eq!(ordered.len(), replicas * commands_per_replica as usize);

    // Each replica's own placements agree with the shared log.
    for (replica, placements) in &placements_by_replica {
        for (slot, cmd) in placements {
            assert_eq!(
                log.get(*slot),
                Some(cmd.encode()),
                "replica {replica}'s command moved"
            );
        }
    }

    // Replaying the agreed order on fresh machines produces identical state
    // everywhere — the whole point of the exercise.
    let reference = Machine::replay(&ordered);
    for _ in 0..replicas {
        assert_eq!(Machine::replay(&ordered), reference);
    }
    println!("\nfinal registers: {:?}", reference.regs);
    println!("all {replicas} replicas converge to the same state ✓");
}
