//! Work scaling: watch the paper's complexity bounds materialize.
//!
//! Sweeps the number of processes `n` and measures, per Theorem 7 and the
//! headline claim of §1:
//!
//! * individual work of the impatient conciliator (`≤ 2⌈lg n⌉ + 4`, so the
//!   fitted shape is `≈ a·lg n + b`),
//! * total work of the conciliator (`≤ 6n` expected),
//! * end-to-end binary consensus work (`O(log n)` individual, `O(n)` total),
//! * the fixed-probability baseline's individual work under a solo leader
//!   (`Θ(n)` — the crossover the paper improves on).
//!
//! Run with: `cargo run --release --example work_scaling`

use modular_consensus::analysis::{fit_linear, fit_log2, theory, Summary, Table};
use modular_consensus::prelude::*;

fn main() {
    let ns = [4usize, 8, 16, 32, 64, 128];
    let trials = 300;

    let mut conciliator_table = Table::new(
        "Impatient conciliator work vs n (Theorem 7)",
        &[
            "n",
            "indiv (mean)",
            "indiv (max)",
            "bound 2⌈lg n⌉+4",
            "total (mean)",
            "bound 6n",
        ],
    );
    let mut indiv_series = Vec::new();
    let mut total_series = Vec::new();

    for &n in &ns {
        let stats = harness::run_trials(
            &FirstMoverConciliator::impatient(),
            trials,
            7,
            &EngineConfig::default(),
            |_| harness::inputs::alternating(n, 2),
            |seed| Box::new(adversary::RandomScheduler::new(seed)),
        )
        .expect("runs complete");
        let indiv = Summary::of_counts(&stats.individual_work);
        let total = Summary::of_counts(&stats.total_work);
        conciliator_table.row(&[
            n.to_string(),
            format!("{:.2}", indiv.mean),
            format!("{}", stats.max_individual_work()),
            theory::impatient_individual_work_bound(n as u64).to_string(),
            format!("{:.1}", total.mean),
            theory::impatient_total_work_bound(n as u64).to_string(),
        ]);
        indiv_series.push((n as f64, stats.max_individual_work() as f64));
        total_series.push((n as f64, total.mean));
    }
    println!("{conciliator_table}");

    let log_fit = fit_log2(
        &indiv_series.iter().map(|p| p.0).collect::<Vec<_>>(),
        &indiv_series.iter().map(|p| p.1).collect::<Vec<_>>(),
    );
    let lin_fit = fit_linear(
        &total_series.iter().map(|p| p.0).collect::<Vec<_>>(),
        &total_series.iter().map(|p| p.1).collect::<Vec<_>>(),
    );
    println!("worst individual work ≈ {log_fit}  (paper: 2·lg n + 4)");
    println!("mean total work       ≈ {lin_fit}  (paper: ≤ 6·n)\n");

    // End-to-end binary consensus.
    let mut consensus_table = Table::new(
        "Binary consensus work vs n (§1 headline claim)",
        &["n", "indiv (mean)", "total (mean)", "total / n"],
    );
    for &n in &ns {
        let spec = ConsensusBuilder::binary().build();
        let stats = harness::run_trials(
            &spec,
            trials / 3,
            11,
            &EngineConfig::default(),
            |_| harness::inputs::alternating(n, 2),
            |seed| Box::new(adversary::RandomScheduler::new(seed)),
        )
        .expect("runs complete");
        let total = stats.mean_total_work();
        consensus_table.row(&[
            n.to_string(),
            format!("{:.2}", stats.mean_individual_work()),
            format!("{total:.1}"),
            format!("{:.2}", total / n as f64),
        ]);
    }
    println!("{consensus_table}");

    // Baseline comparison under a solo leader.
    let mut baseline_table = Table::new(
        "Solo-leader individual work: impatient (2^k/n) vs fixed (1/n)",
        &["n", "impatient", "fixed (CIL-style)", "ratio"],
    );
    for &n in &ns {
        let solo = |spec: &FirstMoverConciliator| {
            harness::run_trials(
                spec,
                trials / 3,
                3,
                &EngineConfig::default(),
                |_| harness::inputs::alternating(n, 2),
                |_| Box::new(sched::PriorityScheduler::descending(n)),
            )
            .expect("runs complete")
            .mean_individual_work()
        };
        let imp = solo(&FirstMoverConciliator::impatient());
        let fix = solo(&FirstMoverConciliator::fixed(1.0));
        baseline_table.row(&[
            n.to_string(),
            format!("{imp:.1}"),
            format!("{fix:.1}"),
            format!("{:.1}x", fix / imp),
        ]);
    }
    println!("{baseline_table}");
    println!("The fixed-probability baseline grows linearly; impatience caps it at O(log n).");
}
