//! Structured telemetry events and the [`Recorder`] sink trait.
//!
//! One event schema serves both execution substrates: `mc-runtime` emits
//! stage/round/decision events from real threads, and `mc-sim` replays its
//! step-level trace through [`TelemetryEvent::Op`] plus a final
//! [`TelemetryEvent::WorkSummary`]. Because both speak the same schema, an
//! [`AggregatingRecorder`] can fold either stream back into counts and be
//! compared against the substrate's own accounting.

use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::counter::{Counter, Gauge};
use crate::histogram::Histogram;
use crate::json::Obj;

/// Which kind of stage a process entered in the alternating
/// ratifier/conciliator pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// A ratifier stage (safety: detect and confirm agreement).
    Ratifier,
    /// A conciliator stage (liveness: drive processes toward agreement).
    Conciliator,
}

impl StageKind {
    /// Stable lowercase name used in JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            StageKind::Ratifier => "ratifier",
            StageKind::Conciliator => "conciliator",
        }
    }
}

/// Which conciliator implementation an adaptive consensus instance selected
/// (the `choice` field of `conciliator_selected` events).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConciliatorKind {
    /// The impatient first-mover probabilistic-write conciliator.
    Impatient,
    /// The Theorem 6 wrapper over a weak shared coin.
    Coin,
}

impl ConciliatorKind {
    /// Stable lowercase name used in JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            ConciliatorKind::Impatient => "impatient",
            ConciliatorKind::Coin => "coin",
        }
    }
}

/// Which register-level fault a fault-injection layer delivered.
///
/// The classes mirror `mc-runtime`'s `FaultPlan`: the probabilistic-write
/// model's store can be *lost*, a read can observe *stale* (regular-register)
/// state, a write's visibility can be *delayed*, and a register can be
/// *reset* to ⊥ as if by a crash-recovery wipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// A probabilistic write whose coin fired but whose store never landed.
    LostProbWrite,
    /// A read that returned the register's previous value (HHT regular
    /// semantics) instead of the current one.
    StaleRead,
    /// A write whose visibility was deferred past the operation itself.
    DelayedVisibility,
    /// A register wiped back to ⊥.
    RegisterReset,
}

impl FaultClass {
    /// Stable lowercase name used in JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultClass::LostProbWrite => "lost_prob_write",
            FaultClass::StaleRead => "stale_read",
            FaultClass::DelayedVisibility => "delayed_visibility",
            FaultClass::RegisterReset => "register_reset",
        }
    }
}

/// State of a service-level circuit breaker.
///
/// Mirrors `mc-runtime`'s breaker: `Closed` admits normally, `Open`
/// fast-fails admission after sustained overload, and `HalfOpen` lets a
/// single probe submission through to test recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitState {
    /// Admitting normally.
    Closed,
    /// Fast-failing admission after sustained overload.
    Open,
    /// Cooldown elapsed; one probe is in flight to test recovery.
    HalfOpen,
}

impl CircuitState {
    /// Stable lowercase name used in JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            CircuitState::Closed => "closed",
            CircuitState::Open => "open",
            CircuitState::HalfOpen => "half_open",
        }
    }

    /// Stable numeric encoding for gauges: closed 0, open 1, half-open 2.
    pub fn as_u64(self) -> u64 {
        match self {
            CircuitState::Closed => 0,
            CircuitState::Open => 1,
            CircuitState::HalfOpen => 2,
        }
    }
}

/// Classification of a single shared-memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Read one register.
    Read,
    /// Write one register.
    Write,
    /// Probabilistic write (the coin decides whether it lands).
    ProbWrite,
    /// Collect (read every register of an array).
    Collect,
}

impl OpClass {
    /// Stable lowercase name used in JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            OpClass::Read => "read",
            OpClass::Write => "write",
            OpClass::ProbWrite => "prob_write",
            OpClass::Collect => "collect",
        }
    }
}

/// A structured telemetry event.
///
/// `pid` is the emitting process id where one is in scope, or a dense
/// per-thread id ([`crate::thread_shard`]) for runtime call sites that
/// only know their thread.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryEvent {
    /// A process entered a stage of the consensus pipeline.
    StageEntered {
        /// Emitting process.
        pid: u64,
        /// Zero-based stage index.
        stage: u64,
        /// Ratifier or conciliator.
        kind: StageKind,
    },
    /// The fast path (leading ratifier pair) decided without any
    /// randomized stage.
    FastPathHit {
        /// Emitting process.
        pid: u64,
        /// Stage index at which the fast path hit.
        stage: u64,
    },
    /// A conciliator completed round `round` of probability doubling.
    ConciliatorRound {
        /// Emitting process.
        pid: u64,
        /// Zero-based round index `k`.
        round: u64,
        /// Write probability used this round.
        probability: f64,
    },
    /// A probabilistic write was attempted (and possibly performed).
    ProbWrite {
        /// Emitting process.
        pid: u64,
        /// Whether the coin came up and the write landed.
        performed: bool,
        /// Probability the coin was flipped with.
        probability: f64,
    },
    /// A ratifier returned its verdict.
    RatifierVerdict {
        /// Emitting process.
        pid: u64,
        /// Zero-based stage index.
        stage: u64,
        /// Whether the ratifier decided.
        decided: bool,
        /// The (possibly adjusted) preference leaving the stage.
        value: u64,
    },
    /// A process decided.
    Decided {
        /// Emitting process.
        pid: u64,
        /// Decided value.
        value: u64,
        /// Stage index at which the decision happened.
        stage: u64,
        /// Wall-clock latency of the whole `decide` call, nanoseconds.
        latency_ns: u64,
    },
    /// One simulated shared-memory operation (from `mc-sim`'s trace).
    Op {
        /// Simulation step at which the operation ran.
        step: u64,
        /// Emitting process.
        pid: u64,
        /// Operation class.
        class: OpClass,
        /// For [`OpClass::ProbWrite`]: whether the write landed.
        /// `true` for every other class.
        performed: bool,
    },
    /// A fault-injection layer delivered one register-level fault.
    FaultInjected {
        /// Which fault class fired.
        class: FaultClass,
        /// Index of the affected register within its fault layer.
        register: u64,
        /// The fault layer's operation counter when the fault fired.
        step: u64,
    },
    /// An adaptive consensus instance resolved which conciliator its
    /// chain will use, from the sliding-window δ̂ estimate.
    ConciliatorSelected {
        /// Recycling generation of the instance the selection applies to
        /// (0 for a fresh object).
        generation: u64,
        /// The conciliator selected.
        choice: ConciliatorKind,
        /// The window's δ̂ estimate driving the selection; `None` when the
        /// window held fewer than the minimum samples (in which case the
        /// selection always stays impatient).
        delta_hat: Option<f64>,
        /// Number of decides the estimate was computed over.
        samples: u64,
    },
    /// A bounded consensus exhausted its conciliator budget and fell back
    /// to the backup protocol `K` (Theorem 5).
    FallbackTaken {
        /// Emitting process.
        pid: u64,
        /// Number of conciliator stages that failed before the fallback.
        conciliator_stages: u64,
    },
    /// A batching-service shard worker drained one batch from its intake
    /// ring. Emitted once per batch — the amortized replacement for
    /// per-proposal service events.
    BatchDrained {
        /// Engine shard the worker serves.
        shard: u64,
        /// Number of proposals decided in this batch.
        batch: u64,
        /// Ring depth left behind after the drain.
        queue_depth: u64,
    },
    /// A supervised service worker recovered from a panic: its unsubmitted
    /// proposals were re-admitted and its drain loop restarted.
    WorkerRestarted {
        /// Intake ring (= worker index) that recovered.
        ring: u64,
        /// Restart attempt number for this worker, starting at 1.
        attempt: u64,
        /// Queued-but-unsubmitted cells re-admitted to the ring.
        resubmitted: u64,
        /// Wall-clock panic-catch → drain-loop-reentry latency, nanoseconds.
        recovery_ns: u64,
    },
    /// A service circuit breaker changed state.
    CircuitTransition {
        /// The state entered.
        state: CircuitState,
    },
    /// The store layer granted or renewed a client session's read lease
    /// (lease-gated reads are then served from the applied state without
    /// occupying a log slot).
    ReadLease {
        /// Client session the lease belongs to.
        client: u64,
        /// `false` for the session's first lease, `true` for a renewal
        /// after expiry.
        renewed: bool,
        /// Lease validity from grant, nanoseconds.
        ttl_ns: u64,
    },
    /// End-of-run totals (mirrors `mc-sim`'s `WorkMetrics`).
    WorkSummary {
        /// Seed the run was driven with.
        seed: u64,
        /// Total operations across all processes.
        total_work: u64,
        /// Maximum operations by any single process.
        individual_work: u64,
        /// Probabilistic writes attempted.
        prob_writes_attempted: u64,
        /// Probabilistic writes that landed.
        prob_writes_performed: u64,
        /// Registers allocated.
        registers_allocated: u64,
        /// Registers written at least once.
        registers_touched: u64,
        /// Operations per process, indexed by pid.
        per_process: Vec<u64>,
    },
}

impl TelemetryEvent {
    /// Stable event name (the `"ev"` field of the JSON rendering).
    pub fn name(&self) -> &'static str {
        match self {
            TelemetryEvent::StageEntered { .. } => "stage_entered",
            TelemetryEvent::FastPathHit { .. } => "fast_path_hit",
            TelemetryEvent::ConciliatorRound { .. } => "conciliator_round",
            TelemetryEvent::ProbWrite { .. } => "prob_write",
            TelemetryEvent::RatifierVerdict { .. } => "ratifier_verdict",
            TelemetryEvent::Decided { .. } => "decided",
            TelemetryEvent::Op { .. } => "op",
            TelemetryEvent::FaultInjected { .. } => "fault_injected",
            TelemetryEvent::ConciliatorSelected { .. } => "conciliator_selected",
            TelemetryEvent::FallbackTaken { .. } => "fallback_taken",
            TelemetryEvent::BatchDrained { .. } => "batch_drained",
            TelemetryEvent::WorkerRestarted { .. } => "worker_restarted",
            TelemetryEvent::CircuitTransition { .. } => "circuit_transition",
            TelemetryEvent::ReadLease { .. } => "read_lease",
            TelemetryEvent::WorkSummary { .. } => "work_summary",
        }
    }

    /// Renders the event as one JSON object (no trailing newline).
    ///
    /// `seq` is an optional monotone sequence number stamped by the
    /// recorder so consumers can detect truncated streams.
    pub fn to_json(&self, seq: Option<u64>) -> String {
        let mut obj = Obj::new();
        obj.str_field("ev", self.name());
        if let Some(seq) = seq {
            obj.u64_field("seq", seq);
        }
        match self {
            TelemetryEvent::StageEntered { pid, stage, kind } => {
                obj.u64_field("pid", *pid)
                    .u64_field("stage", *stage)
                    .str_field("kind", kind.as_str());
            }
            TelemetryEvent::FastPathHit { pid, stage } => {
                obj.u64_field("pid", *pid).u64_field("stage", *stage);
            }
            TelemetryEvent::ConciliatorRound {
                pid,
                round,
                probability,
            } => {
                obj.u64_field("pid", *pid)
                    .u64_field("round", *round)
                    .f64_field("p", *probability);
            }
            TelemetryEvent::ProbWrite {
                pid,
                performed,
                probability,
            } => {
                obj.u64_field("pid", *pid)
                    .bool_field("performed", *performed)
                    .f64_field("p", *probability);
            }
            TelemetryEvent::RatifierVerdict {
                pid,
                stage,
                decided,
                value,
            } => {
                obj.u64_field("pid", *pid)
                    .u64_field("stage", *stage)
                    .bool_field("decided", *decided)
                    .u64_field("value", *value);
            }
            TelemetryEvent::Decided {
                pid,
                value,
                stage,
                latency_ns,
            } => {
                obj.u64_field("pid", *pid)
                    .u64_field("value", *value)
                    .u64_field("stage", *stage)
                    .u64_field("latency_ns", *latency_ns);
            }
            TelemetryEvent::Op {
                step,
                pid,
                class,
                performed,
            } => {
                obj.u64_field("step", *step)
                    .u64_field("pid", *pid)
                    .str_field("class", class.as_str())
                    .bool_field("performed", *performed);
            }
            TelemetryEvent::FaultInjected {
                class,
                register,
                step,
            } => {
                obj.str_field("class", class.as_str())
                    .u64_field("register", *register)
                    .u64_field("step", *step);
            }
            TelemetryEvent::ConciliatorSelected {
                generation,
                choice,
                delta_hat,
                samples,
            } => {
                obj.u64_field("generation", *generation)
                    .str_field("choice", choice.as_str());
                if let Some(delta_hat) = delta_hat {
                    obj.f64_field("delta_hat", *delta_hat);
                }
                obj.u64_field("samples", *samples);
            }
            TelemetryEvent::FallbackTaken {
                pid,
                conciliator_stages,
            } => {
                obj.u64_field("pid", *pid)
                    .u64_field("conciliator_stages", *conciliator_stages);
            }
            TelemetryEvent::BatchDrained {
                shard,
                batch,
                queue_depth,
            } => {
                obj.u64_field("shard", *shard)
                    .u64_field("batch", *batch)
                    .u64_field("queue_depth", *queue_depth);
            }
            TelemetryEvent::WorkerRestarted {
                ring,
                attempt,
                resubmitted,
                recovery_ns,
            } => {
                obj.u64_field("ring", *ring)
                    .u64_field("attempt", *attempt)
                    .u64_field("resubmitted", *resubmitted)
                    .u64_field("recovery_ns", *recovery_ns);
            }
            TelemetryEvent::CircuitTransition { state } => {
                obj.str_field("state", state.as_str());
            }
            TelemetryEvent::ReadLease {
                client,
                renewed,
                ttl_ns,
            } => {
                obj.u64_field("client", *client)
                    .bool_field("renewed", *renewed)
                    .u64_field("ttl_ns", *ttl_ns);
            }
            TelemetryEvent::WorkSummary {
                seed,
                total_work,
                individual_work,
                prob_writes_attempted,
                prob_writes_performed,
                registers_allocated,
                registers_touched,
                per_process,
            } => {
                obj.u64_field("seed", *seed)
                    .u64_field("total_work", *total_work)
                    .u64_field("individual_work", *individual_work)
                    .u64_field("prob_writes_attempted", *prob_writes_attempted)
                    .u64_field("prob_writes_performed", *prob_writes_performed)
                    .u64_field("registers_allocated", *registers_allocated)
                    .u64_field("registers_touched", *registers_touched)
                    .u64_array_field("per_process", per_process);
            }
        }
        obj.finish()
    }
}

/// A sink for [`TelemetryEvent`]s.
///
/// Instrumented code holds an `Arc<dyn Recorder>` and guards event
/// construction with [`enabled`](Recorder::enabled), so the disabled path
/// is one virtual call returning a constant — cheap enough to leave in
/// the consensus hot loop.
pub trait Recorder: Send + Sync {
    /// Whether [`record`](Recorder::record) does anything. Callers should
    /// skip event construction when this is `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one event.
    fn record(&self, event: &TelemetryEvent);

    /// Flushes any buffered output.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying sink.
    fn flush(&self) -> io::Result<()> {
        Ok(())
    }
}

/// The default recorder: drops everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn record(&self, _event: &TelemetryEvent) {}
}

/// Streams events as JSON lines to any writer.
///
/// Each line is one [`TelemetryEvent::to_json`] object stamped with a
/// monotone `seq` field. Writes go through a mutex — acceptable because
/// JSONL recording is opt-in diagnostics, not the default hot path.
pub struct JsonlRecorder {
    out: Mutex<Box<dyn Write + Send>>,
    seq: AtomicU64,
}

impl std::fmt::Debug for JsonlRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlRecorder")
            .field("seq", &self.seq.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl JsonlRecorder {
    /// Streams to an arbitrary writer.
    pub fn new(out: Box<dyn Write + Send>) -> JsonlRecorder {
        JsonlRecorder {
            out: Mutex::new(out),
            seq: AtomicU64::new(0),
        }
    }

    /// Creates (truncating) `path` and streams to it through a buffer.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn to_file(path: &std::path::Path) -> io::Result<JsonlRecorder> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlRecorder::new(Box::new(io::BufWriter::new(file))))
    }

    /// Streams to a shared in-memory buffer; the returned handle can be
    /// read back after recording (used by tests).
    pub fn in_memory() -> (JsonlRecorder, Arc<Mutex<Vec<u8>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let recorder = JsonlRecorder::new(Box::new(SharedBuf(Arc::clone(&buf))));
        (recorder, buf)
    }

    /// Number of events written so far.
    pub fn events_written(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }
}

impl Recorder for JsonlRecorder {
    fn record(&self, event: &TelemetryEvent) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut line = event.to_json(Some(seq));
        line.push('\n');
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        // Telemetry must never take the protocol down: swallow I/O errors
        // here; flush() reports them.
        let _ = out.write_all(line.as_bytes());
    }

    fn flush(&self) -> io::Result<()> {
        self.out.lock().unwrap_or_else(|e| e.into_inner()).flush()
    }
}

/// `Write` over a shared byte buffer (backing store for
/// [`JsonlRecorder::in_memory`]).
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Folds events back into counters and histograms.
///
/// This is the reconciliation tool: run a simulation once with its native
/// `WorkMetrics` accounting and an `AggregatingRecorder` attached, then
/// assert both saw the same operation counts.
#[derive(Debug, Default)]
pub struct AggregatingRecorder {
    events: Counter,
    stage_entries: Counter,
    fast_path_hits: Counter,
    conciliator_rounds: Counter,
    max_round: Gauge,
    prob_writes_attempted: Counter,
    prob_writes_performed: Counter,
    ratifier_verdicts: Counter,
    decisions: Counter,
    rounds_to_decide: Histogram,
    decide_latency_ns: Histogram,
    ops: Counter,
    reads: Counter,
    writes: Counter,
    collects: Counter,
    faults_injected: Counter,
    conciliator_selections: Counter,
    coin_selections: Counter,
    fallbacks_taken: Counter,
    batches_drained: Counter,
    batched_proposals: Counter,
    worker_restarts: Counter,
    resubmitted_cells: Counter,
    circuit_transitions: Counter,
    circuit_state: Gauge,
    read_leases: Counter,
    read_lease_renewals: Counter,
    per_pid_ops: Mutex<Vec<u64>>,
}

impl AggregatingRecorder {
    /// An empty aggregator.
    pub fn new() -> AggregatingRecorder {
        AggregatingRecorder::default()
    }

    /// Total events seen.
    pub fn events(&self) -> u64 {
        self.events.get()
    }

    /// `stage_entered` events seen.
    pub fn stage_entries(&self) -> u64 {
        self.stage_entries.get()
    }

    /// `fast_path_hit` events seen.
    pub fn fast_path_hits(&self) -> u64 {
        self.fast_path_hits.get()
    }

    /// `conciliator_round` events seen.
    pub fn conciliator_rounds(&self) -> u64 {
        self.conciliator_rounds.get()
    }

    /// Largest conciliator round index observed.
    pub fn max_round(&self) -> u64 {
        self.max_round.max()
    }

    /// Probabilistic writes attempted (runtime `prob_write` events plus
    /// sim `op` events of class `prob_write`).
    pub fn prob_writes_attempted(&self) -> u64 {
        self.prob_writes_attempted.get()
    }

    /// Probabilistic writes that landed.
    pub fn prob_writes_performed(&self) -> u64 {
        self.prob_writes_performed.get()
    }

    /// `ratifier_verdict` events seen.
    pub fn ratifier_verdicts(&self) -> u64 {
        self.ratifier_verdicts.get()
    }

    /// `decided` events seen.
    pub fn decisions(&self) -> u64 {
        self.decisions.get()
    }

    /// Distribution of the deciding stage index, one sample per decision.
    pub fn rounds_to_decide(&self) -> &Histogram {
        &self.rounds_to_decide
    }

    /// Distribution of decide latency in nanoseconds.
    pub fn decide_latency_ns(&self) -> &Histogram {
        &self.decide_latency_ns
    }

    /// Simulated operations seen (total work).
    pub fn ops(&self) -> u64 {
        self.ops.get()
    }

    /// Simulated operations per process, indexed by pid.
    pub fn per_process_ops(&self) -> Vec<u64> {
        self.per_pid_ops
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Largest per-process operation count (individual work).
    pub fn individual_ops(&self) -> u64 {
        self.per_process_ops().iter().copied().max().unwrap_or(0)
    }

    /// `fault_injected` events seen.
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected.get()
    }

    /// `conciliator_selected` events seen.
    pub fn conciliator_selections(&self) -> u64 {
        self.conciliator_selections.get()
    }

    /// `conciliator_selected` events that picked the coin conciliator.
    pub fn coin_selections(&self) -> u64 {
        self.coin_selections.get()
    }

    /// `fallback_taken` events seen.
    pub fn fallbacks_taken(&self) -> u64 {
        self.fallbacks_taken.get()
    }

    /// `batch_drained` events seen.
    pub fn batches_drained(&self) -> u64 {
        self.batches_drained.get()
    }

    /// Total proposals across all `batch_drained` events.
    pub fn batched_proposals(&self) -> u64 {
        self.batched_proposals.get()
    }

    /// `worker_restarted` events seen.
    pub fn worker_restarts(&self) -> u64 {
        self.worker_restarts.get()
    }

    /// Total cells re-admitted across all `worker_restarted` events.
    pub fn resubmitted_cells(&self) -> u64 {
        self.resubmitted_cells.get()
    }

    /// `circuit_transition` events seen.
    pub fn circuit_transitions(&self) -> u64 {
        self.circuit_transitions.get()
    }

    /// Last circuit state observed (numeric; see [`CircuitState::as_u64`]).
    pub fn circuit_state(&self) -> u64 {
        self.circuit_state.get()
    }

    /// `read_lease` events seen (grants plus renewals).
    pub fn read_leases(&self) -> u64 {
        self.read_leases.get()
    }

    /// `read_lease` events that were renewals of an expired lease.
    pub fn read_lease_renewals(&self) -> u64 {
        self.read_lease_renewals.get()
    }
}

impl Recorder for AggregatingRecorder {
    fn record(&self, event: &TelemetryEvent) {
        self.events.incr();
        match event {
            TelemetryEvent::StageEntered { .. } => self.stage_entries.incr(),
            TelemetryEvent::FastPathHit { .. } => self.fast_path_hits.incr(),
            TelemetryEvent::ConciliatorRound { round, .. } => {
                self.conciliator_rounds.incr();
                self.max_round.record_max(*round);
            }
            TelemetryEvent::ProbWrite { performed, .. } => {
                self.prob_writes_attempted.incr();
                if *performed {
                    self.prob_writes_performed.incr();
                }
            }
            TelemetryEvent::RatifierVerdict { .. } => self.ratifier_verdicts.incr(),
            TelemetryEvent::Decided {
                stage, latency_ns, ..
            } => {
                self.decisions.incr();
                self.rounds_to_decide.record(*stage);
                self.decide_latency_ns.record(*latency_ns);
            }
            TelemetryEvent::Op {
                pid,
                class,
                performed,
                ..
            } => {
                self.ops.incr();
                let mut per_pid = self.per_pid_ops.lock().unwrap_or_else(|e| e.into_inner());
                let pid = *pid as usize;
                if per_pid.len() <= pid {
                    per_pid.resize(pid + 1, 0);
                }
                per_pid[pid] += 1;
                drop(per_pid);
                match class {
                    OpClass::Read => self.reads.incr(),
                    OpClass::Write => self.writes.incr(),
                    OpClass::Collect => self.collects.incr(),
                    OpClass::ProbWrite => {
                        self.prob_writes_attempted.incr();
                        if *performed {
                            self.prob_writes_performed.incr();
                        }
                    }
                }
            }
            TelemetryEvent::FaultInjected { .. } => self.faults_injected.incr(),
            TelemetryEvent::ConciliatorSelected { choice, .. } => {
                self.conciliator_selections.incr();
                if *choice == ConciliatorKind::Coin {
                    self.coin_selections.incr();
                }
            }
            TelemetryEvent::FallbackTaken { .. } => self.fallbacks_taken.incr(),
            TelemetryEvent::BatchDrained { batch, .. } => {
                self.batches_drained.incr();
                self.batched_proposals.add(*batch);
            }
            TelemetryEvent::WorkerRestarted { resubmitted, .. } => {
                self.worker_restarts.incr();
                self.resubmitted_cells.add(*resubmitted);
            }
            TelemetryEvent::CircuitTransition { state } => {
                self.circuit_transitions.incr();
                self.circuit_state.set(state.as_u64());
            }
            TelemetryEvent::ReadLease { renewed, .. } => {
                self.read_leases.incr();
                if *renewed {
                    self.read_lease_renewals.incr();
                }
            }
            TelemetryEvent::WorkSummary { .. } => {}
        }
    }
}

/// Fans each event out to several recorders.
#[derive(Default)]
pub struct MultiRecorder {
    sinks: Vec<Arc<dyn Recorder>>,
}

impl std::fmt::Debug for MultiRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiRecorder")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl MultiRecorder {
    /// A fan-out over the given sinks.
    pub fn new(sinks: Vec<Arc<dyn Recorder>>) -> MultiRecorder {
        MultiRecorder { sinks }
    }
}

impl Recorder for MultiRecorder {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn record(&self, event: &TelemetryEvent) {
        for sink in &self.sinks {
            if sink.enabled() {
                sink.record(event);
            }
        }
    }

    fn flush(&self) -> io::Result<()> {
        for sink in &self.sinks {
            sink.flush()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample_events() -> Vec<TelemetryEvent> {
        vec![
            TelemetryEvent::StageEntered {
                pid: 0,
                stage: 0,
                kind: StageKind::Ratifier,
            },
            TelemetryEvent::FastPathHit { pid: 0, stage: 1 },
            TelemetryEvent::ConciliatorRound {
                pid: 1,
                round: 3,
                probability: 0.125,
            },
            TelemetryEvent::ProbWrite {
                pid: 1,
                performed: true,
                probability: 0.5,
            },
            TelemetryEvent::ProbWrite {
                pid: 1,
                performed: false,
                probability: 0.5,
            },
            TelemetryEvent::RatifierVerdict {
                pid: 1,
                stage: 2,
                decided: true,
                value: 42,
            },
            TelemetryEvent::Decided {
                pid: 1,
                value: 42,
                stage: 2,
                latency_ns: 1_000,
            },
            TelemetryEvent::Op {
                step: 0,
                pid: 0,
                class: OpClass::Read,
                performed: true,
            },
            TelemetryEvent::Op {
                step: 1,
                pid: 2,
                class: OpClass::ProbWrite,
                performed: false,
            },
            TelemetryEvent::FaultInjected {
                class: FaultClass::StaleRead,
                register: 4,
                step: 17,
            },
            TelemetryEvent::ConciliatorSelected {
                generation: 2,
                choice: ConciliatorKind::Coin,
                delta_hat: Some(0.125),
                samples: 16,
            },
            TelemetryEvent::FallbackTaken {
                pid: 2,
                conciliator_stages: 6,
            },
            TelemetryEvent::BatchDrained {
                shard: 1,
                batch: 8,
                queue_depth: 2,
            },
            TelemetryEvent::WorkerRestarted {
                ring: 0,
                attempt: 1,
                resubmitted: 3,
                recovery_ns: 2_000,
            },
            TelemetryEvent::CircuitTransition {
                state: CircuitState::Open,
            },
            TelemetryEvent::WorkSummary {
                seed: 7,
                total_work: 2,
                individual_work: 1,
                prob_writes_attempted: 1,
                prob_writes_performed: 0,
                registers_allocated: 3,
                registers_touched: 2,
                per_process: vec![1, 0, 1],
            },
        ]
    }

    #[test]
    fn every_event_renders_valid_json() {
        for (i, event) in sample_events().iter().enumerate() {
            let line = event.to_json(Some(i as u64));
            json::validate(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert!(line.contains(&format!(r#""ev":"{}""#, event.name())));
        }
    }

    #[test]
    fn jsonl_recorder_writes_one_line_per_event() {
        let (recorder, buf) = JsonlRecorder::in_memory();
        for event in sample_events() {
            recorder.record(&event);
        }
        recorder.flush().unwrap();
        let bytes = buf.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), sample_events().len());
        assert_eq!(recorder.events_written(), lines.len() as u64);
        for (i, line) in lines.iter().enumerate() {
            json::validate(line).unwrap();
            assert!(line.contains(&format!(r#""seq":{i}"#)));
        }
    }

    #[test]
    fn aggregating_recorder_folds_counts() {
        let agg = AggregatingRecorder::new();
        for event in sample_events() {
            agg.record(&event);
        }
        assert_eq!(agg.events(), 16);
        assert_eq!(agg.faults_injected(), 1);
        assert_eq!(agg.conciliator_selections(), 1);
        assert_eq!(agg.coin_selections(), 1);
        assert_eq!(agg.fallbacks_taken(), 1);
        assert_eq!(agg.batches_drained(), 1);
        assert_eq!(agg.batched_proposals(), 8);
        assert_eq!(agg.worker_restarts(), 1);
        assert_eq!(agg.resubmitted_cells(), 3);
        assert_eq!(agg.circuit_transitions(), 1);
        assert_eq!(agg.circuit_state(), CircuitState::Open.as_u64());
        assert_eq!(agg.stage_entries(), 1);
        assert_eq!(agg.fast_path_hits(), 1);
        assert_eq!(agg.conciliator_rounds(), 1);
        assert_eq!(agg.max_round(), 3);
        // 2 runtime prob_write events + 1 sim prob_write op.
        assert_eq!(agg.prob_writes_attempted(), 3);
        assert_eq!(agg.prob_writes_performed(), 1);
        assert_eq!(agg.decisions(), 1);
        assert_eq!(agg.rounds_to_decide().count(), 1);
        assert_eq!(agg.decide_latency_ns().max(), 1_000);
        assert_eq!(agg.ops(), 2);
        assert_eq!(agg.per_process_ops(), vec![1, 0, 1]);
        assert_eq!(agg.individual_ops(), 1);
    }

    #[test]
    fn noop_recorder_is_disabled() {
        let noop = NoopRecorder;
        assert!(!noop.enabled());
        noop.record(&TelemetryEvent::FastPathHit { pid: 0, stage: 0 });
        noop.flush().unwrap();
    }

    #[test]
    fn multi_recorder_fans_out_to_enabled_sinks() {
        let agg = Arc::new(AggregatingRecorder::new());
        let multi = MultiRecorder::new(vec![
            Arc::new(NoopRecorder) as Arc<dyn Recorder>,
            Arc::clone(&agg) as Arc<dyn Recorder>,
        ]);
        assert!(multi.enabled());
        multi.record(&TelemetryEvent::FastPathHit { pid: 0, stage: 0 });
        multi.flush().unwrap();
        assert_eq!(agg.fast_path_hits(), 1);

        let empty = MultiRecorder::new(vec![Arc::new(NoopRecorder) as Arc<dyn Recorder>]);
        assert!(!empty.enabled());
    }
}
