//! Point-in-time metric snapshots with text, JSON, and Prometheus export.

use std::fmt::Write as _;

use crate::histogram::HistogramSnapshot;
use crate::json::Obj;

/// A named, frozen view of a set of counters, gauges, and histograms.
///
/// Instrumented components build one on demand (`snapshot()` methods) and
/// the caller picks a rendering: [`to_text`](Snapshot::to_text) for humans,
/// [`to_json`](Snapshot::to_json) for tooling, or
/// [`to_prometheus`](Snapshot::to_prometheus) for scrapers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, u64, u64)>,
    histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Snapshot {
        Snapshot::default()
    }

    /// Adds a counter value.
    pub fn counter(&mut self, name: &str, value: u64) -> &mut Self {
        self.counters.push((name.to_string(), value));
        self
    }

    /// Adds a gauge with its current value and running maximum.
    pub fn gauge(&mut self, name: &str, value: u64, max: u64) -> &mut Self {
        self.gauges.push((name.to_string(), value, max));
        self
    }

    /// Adds a histogram snapshot.
    pub fn histogram(&mut self, name: &str, hist: HistogramSnapshot) -> &mut Self {
        self.histograms.push((name.to_string(), hist));
        self
    }

    /// Looks up a counter by name.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a histogram by name.
    pub fn histogram_value(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// True when nothing has been added.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders an aligned human-readable report.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "{name} = {value}");
        }
        for (name, value, max) in &self.gauges {
            let _ = writeln!(out, "{name} = {value} (max {max})");
        }
        for (name, hist) in &self.histograms {
            let _ = writeln!(
                out,
                "{name}: count={} sum={} max={} mean={:.2} p50<={} p99<={}",
                hist.count,
                hist.sum,
                hist.max,
                hist.mean(),
                hist.quantile_upper(0.50),
                hist.quantile_upper(0.99)
            );
            for &(upper, n) in &hist.buckets {
                let _ = writeln!(out, "  <= {upper}: {n}");
            }
        }
        out
    }

    /// Renders one JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{...}}`.
    pub fn to_json(&self) -> String {
        let mut counters = Obj::new();
        for (name, value) in &self.counters {
            counters.u64_field(name, *value);
        }
        let mut gauges = Obj::new();
        for (name, value, max) in &self.gauges {
            let mut gauge = Obj::new();
            gauge.u64_field("value", *value).u64_field("max", *max);
            gauges.raw_field(name, &gauge.finish());
        }
        let mut histograms = Obj::new();
        for (name, hist) in &self.histograms {
            histograms.raw_field(name, &histogram_json(hist));
        }
        let mut obj = Obj::new();
        obj.raw_field("counters", &counters.finish())
            .raw_field("gauges", &gauges.finish())
            .raw_field("histograms", &histograms.finish());
        obj.finish()
    }

    /// Renders the Prometheus text exposition format.
    ///
    /// Counters become `counter` metrics, gauges a `gauge` plus a
    /// `<name>_max` gauge, and histograms the standard cumulative
    /// `_bucket{le="..."}` / `_sum` / `_count` triple.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let name = sanitize_metric_name(name);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value, max) in &self.gauges {
            let name = sanitize_metric_name(name);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
            let _ = writeln!(out, "# TYPE {name}_max gauge");
            let _ = writeln!(out, "{name}_max {max}");
        }
        for (name, hist) in &self.histograms {
            let name = sanitize_metric_name(name);
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for &(upper, n) in &hist.buckets {
                cumulative += n;
                let _ = writeln!(out, "{name}_bucket{{le=\"{upper}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", hist.count);
            let _ = writeln!(out, "{name}_sum {}", hist.sum);
            let _ = writeln!(out, "{name}_count {}", hist.count);
            // Pre-computed quantile upper bounds, as gauges: scrapers that
            // never learned `histogram_quantile` still get p50/p99.
            let _ = writeln!(out, "# TYPE {name}_p50 gauge");
            let _ = writeln!(out, "{name}_p50 {}", hist.quantile_upper(0.50));
            let _ = writeln!(out, "# TYPE {name}_p99 gauge");
            let _ = writeln!(out, "{name}_p99 {}", hist.quantile_upper(0.99));
        }
        out
    }
}

/// Maps arbitrary snapshot names onto the Prometheus metric charset
/// (`[a-zA-Z0-9_:]`, non-digit first character).
fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn histogram_json(hist: &HistogramSnapshot) -> String {
    let mut obj = Obj::new();
    obj.u64_field("count", hist.count)
        .u64_field("sum", hist.sum)
        .u64_field("max", hist.max)
        .f64_field("mean", hist.mean())
        .u64_field("p50", hist.quantile_upper(0.50))
        .u64_field("p99", hist.quantile_upper(0.99));
    let mut buckets = String::from("[");
    for (i, &(upper, n)) in hist.buckets.iter().enumerate() {
        if i > 0 {
            buckets.push(',');
        }
        let _ = write!(buckets, "[{upper},{n}]");
    }
    buckets.push(']');
    obj.raw_field("buckets", &buckets);
    obj.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::Histogram;

    fn sample() -> Snapshot {
        let hist = Histogram::new();
        for v in [1, 2, 3, 100] {
            hist.record(v);
        }
        let mut snap = Snapshot::new();
        snap.counter("ops_total", 42)
            .gauge("active_stages", 2, 5)
            .histogram("rounds_to_decide", hist.snapshot());
        snap
    }

    #[test]
    fn text_report_names_everything() {
        let text = sample().to_text();
        assert!(text.contains("ops_total = 42"));
        assert!(text.contains("active_stages = 2 (max 5)"));
        assert!(text.contains("rounds_to_decide: count=4 sum=106 max=100"));
        assert!(text.contains("p50<=3 p99<=100"));
        assert!(text.contains("  <= 1: 1"));
    }

    #[test]
    fn json_report_is_valid_and_complete() {
        let out = sample().to_json();
        json::validate(&out).unwrap_or_else(|e| panic!("{out}: {e}"));
        assert!(out.contains(r#""ops_total":42"#));
        assert!(out.contains(r#""active_stages":{"value":2,"max":5}"#));
        assert!(out.contains(r#""count":4"#));
        assert!(out.contains(r#""p50":3"#));
        assert!(out.contains(r#""p99":100"#));
        assert!(out.contains(r#""buckets":[[1,1],[3,2],[127,1]]"#));
    }

    #[test]
    fn prometheus_report_has_cumulative_buckets() {
        let out = sample().to_prometheus();
        assert!(out.contains("# TYPE ops_total counter\nops_total 42\n"));
        assert!(out.contains("active_stages_max 5"));
        assert!(out.contains("rounds_to_decide_bucket{le=\"1\"} 1"));
        assert!(out.contains("rounds_to_decide_bucket{le=\"3\"} 3"));
        assert!(out.contains("rounds_to_decide_bucket{le=\"127\"} 4"));
        assert!(out.contains("rounds_to_decide_bucket{le=\"+Inf\"} 4"));
        assert!(out.contains("rounds_to_decide_sum 106"));
        assert!(out.contains("rounds_to_decide_count 4"));
        assert!(out.contains("# TYPE rounds_to_decide_p50 gauge\nrounds_to_decide_p50 3"));
        assert!(out.contains("rounds_to_decide_p99 100"));
    }

    #[test]
    fn lookup_and_emptiness() {
        let snap = sample();
        assert_eq!(snap.counter_value("ops_total"), Some(42));
        assert!(snap.counter_value("missing").is_none());
        assert_eq!(snap.histogram_value("rounds_to_decide").unwrap().count, 4);
        assert!(!snap.is_empty());
        assert!(Snapshot::new().is_empty());
    }

    #[test]
    fn metric_names_are_sanitized() {
        assert_eq!(sanitize_metric_name("a.b-c/1"), "a_b_c_1");
        assert_eq!(sanitize_metric_name("9lives"), "_lives");
        assert_eq!(sanitize_metric_name(""), "_");
    }
}
