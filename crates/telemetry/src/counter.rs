//! Lock-free counters and gauges.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A single monotonically increasing counter.
///
/// All operations are relaxed atomics: counts are exact because every
/// increment lands, but cross-counter reads are not a consistent snapshot
/// (nor do they need to be — telemetry is read after the fact or
/// approximately).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Counter {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can move both ways, with a running maximum.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
    max: AtomicU64,
}

impl Gauge {
    /// A gauge starting at zero.
    pub const fn new() -> Gauge {
        Gauge {
            value: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Sets the current value (also advances the maximum).
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Advances the current value to `v` if it is larger.
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Adds `delta` to the current value (also advances the maximum).
    ///
    /// With `add`/[`sub`](Gauge::sub) the gauge composes across concurrent
    /// writers as an aggregate — unlike [`set`](Gauge::set), where the last
    /// writer wins.
    #[inline]
    pub fn add(&self, delta: u64) {
        let now = self.value.fetch_add(delta, Ordering::Relaxed) + delta;
        self.max.fetch_max(now, Ordering::Relaxed);
    }

    /// Subtracts `delta` from the current value, saturating at zero.
    #[inline]
    pub fn sub(&self, delta: u64) {
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(delta))
            });
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The largest value ever set or recorded.
    #[inline]
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }
}

/// One cache line per shard so concurrent writers never false-share.
///
/// 128 bytes covers the common 64-byte line plus adjacent-line prefetchers
/// (the same padding crossbeam uses on x86).
#[derive(Debug, Default)]
#[repr(align(128))]
struct PaddedCounter {
    value: AtomicU64,
}

/// A counter sharded across cache-line-padded cells, one per process id,
/// so the consensus hot path never contends on a shared line.
///
/// `add(pid, n)` touches only shard `pid % shards`; [`total`] sums all
/// shards. With one shard per participating thread this is contention-free
/// in the common case.
///
/// [`total`]: ShardedCounter::total
#[derive(Debug)]
pub struct ShardedCounter {
    shards: Vec<PaddedCounter>,
}

impl ShardedCounter {
    /// A counter with `shards` cells (at least one).
    pub fn new(shards: usize) -> ShardedCounter {
        let shards = shards.max(1);
        ShardedCounter {
            shards: (0..shards).map(|_| PaddedCounter::default()).collect(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Adds `n` to the shard owned by `pid`.
    #[inline]
    pub fn add(&self, pid: usize, n: u64) {
        self.shards[pid % self.shards.len()]
            .value
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the shard owned by `pid`.
    #[inline]
    pub fn incr(&self, pid: usize) {
        self.add(pid, 1);
    }

    /// Adds `n` to the calling thread's shard (for call sites that have no
    /// process id, e.g. library code reached from arbitrary threads).
    #[inline]
    pub fn add_local(&self, n: u64) {
        self.add(thread_shard(), n);
    }

    /// The count in `pid`'s shard.
    pub fn shard(&self, pid: usize) -> u64 {
        self.shards[pid % self.shards.len()]
            .value
            .load(Ordering::Relaxed)
    }

    /// The sum over all shards.
    pub fn total(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.value.load(Ordering::Relaxed))
            .sum()
    }

    /// Per-shard counts, indexed by shard.
    pub fn per_shard(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.value.load(Ordering::Relaxed))
            .collect()
    }

    /// The largest single-shard count (per-process "individual work" when
    /// shards map 1:1 to processes).
    pub fn max_shard(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.value.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0)
    }
}

static NEXT_THREAD_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SHARD: usize = NEXT_THREAD_SHARD.fetch_add(1, Ordering::Relaxed);
}

/// A small dense id for the calling thread, assigned on first use.
///
/// Used to pick a [`ShardedCounter`] shard when no process id is in scope;
/// ids increase by spawn order, so the first `n` threads get distinct
/// shards in an `n`-shard counter.
pub fn thread_shard() -> usize {
    THREAD_SHARD.with(|s| *s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_tracks_max() {
        let g = Gauge::new();
        g.set(7);
        g.set(3);
        assert_eq!(g.get(), 3);
        assert_eq!(g.max(), 7);
        g.record_max(10);
        assert_eq!(g.max(), 10);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn gauge_add_sub_aggregates_and_saturates() {
        let g = Gauge::new();
        g.add(5);
        g.add(3);
        assert_eq!(g.get(), 8);
        assert_eq!(g.max(), 8);
        g.sub(6);
        assert_eq!(g.get(), 2);
        assert_eq!(g.max(), 8);
        g.sub(100);
        assert_eq!(g.get(), 0, "sub saturates at zero");
    }

    #[test]
    fn sharded_counter_sums_shards() {
        let c = ShardedCounter::new(4);
        c.add(0, 1);
        c.add(1, 2);
        c.add(5, 10); // wraps to shard 1
        assert_eq!(c.shard(1), 12);
        assert_eq!(c.total(), 13);
        assert_eq!(c.max_shard(), 12);
        assert_eq!(c.per_shard(), vec![1, 12, 0, 0]);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let c = ShardedCounter::new(0);
        c.add(9, 3);
        assert_eq!(c.total(), 3);
        assert_eq!(c.shards(), 1);
    }

    #[test]
    fn concurrent_increments_all_land() {
        let c = Arc::new(ShardedCounter::new(8));
        let handles: Vec<_> = (0..8)
            .map(|pid| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.incr(pid);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.total(), 80_000);
    }

    #[test]
    fn thread_shards_are_distinct_across_threads() {
        let a = thread_shard();
        let b = std::thread::spawn(thread_shard).join().unwrap();
        assert_ne!(a, b);
    }
}
