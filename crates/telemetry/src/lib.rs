//! # mc-telemetry
//!
//! Observability primitives for the modular-consensus workspace: sharded
//! lock-free counters, power-of-two histograms, and a [`Recorder`] trait
//! for structured event export — dependency-free, std-only.
//!
//! The paper's headline claims are quantitative (Theorem 7: expected `6n`
//! total work, `2⌈lg n⌉ + O(1)` individual work, agreement probability
//! `δ ≈ 0.0553`), so every execution layer needs numbers. This crate is
//! the shared vocabulary: `mc-runtime` counts real-thread register
//! operations, `mc-sim` replays its `WorkMetrics`/`Trace` through the same
//! event schema, and `mc-bench` exports both as JSONL for perf
//! trajectories.
//!
//! * [`Counter`], [`ShardedCounter`], [`Gauge`] — hot-path-safe counting
//!   (one cache-line-padded shard per process id).
//! * [`Histogram`] — power-of-two buckets for rounds-to-decide, per-op
//!   counts, and latency.
//! * [`Recorder`], [`TelemetryEvent`] — structured events;
//!   [`NoopRecorder`] compiles away, [`JsonlRecorder`] streams JSON lines,
//!   [`AggregatingRecorder`] folds events back into counters.
//! * [`Snapshot`] — export in human text, JSON, and Prometheus
//!   text-exposition formats.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counter;
mod histogram;
pub mod json;
mod recorder;
mod snapshot;

pub use counter::{thread_shard, Counter, Gauge, ShardedCounter};
pub use histogram::{Histogram, HistogramSnapshot};
pub use recorder::{
    AggregatingRecorder, CircuitState, ConciliatorKind, FaultClass, JsonlRecorder, MultiRecorder,
    NoopRecorder, OpClass, Recorder, StageKind, TelemetryEvent,
};
pub use snapshot::Snapshot;
