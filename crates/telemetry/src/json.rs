//! Hand-rolled JSON: a tiny writer and validator.
//!
//! The workspace stays registry-independent (no serde), so events and
//! snapshots are rendered by this module. Output is plain UTF-8 JSON with
//! escaped strings and no trailing separators; the [`validate`] parser is
//! the test oracle for "every line the recorder writes is valid JSON".

use std::fmt::Write as _;

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// An in-progress JSON object, rendered field by field.
///
/// ```
/// let mut obj = mc_telemetry::json::Obj::new();
/// obj.str_field("ev", "decided").u64_field("pid", 3);
/// assert_eq!(obj.finish(), r#"{"ev":"decided","pid":3}"#);
/// ```
#[derive(Debug, Default)]
pub struct Obj {
    buf: String,
    any: bool,
}

impl Obj {
    /// Starts an empty object.
    pub fn new() -> Obj {
        Obj {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, key: &str) -> &mut Self {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        write_escaped(&mut self.buf, key);
        self.buf.push(':');
        self
    }

    /// Adds a string field.
    pub fn str_field(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        write_escaped(&mut self.buf, value);
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64_field(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a float field (`null` for non-finite values).
    pub fn f64_field(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        if value.is_finite() {
            // `{:?}` keeps a decimal point or exponent so the value reads
            // back as a float.
            let _ = write!(self.buf, "{value:?}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a boolean field.
    pub fn bool_field(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a field whose value is already-rendered JSON.
    pub fn raw_field(&mut self, key: &str, json: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(json);
        self
    }

    /// Adds an array of unsigned integers.
    pub fn u64_array_field(&mut self, key: &str, values: &[u64]) -> &mut Self {
        self.key(key);
        self.buf.push('[');
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            let _ = write!(self.buf, "{v}");
        }
        self.buf.push(']');
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Checks that `input` is exactly one valid JSON value.
///
/// # Errors
///
/// A human-readable description of the first syntax error, with its byte
/// offset.
pub fn validate(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos),
        Some(b't') => parse_literal(bytes, pos, b"true"),
        Some(b'f') => parse_literal(bytes, pos, b"false"),
        Some(b'n') => parse_literal(bytes, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, *pos)),
        None => Err(format!("unexpected end of input at byte {}", *pos)),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(bytes, pos, b'{')?;
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        skip_ws(bytes, pos);
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(bytes, pos, b'[')?;
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(bytes, pos, b'"')?;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match bytes.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => return Err(format!("bad \\u escape at byte {}", *pos)),
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
            }
            0x00..=0x1F => return Err(format!("unescaped control byte at {}", *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_start = *pos;
    while matches!(bytes.get(*pos), Some(d) if d.is_ascii_digit()) {
        *pos += 1;
    }
    if *pos == digits_start {
        return Err(format!("expected digits at byte {}", *pos));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while matches!(bytes.get(*pos), Some(d) if d.is_ascii_digit()) {
            *pos += 1;
        }
        if *pos == frac_start {
            return Err(format!("expected fraction digits at byte {}", *pos));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while matches!(bytes.get(*pos), Some(d) if d.is_ascii_digit()) {
            *pos += 1;
        }
        if *pos == exp_start {
            return Err(format!("expected exponent digits at byte {}", *pos));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_render_compactly() {
        let mut obj = Obj::new();
        obj.str_field("ev", "op")
            .u64_field("pid", 2)
            .bool_field("ok", true)
            .f64_field("p", 0.5)
            .u64_array_field("per", &[1, 2, 3]);
        let json = obj.finish();
        assert_eq!(
            json,
            r#"{"ev":"op","pid":2,"ok":true,"p":0.5,"per":[1,2,3]}"#
        );
        validate(&json).unwrap();
    }

    #[test]
    fn empty_object_is_valid() {
        let json = Obj::new().finish();
        assert_eq!(json, "{}");
        validate(&json).unwrap();
    }

    #[test]
    fn strings_escape() {
        let mut out = String::new();
        write_escaped(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, r#""a\"b\\c\nd\u0001""#);
        validate(&out).unwrap();
    }

    #[test]
    fn floats_read_back_as_floats() {
        let mut obj = Obj::new();
        obj.f64_field("x", 2.0).f64_field("bad", f64::NAN);
        let json = obj.finish();
        assert_eq!(json, r#"{"x":2.0,"bad":null}"#);
        validate(&json).unwrap();
    }

    #[test]
    fn validator_accepts_json() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-1.5e-3",
            r#"{"a":[1,{"b":"c"},null]}"#,
            "  [1, 2]  ",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_garbage() {
        for bad in [
            "",
            "{",
            "{]",
            r#"{"a"}"#,
            "[1,]",
            "01x",
            r#""unterminated"#,
            "{} trailing",
            "1.",
            "nul",
        ] {
            assert!(validate(bad).is_err(), "{bad} unexpectedly valid");
        }
    }
}
