//! Power-of-two-bucket histograms.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one per possible bit length of a `u64`, plus zero.
const BUCKETS: usize = 65;

/// Bucket index for `v`: its bit length (0 for 0, 1 for 1, 2 for 2–3,
/// 3 for 4–7, …). Bucket `k ≥ 1` covers `[2^(k-1), 2^k - 1]`.
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `k`.
fn bucket_upper(k: usize) -> u64 {
    if k >= 64 {
        u64::MAX
    } else {
        (1u64 << k) - 1
    }
}

/// A lock-free histogram with power-of-two buckets.
///
/// Built for the paper's quantities — rounds to decide, per-process
/// operation counts, decide latency in nanoseconds — where the interesting
/// question is "which power of two" (`2⌈lg n⌉ + O(1)` individual work,
/// probability-doubling round index), so exponential buckets lose nothing.
///
/// Recording is a single relaxed `fetch_add`; reading is approximate under
/// concurrency but exact once writers quiesce.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean observation, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// An upper bound on the `q`-quantile (`0 ≤ q ≤ 1`): the upper edge of
    /// the first bucket whose cumulative count reaches `q · count`.
    pub fn quantile_upper(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * count as f64).ceil() as u64;
        let rank = rank.max(1);
        let mut cumulative = 0u64;
        for (k, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= rank {
                return bucket_upper(k).min(self.max());
            }
        }
        self.max()
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (k, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((bucket_upper(k), n));
            }
        }
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            buckets,
        }
    }
}

/// A frozen copy of a [`Histogram`]: only non-empty buckets, keyed by
/// their inclusive upper bound.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Largest observation.
    pub max: u64,
    /// `(upper_bound, count)` for each non-empty bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the `q`-quantile (`0 ≤ q ≤ 1`), mirroring
    /// [`Histogram::quantile_upper`] on the frozen buckets: the upper edge
    /// of the first bucket whose cumulative count reaches `q · count`,
    /// clamped to the observed max. 0 when empty.
    pub fn quantile_upper(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let rank = rank.max(1);
        let mut cumulative = 0u64;
        for &(upper, n) in &self.buckets {
            cumulative += n;
            if cumulative >= rank {
                return upper.min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(3), 7);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn record_and_summarize() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 110);
        assert_eq!(h.max(), 100);
        let snap = h.snapshot();
        assert_eq!(snap.buckets, vec![(0, 1), (1, 1), (3, 2), (7, 1), (127, 1)]);
        assert!((snap.mean() - 110.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_bound_the_distribution() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        // Median of 1..=100 is 50ish; its bucket [32, 63] upper bound is 63.
        assert_eq!(h.quantile_upper(0.5), 63);
        assert_eq!(h.quantile_upper(1.0), 100); // clamped to observed max
        assert_eq!(h.quantile_upper(0.0), 1);
        let empty = Histogram::new();
        assert_eq!(empty.quantile_upper(0.5), 0);
    }

    #[test]
    fn snapshot_quantiles_match_the_live_histogram() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(snap.quantile_upper(q), h.quantile_upper(q), "q={q}");
        }
        assert_eq!(HistogramSnapshot::default().quantile_upper(0.5), 0);
    }
}
