//! Ranking and unranking of fixed-size subsets (the combinatorial number
//! system), used to assign each value a distinct `⌊k/2⌋`-subset write quorum.

use crate::binomial::binomial;

/// Returns the `rank`-th `t`-subset of `{0, …, k−1}` in colexicographic
/// order, as a sorted vector of element indices.
///
/// Colex unranking via the combinatorial number system: the unique
/// representation `rank = C(c_t, t) + … + C(c_1, 1)` with
/// `c_t > … > c_1 ≥ 0` gives the subset `{c_1, …, c_t}`.
///
/// # Panics
///
/// Panics if `t > k` or `rank ≥ C(k, t)`.
///
/// # Example
///
/// ```
/// use mc_quorums::subset_of_rank;
/// assert_eq!(subset_of_rank(4, 2, 0), vec![0, 1]);
/// assert_eq!(subset_of_rank(4, 2, 5), vec![2, 3]);
/// ```
pub fn subset_of_rank(k: u64, t: u64, rank: u64) -> Vec<u64> {
    assert!(t <= k, "subset size {t} exceeds universe size {k}");
    assert!(
        rank < binomial(k, t),
        "rank {rank} out of range for C({k}, {t})"
    );
    let mut subset = Vec::with_capacity(t as usize);
    let mut remaining = rank;
    let mut size = t;
    // Greedily peel off the largest element: the biggest c with
    // C(c, size) ≤ remaining.
    let mut c = k;
    while size > 0 {
        // Decrease c until C(c, size) ≤ remaining; c ≥ size − 1 always
        // terminates because C(size − 1, size) = 0.
        while binomial(c, size) > remaining {
            c -= 1;
        }
        subset.push(c);
        remaining -= binomial(c, size);
        size -= 1;
    }
    subset.reverse();
    subset
}

/// Returns the colexicographic rank of a sorted `t`-subset of `{0, …, k−1}`.
///
/// Inverse of [`subset_of_rank`].
///
/// # Panics
///
/// Panics if the subset is not strictly increasing or contains an element
/// `≥ k`.
///
/// # Example
///
/// ```
/// use mc_quorums::rank_of_subset;
/// assert_eq!(rank_of_subset(4, &[0, 1]), 0);
/// assert_eq!(rank_of_subset(4, &[2, 3]), 5);
/// ```
pub fn rank_of_subset(k: u64, subset: &[u64]) -> u64 {
    let mut rank = 0;
    let mut prev: Option<u64> = None;
    for (i, &c) in subset.iter().enumerate() {
        assert!(c < k, "element {c} out of universe {k}");
        if let Some(p) = prev {
            assert!(c > p, "subset must be strictly increasing");
        }
        prev = Some(c);
        rank += binomial(c, i as u64 + 1);
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colex_order_for_4_choose_2() {
        let expected = [
            vec![0, 1],
            vec![0, 2],
            vec![1, 2],
            vec![0, 3],
            vec![1, 3],
            vec![2, 3],
        ];
        for (rank, subset) in expected.iter().enumerate() {
            assert_eq!(&subset_of_rank(4, 2, rank as u64), subset);
            assert_eq!(rank_of_subset(4, subset), rank as u64);
        }
    }

    #[test]
    fn roundtrip_exhaustive_small() {
        for k in 0..=10u64 {
            for t in 0..=k {
                for rank in 0..binomial(k, t) {
                    let s = subset_of_rank(k, t, rank);
                    assert_eq!(s.len(), t as usize);
                    assert!(s.windows(2).all(|w| w[0] < w[1]));
                    assert!(s.iter().all(|&e| e < k));
                    assert_eq!(rank_of_subset(k, &s), rank);
                }
            }
        }
    }

    #[test]
    fn distinct_ranks_give_distinct_subsets() {
        let mut seen = std::collections::HashSet::new();
        for rank in 0..binomial(8, 4) {
            assert!(seen.insert(subset_of_rank(8, 4, rank)));
        }
    }

    #[test]
    fn empty_subset() {
        assert_eq!(subset_of_rank(5, 0, 0), Vec::<u64>::new());
        assert_eq!(rank_of_subset(5, &[]), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rank_out_of_range_rejected() {
        subset_of_rank(4, 2, 6);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_subset_rejected() {
        rank_of_subset(4, &[2, 1]);
    }
}
