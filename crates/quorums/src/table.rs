//! User-defined quorum systems, validated at construction.

use std::error::Error;
use std::fmt;

use crate::scheme::QuorumScheme;
use crate::verify::{check_cross_intersection, QuorumViolation};

/// Error constructing a [`TableScheme`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableSchemeError {
    /// The write and read tables have different lengths.
    MismatchedTables {
        /// Number of write quorums supplied.
        writes: usize,
        /// Number of read quorums supplied.
        reads: usize,
    },
    /// No values were supplied.
    Empty,
    /// A quorum entry indexes past the declared pool.
    SlotOutOfRange {
        /// The value whose quorum is malformed.
        value: u64,
        /// The offending slot index.
        slot: u64,
        /// The pool size implied by the largest slot of the tables.
        pool: u64,
    },
    /// The tables violate Theorem 8's cross-intersection hypothesis.
    NotCrossIntersecting(QuorumViolation),
}

impl fmt::Display for TableSchemeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableSchemeError::MismatchedTables { writes, reads } => {
                write!(f, "{writes} write quorums but {reads} read quorums")
            }
            TableSchemeError::Empty => write!(f, "a quorum table needs at least one value"),
            TableSchemeError::SlotOutOfRange { value, slot, pool } => {
                write!(
                    f,
                    "value {value}'s quorum uses slot {slot} outside pool {pool}"
                )
            }
            TableSchemeError::NotCrossIntersecting(v) => {
                write!(f, "tables are not cross-intersecting: {v}")
            }
        }
    }
}

impl Error for TableSchemeError {}

/// An explicit quorum system given as write/read tables, checked against
/// Theorem 8's hypothesis (`W_v′ ∩ R_v = ∅ ⟺ v′ = v`) exhaustively at
/// construction — so a `TableScheme` that exists is safe to ratify with.
///
/// Use this to experiment with quorum designs beyond the paper's three
/// (e.g. asymmetric quorums that make some values cheaper to announce).
///
/// # Example
///
/// ```
/// use mc_quorums::{QuorumScheme, TableScheme};
///
/// // A lopsided 3-value system over 4 registers: value 0 announces with a
/// // single write.
/// let scheme = TableScheme::new(
///     5,
///     vec![vec![0], vec![1, 2], vec![1, 3]],
///     vec![vec![1, 2, 3], vec![0, 3], vec![0, 2]],
/// )
/// .unwrap();
/// assert_eq!(scheme.capacity(), 3);
/// assert_eq!(scheme.write_quorum(0), vec![0]);
/// ```
#[derive(Debug, Clone)]
pub struct TableScheme {
    pool: u64,
    writes: Vec<Vec<u64>>,
    reads: Vec<Vec<u64>>,
}

impl TableScheme {
    /// Builds and validates a table scheme over `pool` registers.
    ///
    /// Quorums are sorted and deduplicated. Validation is exhaustive
    /// (quadratic in the number of values).
    ///
    /// # Errors
    ///
    /// Any [`TableSchemeError`], including a full cross-intersection check.
    pub fn new(
        pool: u64,
        writes: Vec<Vec<u64>>,
        reads: Vec<Vec<u64>>,
    ) -> Result<TableScheme, TableSchemeError> {
        if writes.len() != reads.len() {
            return Err(TableSchemeError::MismatchedTables {
                writes: writes.len(),
                reads: reads.len(),
            });
        }
        if writes.is_empty() {
            return Err(TableSchemeError::Empty);
        }
        let normalize = |mut q: Vec<u64>| {
            q.sort_unstable();
            q.dedup();
            q
        };
        let writes: Vec<Vec<u64>> = writes.into_iter().map(normalize).collect();
        let reads: Vec<Vec<u64>> = reads.into_iter().map(normalize).collect();
        for (value, quorum) in writes.iter().chain(reads.iter()).enumerate() {
            if let Some(&slot) = quorum.iter().find(|&&s| s >= pool) {
                return Err(TableSchemeError::SlotOutOfRange {
                    value: (value % writes.len()) as u64,
                    slot,
                    pool,
                });
            }
        }
        let scheme = TableScheme {
            pool,
            writes,
            reads,
        };
        check_cross_intersection(&scheme, u64::MAX)
            .map_err(TableSchemeError::NotCrossIntersecting)?;
        Ok(scheme)
    }
}

impl QuorumScheme for TableScheme {
    fn pool_size(&self) -> u64 {
        self.pool
    }

    fn capacity(&self) -> u64 {
        self.writes.len() as u64
    }

    fn write_quorum(&self, v: u64) -> Vec<u64> {
        self.writes[usize::try_from(v).expect("value fits usize")].clone()
    }

    fn read_quorum(&self, v: u64) -> Vec<u64> {
        self.reads[usize::try_from(v).expect("value fits usize")].clone()
    }

    fn name(&self) -> String {
        format!("table(m={}, pool={})", self.writes.len(), self.pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{BinaryScheme, BinomialScheme};
    use crate::verify::bollobas_sum;

    #[test]
    fn binary_scheme_as_a_table() {
        let table = TableScheme::new(2, vec![vec![0], vec![1]], vec![vec![1], vec![0]]).unwrap();
        let builtin = BinaryScheme::new();
        for v in 0..2 {
            assert_eq!(table.write_quorum(v), builtin.write_quorum(v));
            assert_eq!(table.read_quorum(v), builtin.read_quorum(v));
        }
    }

    #[test]
    fn binomial_scheme_roundtrips_through_a_table() {
        let b = BinomialScheme::for_capacity(10).unwrap();
        let m = b.capacity();
        let table = TableScheme::new(
            b.pool_size(),
            (0..m).map(|v| b.write_quorum(v)).collect(),
            (0..m).map(|v| b.read_quorum(v)).collect(),
        )
        .unwrap();
        assert_eq!(table.capacity(), m);
        assert!((bollobas_sum(&table, u64::MAX) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn asymmetric_tables_are_accepted() {
        // Value 0 announces with one write; read quorums compensate.
        let scheme = TableScheme::new(
            4,
            vec![vec![0], vec![1, 2], vec![1, 3]],
            vec![vec![1, 2, 3], vec![0, 3], vec![0, 2]],
        )
        .unwrap();
        assert_eq!(scheme.capacity(), 3);
        assert_eq!(scheme.name(), "table(m=3, pool=4)");
    }

    #[test]
    fn mismatched_tables_rejected() {
        let err = TableScheme::new(2, vec![vec![0]], vec![vec![1], vec![0]]).unwrap_err();
        assert!(matches!(err, TableSchemeError::MismatchedTables { .. }));
    }

    #[test]
    fn empty_tables_rejected() {
        assert_eq!(
            TableScheme::new(2, vec![], vec![]).unwrap_err(),
            TableSchemeError::Empty
        );
    }

    #[test]
    fn out_of_pool_slots_rejected() {
        let err = TableScheme::new(2, vec![vec![0], vec![5]], vec![vec![1], vec![0]]).unwrap_err();
        assert!(matches!(
            err,
            TableSchemeError::SlotOutOfRange { slot: 5, .. }
        ));
    }

    #[test]
    fn self_intersecting_tables_rejected() {
        let err = TableScheme::new(2, vec![vec![0], vec![1]], vec![vec![0], vec![1]]).unwrap_err();
        assert!(matches!(
            err,
            TableSchemeError::NotCrossIntersecting(QuorumViolation::SelfIntersection { .. })
        ));
    }

    #[test]
    fn non_colliding_tables_rejected() {
        let err = TableScheme::new(4, vec![vec![0], vec![1]], vec![vec![2], vec![3]]).unwrap_err();
        assert!(matches!(
            err,
            TableSchemeError::NotCrossIntersecting(QuorumViolation::MissedConflict { .. })
        ));
    }

    #[test]
    fn quorums_are_normalized() {
        let scheme =
            TableScheme::new(2, vec![vec![0, 0], vec![1]], vec![vec![1, 1], vec![0]]).unwrap();
        assert_eq!(scheme.write_quorum(0), vec![0]);
        assert_eq!(scheme.read_quorum(0), vec![1]);
    }
}
