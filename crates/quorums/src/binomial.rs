//! Binomial coefficients and pool sizing.

/// Computes `C(n, k)` exactly, saturating at `u64::MAX` on overflow.
///
/// Saturation (rather than panicking) is the right behaviour here: pool
/// sizing only ever asks "is `C(k, ⌊k/2⌋)` at least `m`", and `m` fits in a
/// `u64`.
///
/// # Example
///
/// ```
/// use mc_quorums::binomial;
/// assert_eq!(binomial(6, 3), 20);
/// assert_eq!(binomial(5, 0), 1);
/// assert_eq!(binomial(3, 5), 0);
/// ```
pub fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        // acc * (n - i) cannot overflow u128 while acc ≤ u64::MAX and
        // n ≤ u64::MAX; clamp afterwards.
        acc = acc.saturating_mul((n - i) as u128) / (i as u128 + 1);
        if acc > u64::MAX as u128 {
            return u64::MAX;
        }
    }
    acc as u64
}

/// Computes the central binomial coefficient `C(k, ⌊k/2⌋)`, saturating.
pub fn central_binomial(k: u64) -> u64 {
    binomial(k, k / 2)
}

/// Returns the smallest pool size `k` such that `C(k, ⌊k/2⌋) ≥ m` — the
/// register count of the optimal (binomial) quorum scheme for `m` values.
///
/// This is the paper's `⌈lg m⌉ + Θ(log log m)` (§6.2 item 2): the central
/// binomial coefficient is `Θ(2^k / √k)`, so `k` exceeds `lg m` by an
/// additive `Θ(log log m)` term.
///
/// # Panics
///
/// Panics if `m == 0` (there is no quorum system for zero values).
///
/// # Example
///
/// ```
/// use mc_quorums::optimal_pool_size;
/// assert_eq!(optimal_pool_size(2), 2);  // C(2,1) = 2
/// assert_eq!(optimal_pool_size(6), 4);  // C(4,2) = 6
/// assert_eq!(optimal_pool_size(7), 5);  // C(5,2) = 10 ≥ 7
/// ```
pub fn optimal_pool_size(m: u64) -> u64 {
    assert!(m > 0, "capacity must be positive");
    if m == 1 {
        // A single value needs no conflict detection, but the ratifier still
        // wants non-empty quorums; k = 2 gives W = {0}, R = {1}.
        return 2;
    }
    let mut k = 1;
    while central_binomial(k) < m {
        k += 1;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values() {
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(4, 2), 6);
        assert_eq!(binomial(10, 5), 252);
        assert_eq!(binomial(52, 5), 2_598_960);
    }

    #[test]
    fn symmetry() {
        for n in 0..20u64 {
            for k in 0..=n {
                assert_eq!(binomial(n, k), binomial(n, n - k));
            }
        }
    }

    #[test]
    fn pascal_identity() {
        for n in 1..30u64 {
            for k in 1..n {
                assert_eq!(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k));
            }
        }
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        assert_eq!(binomial(200, 100), u64::MAX);
        assert_eq!(central_binomial(200), u64::MAX);
    }

    #[test]
    fn pool_size_monotone_and_sufficient() {
        let mut prev = 0;
        for m in 1..10_000u64 {
            let k = optimal_pool_size(m);
            assert!(central_binomial(k) >= m);
            if k > 1 {
                assert!(
                    central_binomial(k - 1) < m.max(2),
                    "k not minimal for m={m}"
                );
            }
            assert!(k >= prev);
            prev = k;
        }
    }

    #[test]
    fn pool_size_is_lg_m_plus_loglog_term() {
        // k − ⌈lg m⌉ grows, but very slowly (Θ(log log m)).
        for (m, max_excess) in [(1u64 << 10, 5), (1 << 20, 6), (1 << 40, 7)] {
            let lg = 64 - (m - 1).leading_zeros() as u64;
            let k = optimal_pool_size(m);
            assert!(k >= lg, "k={k} < lg m={lg}");
            assert!(k - lg <= max_excess, "excess {} too big for m={m}", k - lg);
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        optimal_pool_size(0);
    }
}
