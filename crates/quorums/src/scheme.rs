//! The quorum-scheme abstraction and the paper's three encodings.

use std::error::Error;
use std::fmt;

use crate::binomial::{central_binomial, optimal_pool_size};
use crate::ranking::subset_of_rank;

/// Error constructing a quorum scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemeError {
    /// Requested capacity was zero.
    ZeroCapacity,
    /// Requested value is outside the scheme's capacity.
    ValueOutOfRange {
        /// The offending value.
        value: u64,
        /// The scheme's capacity.
        capacity: u64,
    },
}

impl fmt::Display for SchemeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemeError::ZeroCapacity => write!(f, "quorum scheme capacity must be positive"),
            SchemeError::ValueOutOfRange { value, capacity } => {
                write!(f, "value {value} out of range for capacity {capacity}")
            }
        }
    }
}

impl Error for SchemeError {}

/// A family of cross-intersecting write/read quorums over a pool of
/// announcement registers.
///
/// The defining property (Theorem 8's hypothesis) is
/// `W_v′ ∩ R_v = ∅ ⟺ v′ = v` for all `v, v′ < capacity()`; the
/// [`verify`](crate::verify) module checks it.
///
/// Register indices returned by the quorum methods are offsets into a pool
/// of [`pool_size`](QuorumScheme::pool_size) binary registers; the ratifier
/// maps them onto real register ids.
pub trait QuorumScheme: Send + Sync {
    /// Number of binary announcement registers the scheme needs.
    fn pool_size(&self) -> u64;

    /// Number of distinct values the scheme supports.
    fn capacity(&self) -> u64;

    /// The registers a process with value `v` announces to (sorted).
    ///
    /// # Panics
    ///
    /// Panics if `v ≥ capacity()`.
    fn write_quorum(&self, v: u64) -> Vec<u64>;

    /// The registers a process with preference `v` scans for conflicting
    /// announcements (sorted).
    ///
    /// # Panics
    ///
    /// Panics if `v ≥ capacity()`.
    fn read_quorum(&self, v: u64) -> Vec<u64>;

    /// Worst-case operations a ratifier built on this scheme performs:
    /// `|W_v| + |R_v|` plus one proposal read and at most one proposal
    /// write.
    fn individual_work_bound(&self) -> u64 {
        let mut worst = 0;
        // Quorum sizes are uniform for all our schemes, but compute the
        // bound honestly from value 0 and capacity−1 as spot checks.
        for v in [0, self.capacity().saturating_sub(1)] {
            let w = self.write_quorum(v).len() as u64 + self.read_quorum(v).len() as u64;
            worst = worst.max(w);
        }
        worst + 2
    }

    /// Short name for diagnostics and experiment tables.
    fn name(&self) -> String;

    /// An involution on pool slots realizing the binary value swap
    /// `0 ↔ 1`, if one exists: renaming slot `a` to `b` (and `b` to `a`)
    /// for each returned pair must map `W_0 → W_1` and `R_0 → R_1`
    /// *positionally* (the `i`-th slot of `W_0` to the `i`-th slot of
    /// `W_1`), so that a ratifier execution with all values swapped visits
    /// the renamed slots in the same order. Slots not mentioned are fixed.
    ///
    /// The default computes the pairing from the quorums themselves and
    /// returns `None` when no positional involution exists (or when the
    /// scheme cannot hold two values). Used by the graph checker's
    /// symmetry reduction; correctness of a `Some` answer is
    /// self-certifying because it is derived from the quorum structure.
    fn binary_swap(&self) -> Option<Vec<(u64, u64)>> {
        if self.capacity() < 2 {
            return None;
        }
        let mut map: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        let bind = |a: u64, b: u64, map: &mut std::collections::BTreeMap<u64, u64>| -> bool {
            match map.get(&a) {
                Some(&prev) => prev == b,
                None => {
                    map.insert(a, b);
                    true
                }
            }
        };
        for (zero, one) in [
            (self.write_quorum(0), self.write_quorum(1)),
            (self.read_quorum(0), self.read_quorum(1)),
        ] {
            if zero.len() != one.len() {
                return None;
            }
            for (&a, &b) in zero.iter().zip(one.iter()) {
                if !bind(a, b, &mut map) || !bind(b, a, &mut map) {
                    return None;
                }
            }
        }
        Some(
            map.iter()
                .filter(|&(&a, &b)| a < b)
                .map(|(&a, &b)| (a, b))
                .collect(),
        )
    }
}

fn assert_in_range(v: u64, capacity: u64) {
    assert!(
        v < capacity,
        "value {v} out of range for scheme capacity {capacity}"
    );
}

/// The 2-value scheme (§6.2 item 1): registers `{r₀, r₁}`, `W_v = {r_v}`,
/// `R_v = {r_{1−v}}`. Three registers and ≤ 4 operations per process once
/// the proposal register is added.
#[derive(Debug, Clone, Copy, Default)]
pub struct BinaryScheme;

impl BinaryScheme {
    /// Creates the binary scheme.
    pub fn new() -> BinaryScheme {
        BinaryScheme
    }
}

impl QuorumScheme for BinaryScheme {
    fn pool_size(&self) -> u64 {
        2
    }

    fn capacity(&self) -> u64 {
        2
    }

    fn write_quorum(&self, v: u64) -> Vec<u64> {
        assert_in_range(v, 2);
        vec![v]
    }

    fn read_quorum(&self, v: u64) -> Vec<u64> {
        assert_in_range(v, 2);
        vec![1 - v]
    }

    fn name(&self) -> String {
        "binary".to_string()
    }
}

/// The optimal scheme (§6.2 item 2): a pool of `k` registers with
/// `C(k, ⌊k/2⌋) ≥ m`; value `v`'s write quorum is the `v`-th
/// `⌊k/2⌋`-subset in colex order and its read quorum is the complement.
///
/// `k = ⌈lg m⌉ + Θ(log log m)`, which Bollobás's theorem (Theorem 9) shows
/// is the best possible for any scheme with `|W| + |R| = k`.
#[derive(Debug, Clone, Copy)]
pub struct BinomialScheme {
    k: u64,
    t: u64,
    capacity: u64,
}

impl BinomialScheme {
    /// Creates the smallest binomial scheme supporting at least `m` values.
    ///
    /// # Errors
    ///
    /// Returns [`SchemeError::ZeroCapacity`] if `m == 0`.
    pub fn for_capacity(m: u64) -> Result<BinomialScheme, SchemeError> {
        if m == 0 {
            return Err(SchemeError::ZeroCapacity);
        }
        let k = optimal_pool_size(m);
        Ok(BinomialScheme {
            k,
            t: k / 2,
            capacity: central_binomial(k),
        })
    }

    /// Creates the scheme with an explicit pool size `k ≥ 2`, supporting
    /// `C(k, ⌊k/2⌋)` values.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn with_pool(k: u64) -> BinomialScheme {
        assert!(k >= 2, "pool must have at least 2 registers");
        BinomialScheme {
            k,
            t: k / 2,
            capacity: central_binomial(k),
        }
    }
}

impl QuorumScheme for BinomialScheme {
    fn pool_size(&self) -> u64 {
        self.k
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn write_quorum(&self, v: u64) -> Vec<u64> {
        assert_in_range(v, self.capacity);
        subset_of_rank(self.k, self.t, v)
    }

    fn read_quorum(&self, v: u64) -> Vec<u64> {
        assert_in_range(v, self.capacity);
        let w = subset_of_rank(self.k, self.t, v);
        let mut in_w = vec![false; self.k as usize];
        for &e in &w {
            in_w[e as usize] = true;
        }
        (0..self.k).filter(|&e| !in_w[e as usize]).collect()
    }

    fn name(&self) -> String {
        format!("binomial(k={})", self.k)
    }
}

/// The simpler scheme (§6.2 item 3): a `⌈lg m⌉ × 2` array of registers
/// `r_{i,j}`; writing `v` as a bit vector, `W_v = {r_{i,v_i}}` and `R_v`
/// is its complement. `2⌈lg m⌉` registers, at most `2⌈lg m⌉ + 2`
/// operations — a constant factor worse than [`BinomialScheme`] but with
/// trivial indexing.
#[derive(Debug, Clone, Copy)]
pub struct BitVectorScheme {
    bits: u32,
}

impl BitVectorScheme {
    /// Creates the smallest bit-vector scheme supporting at least `m`
    /// values.
    ///
    /// # Errors
    ///
    /// Returns [`SchemeError::ZeroCapacity`] if `m == 0`.
    pub fn for_capacity(m: u64) -> Result<BitVectorScheme, SchemeError> {
        if m == 0 {
            return Err(SchemeError::ZeroCapacity);
        }
        let bits = if m <= 2 {
            1
        } else {
            64 - (m - 1).leading_zeros()
        };
        Ok(BitVectorScheme { bits })
    }

    /// Creates the scheme for `bits`-bit values (capacity `2^bits`).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or exceeds 63.
    pub fn with_bits(bits: u32) -> BitVectorScheme {
        assert!((1..=63).contains(&bits), "bits must be in 1..=63");
        BitVectorScheme { bits }
    }

    /// Register index of the pair `(bit position i, bit value j)`.
    fn slot(i: u32, j: u64) -> u64 {
        2 * i as u64 + j
    }
}

impl QuorumScheme for BitVectorScheme {
    fn pool_size(&self) -> u64 {
        2 * self.bits as u64
    }

    fn capacity(&self) -> u64 {
        1u64 << self.bits
    }

    fn write_quorum(&self, v: u64) -> Vec<u64> {
        assert_in_range(v, self.capacity());
        (0..self.bits)
            .map(|i| Self::slot(i, (v >> i) & 1))
            .collect()
    }

    fn read_quorum(&self, v: u64) -> Vec<u64> {
        assert_in_range(v, self.capacity());
        (0..self.bits)
            .map(|i| Self::slot(i, 1 - ((v >> i) & 1)))
            .collect()
    }

    fn name(&self) -> String {
        format!("bitvector(bits={})", self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_scheme_matches_paper() {
        let s = BinaryScheme::new();
        assert_eq!(s.pool_size(), 2);
        assert_eq!(s.write_quorum(0), vec![0]);
        assert_eq!(s.read_quorum(0), vec![1]);
        assert_eq!(s.write_quorum(1), vec![1]);
        assert_eq!(s.read_quorum(1), vec![0]);
        // 1 announce + 1 scan + proposal read/write = 4 ops, as in §6.1.
        assert_eq!(s.individual_work_bound(), 4);
    }

    #[test]
    fn binomial_scheme_sizes() {
        let s = BinomialScheme::for_capacity(6).unwrap();
        assert_eq!(s.pool_size(), 4); // C(4,2) = 6
        assert_eq!(s.capacity(), 6);
        for v in 0..6 {
            assert_eq!(s.write_quorum(v).len(), 2);
            assert_eq!(s.read_quorum(v).len(), 2);
        }
    }

    #[test]
    fn binomial_quorums_partition_pool() {
        let s = BinomialScheme::for_capacity(100).unwrap();
        for v in 0..s.capacity().min(100) {
            let mut all: Vec<u64> = s.write_quorum(v);
            all.extend(s.read_quorum(v));
            all.sort_unstable();
            assert_eq!(all, (0..s.pool_size()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn bitvector_scheme_sizes() {
        let s = BitVectorScheme::for_capacity(6).unwrap();
        assert_eq!(s.pool_size(), 6); // 3 bits × 2
        assert_eq!(s.capacity(), 8);
        assert_eq!(s.write_quorum(0b101), vec![1, 2, 5]);
        assert_eq!(s.read_quorum(0b101), vec![0, 3, 4]);
    }

    #[test]
    fn bitvector_capacity_edges() {
        assert_eq!(BitVectorScheme::for_capacity(1).unwrap().capacity(), 2);
        assert_eq!(BitVectorScheme::for_capacity(2).unwrap().capacity(), 2);
        assert_eq!(BitVectorScheme::for_capacity(3).unwrap().capacity(), 4);
        assert_eq!(BitVectorScheme::for_capacity(4).unwrap().capacity(), 4);
        assert_eq!(BitVectorScheme::for_capacity(5).unwrap().capacity(), 8);
    }

    #[test]
    fn zero_capacity_rejected() {
        assert_eq!(
            BinomialScheme::for_capacity(0).unwrap_err(),
            SchemeError::ZeroCapacity
        );
        assert_eq!(
            BitVectorScheme::for_capacity(0).unwrap_err(),
            SchemeError::ZeroCapacity
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_value_rejected() {
        BinaryScheme::new().write_quorum(2);
    }

    #[test]
    fn binary_swap_exists_for_all_paper_schemes() {
        let schemes: Vec<Box<dyn QuorumScheme>> = vec![
            Box::new(BinaryScheme::new()),
            Box::new(BinomialScheme::with_pool(2)),
            Box::new(BinomialScheme::for_capacity(6).unwrap()),
            Box::new(BitVectorScheme::with_bits(1)),
            Box::new(BitVectorScheme::with_bits(3)),
        ];
        for s in &schemes {
            let pairs = s.binary_swap().unwrap_or_else(|| {
                panic!("{} should admit a binary swap", s.name());
            });
            let rename = |slot: u64| {
                for &(a, b) in &pairs {
                    if slot == a {
                        return b;
                    }
                    if slot == b {
                        return a;
                    }
                }
                slot
            };
            let w0: Vec<u64> = s.write_quorum(0).iter().map(|&x| rename(x)).collect();
            assert_eq!(w0, s.write_quorum(1), "{}: W_0 → W_1", s.name());
            let r0: Vec<u64> = s.read_quorum(0).iter().map(|&x| rename(x)).collect();
            assert_eq!(r0, s.read_quorum(1), "{}: R_0 → R_1", s.name());
        }
        assert_eq!(BinaryScheme::new().binary_swap(), Some(vec![(0, 1)]));
    }

    #[test]
    fn binomial_beats_bitvector_on_registers() {
        for m in [16u64, 256, 4096, 1 << 20] {
            let b = BinomialScheme::for_capacity(m).unwrap();
            let v = BitVectorScheme::for_capacity(m).unwrap();
            assert!(
                b.pool_size() < v.pool_size(),
                "m={m}: binomial {} vs bitvector {}",
                b.pool_size(),
                v.pool_size()
            );
        }
    }
}
