//! Verification of the cross-intersection property and the Bollobás bound.
//!
//! Theorem 8 requires `W_v′ ∩ R_v = ∅ ⟺ v′ = v`; Theorem 9 (Bollobás,
//! via Jukna) shows any such family satisfies
//! `Σᵢ C(aᵢ + bᵢ, aᵢ)⁻¹ ≤ 1` where `aᵢ = |Wᵢ|`, `bᵢ = |Rᵢ|` — which is what
//! makes the binomial scheme's register count optimal.

use std::collections::HashSet;
use std::error::Error;
use std::fmt;

use crate::binomial::binomial;
use crate::scheme::QuorumScheme;

/// A violation of the cross-intersection property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuorumViolation {
    /// Some value's write quorum intersects its own read quorum.
    SelfIntersection {
        /// The offending value.
        value: u64,
        /// A register in both quorums.
        register: u64,
    },
    /// Two distinct values whose quorums fail to collide: `W_other` misses
    /// `R_value`, so `other`'s announcement would go undetected.
    MissedConflict {
        /// The scanning value.
        value: u64,
        /// The undetected announcing value.
        other: u64,
    },
}

impl fmt::Display for QuorumViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuorumViolation::SelfIntersection { value, register } => write!(
                f,
                "value {value}'s write quorum intersects its own read quorum at register {register}"
            ),
            QuorumViolation::MissedConflict { value, other } => write!(
                f,
                "value {value}'s read quorum misses value {other}'s write quorum"
            ),
        }
    }
}

impl Error for QuorumViolation {}

/// Exhaustively checks the cross-intersection property over the first
/// `limit` values of the scheme (all values if `limit ≥ capacity`).
///
/// Quadratic in `limit`; use sampled checks for astronomically large
/// capacities.
///
/// # Errors
///
/// Returns the first [`QuorumViolation`] found.
pub fn check_cross_intersection(
    scheme: &dyn QuorumScheme,
    limit: u64,
) -> Result<(), QuorumViolation> {
    let m = scheme.capacity().min(limit);
    let quorums: Vec<(HashSet<u64>, HashSet<u64>)> = (0..m)
        .map(|v| {
            (
                scheme.write_quorum(v).into_iter().collect(),
                scheme.read_quorum(v).into_iter().collect(),
            )
        })
        .collect();
    for (v, (w, r)) in quorums.iter().enumerate() {
        if let Some(&reg) = w.intersection(r).next() {
            return Err(QuorumViolation::SelfIntersection {
                value: v as u64,
                register: reg,
            });
        }
        for (other, (w_other, _)) in quorums.iter().enumerate() {
            if other == v {
                continue;
            }
            if w_other.is_disjoint(r) {
                return Err(QuorumViolation::MissedConflict {
                    value: v as u64,
                    other: other as u64,
                });
            }
        }
    }
    Ok(())
}

/// Checks the cross-intersection property on a sample of value pairs drawn
/// deterministically from `seed` — usable when capacity is too large for the
/// exhaustive check.
///
/// # Errors
///
/// Returns the first [`QuorumViolation`] found among the sampled pairs.
pub fn check_cross_intersection_sampled(
    scheme: &dyn QuorumScheme,
    pairs: usize,
    seed: u64,
) -> Result<(), QuorumViolation> {
    let m = scheme.capacity();
    let mut state = seed | 1;
    let mut next = || {
        // xorshift64*: adequate for test-pair sampling, no rand dependency.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D) % m
    };
    for _ in 0..pairs {
        let v = next();
        let o = next();
        let w: HashSet<u64> = scheme.write_quorum(v).into_iter().collect();
        let r: HashSet<u64> = scheme.read_quorum(v).into_iter().collect();
        if let Some(&reg) = w.intersection(&r).next() {
            return Err(QuorumViolation::SelfIntersection {
                value: v,
                register: reg,
            });
        }
        if o != v {
            let w_other: HashSet<u64> = scheme.write_quorum(o).into_iter().collect();
            if w_other.is_disjoint(&r) {
                return Err(QuorumViolation::MissedConflict { value: v, other: o });
            }
        }
    }
    Ok(())
}

/// Evaluates the Bollobás sum `Σᵢ C(aᵢ + bᵢ, aᵢ)⁻¹` over the first `limit`
/// values.
///
/// For any valid cross-intersecting family the sum over *all* values is at
/// most 1 (Theorem 9); for the binomial scheme over its full capacity it is
/// exactly 1, witnessing optimality.
pub fn bollobas_sum(scheme: &dyn QuorumScheme, limit: u64) -> f64 {
    let m = scheme.capacity().min(limit);
    (0..m)
        .map(|v| {
            let a = scheme.write_quorum(v).len() as u64;
            let b = scheme.read_quorum(v).len() as u64;
            1.0 / binomial(a + b, a) as f64
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{BinaryScheme, BinomialScheme, BitVectorScheme};

    #[test]
    fn paper_schemes_are_cross_intersecting() {
        check_cross_intersection(&BinaryScheme::new(), u64::MAX).unwrap();
        check_cross_intersection(&BinomialScheme::for_capacity(70).unwrap(), u64::MAX).unwrap();
        check_cross_intersection(&BitVectorScheme::for_capacity(64).unwrap(), u64::MAX).unwrap();
    }

    #[test]
    fn sampled_check_on_large_scheme() {
        let s = BinomialScheme::for_capacity(1 << 40).unwrap();
        check_cross_intersection_sampled(&s, 500, 42).unwrap();
        let b = BitVectorScheme::with_bits(40);
        check_cross_intersection_sampled(&b, 500, 42).unwrap();
    }

    #[test]
    fn binomial_scheme_saturates_bollobas_bound() {
        let s = BinomialScheme::with_pool(8);
        let sum = bollobas_sum(&s, u64::MAX);
        assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
    }

    #[test]
    fn bitvector_scheme_is_suboptimal_by_bollobas() {
        let s = BitVectorScheme::with_bits(4);
        let sum = bollobas_sum(&s, u64::MAX);
        // 16 values, each with |W| = |R| = 4: 16 / C(8,4) = 16/70 < 1.
        assert!(sum < 0.25, "sum = {sum}");
    }

    #[test]
    fn violations_detected() {
        // A broken scheme: read quorum equal to write quorum.
        struct Broken;
        impl QuorumScheme for Broken {
            fn pool_size(&self) -> u64 {
                2
            }
            fn capacity(&self) -> u64 {
                2
            }
            fn write_quorum(&self, v: u64) -> Vec<u64> {
                vec![v]
            }
            fn read_quorum(&self, v: u64) -> Vec<u64> {
                vec![v]
            }
            fn name(&self) -> String {
                "broken".into()
            }
        }
        let err = check_cross_intersection(&Broken, u64::MAX).unwrap_err();
        assert!(matches!(err, QuorumViolation::SelfIntersection { .. }));

        // Another broken scheme: quorums that never collide.
        struct Disjoint;
        impl QuorumScheme for Disjoint {
            fn pool_size(&self) -> u64 {
                4
            }
            fn capacity(&self) -> u64 {
                2
            }
            fn write_quorum(&self, v: u64) -> Vec<u64> {
                vec![v]
            }
            fn read_quorum(&self, v: u64) -> Vec<u64> {
                vec![v + 2]
            }
            fn name(&self) -> String {
                "disjoint".into()
            }
        }
        let err = check_cross_intersection(&Disjoint, u64::MAX).unwrap_err();
        assert!(matches!(err, QuorumViolation::MissedConflict { .. }));
    }

    #[test]
    fn violation_display() {
        let v = QuorumViolation::MissedConflict { value: 1, other: 2 };
        assert_eq!(
            v.to_string(),
            "value 1's read quorum misses value 2's write quorum"
        );
    }
}
