//! Cross-intersecting write/read quorum systems for agreement detection.
//!
//! The paper's deterministic ratifier (§6) detects conflicting values by
//! having each process *announce* its value `v` (write 1 to every register in
//! a write quorum `W_v`) and later *scan* for conflicts (read every register
//! in a read quorum `R_v`). Correctness (Theorem 8) needs exactly:
//!
//! > `W_v′ ∩ R_v = ∅` **iff** `v′ = v`.
//!
//! i.e. a value's own announcement never trips its own scan, but every other
//! value's announcement does. This crate provides the [`QuorumScheme`]
//! abstraction and the paper's three register-efficient encodings:
//!
//! * [`BinaryScheme`] — 2 registers for `m = 2` (§6.2 item 1),
//! * [`BinomialScheme`] — `k = ⌈lg m⌉ + Θ(log log m)` registers with
//!   `W_v` the `v`-th `⌊k/2⌋`-subset, optimal by Bollobás's theorem
//!   (§6.2 item 2, Theorem 9),
//! * [`BitVectorScheme`] — `2⌈lg m⌉` registers, one pair per bit
//!   (§6.2 item 3).
//!
//! The [`verify`] module checks the cross-intersection property exhaustively
//! and evaluates the Bollobás bound `Σᵢ C(aᵢ+bᵢ, aᵢ)⁻¹ ≤ 1` that proves the
//! binomial scheme optimal.
//!
//! # Example
//!
//! ```
//! use mc_quorums::{BinomialScheme, QuorumScheme};
//!
//! let scheme = BinomialScheme::for_capacity(1000).unwrap();
//! assert!(scheme.capacity() >= 1000);
//! // Distinct values always collide on some register:
//! let w3: Vec<u64> = scheme.write_quorum(3);
//! let r9: Vec<u64> = scheme.read_quorum(9);
//! assert!(w3.iter().any(|reg| r9.contains(reg)));
//! // ...but a value never trips its own scan:
//! let r3 = scheme.read_quorum(3);
//! assert!(w3.iter().all(|reg| !r3.contains(reg)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binomial;
mod ranking;
mod scheme;
mod table;
pub mod verify;

pub use binomial::{binomial, central_binomial, optimal_pool_size};
pub use ranking::{rank_of_subset, subset_of_rank};
pub use scheme::{BinaryScheme, BinomialScheme, BitVectorScheme, QuorumScheme, SchemeError};
pub use table::{TableScheme, TableSchemeError};
