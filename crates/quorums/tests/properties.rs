//! Property-based tests for quorum schemes and subset ranking.

use mc_quorums::{
    binomial, rank_of_subset, subset_of_rank, verify, BinomialScheme, BitVectorScheme, QuorumScheme,
};
use proptest::prelude::*;

proptest! {
    /// Unranking then ranking any valid rank is the identity.
    #[test]
    fn ranking_roundtrip(k in 1u64..16, t_frac in 0u64..100, rank_frac in 0u64..1000) {
        let t = t_frac % (k + 1);
        let total = binomial(k, t);
        let rank = rank_frac % total;
        let subset = subset_of_rank(k, t, rank);
        prop_assert_eq!(subset.len() as u64, t);
        prop_assert_eq!(rank_of_subset(k, &subset), rank);
    }

    /// Every pair of distinct values in a binomial scheme collides, and no
    /// value collides with itself.
    #[test]
    fn binomial_scheme_cross_intersects(k in 2u64..10, a_frac in 0u64..10_000, b_frac in 0u64..10_000) {
        let scheme = BinomialScheme::with_pool(k);
        let m = scheme.capacity();
        let a = a_frac % m;
        let b = b_frac % m;
        let wa: std::collections::HashSet<u64> = scheme.write_quorum(a).into_iter().collect();
        let ra: std::collections::HashSet<u64> = scheme.read_quorum(a).into_iter().collect();
        prop_assert!(wa.is_disjoint(&ra));
        if a != b {
            let wb: std::collections::HashSet<u64> = scheme.write_quorum(b).into_iter().collect();
            prop_assert!(!wb.is_disjoint(&ra), "W_{b} missed R_{a}");
        }
    }

    /// Same for bit-vector schemes.
    #[test]
    fn bitvector_scheme_cross_intersects(bits in 1u32..12, a in 0u64..4096, b in 0u64..4096) {
        let scheme = BitVectorScheme::with_bits(bits);
        let m = scheme.capacity();
        let (a, b) = (a % m, b % m);
        let wa: std::collections::HashSet<u64> = scheme.write_quorum(a).into_iter().collect();
        let ra: std::collections::HashSet<u64> = scheme.read_quorum(a).into_iter().collect();
        prop_assert!(wa.is_disjoint(&ra));
        if a != b {
            let wb: std::collections::HashSet<u64> = scheme.write_quorum(b).into_iter().collect();
            prop_assert!(!wb.is_disjoint(&ra));
        }
    }

    /// The Bollobás partial sum never exceeds 1 for valid schemes.
    #[test]
    fn bollobas_bound_holds(k in 2u64..12, limit in 1u64..64) {
        let scheme = BinomialScheme::with_pool(k);
        let sum = verify::bollobas_sum(&scheme, limit);
        prop_assert!(sum <= 1.0 + 1e-9, "sum = {sum}");
    }

    /// Quorum register indices stay inside the pool.
    #[test]
    fn quorum_indices_in_pool(k in 2u64..12, v_frac in 0u64..10_000) {
        let scheme = BinomialScheme::with_pool(k);
        let v = v_frac % scheme.capacity();
        for reg in scheme.write_quorum(v).into_iter().chain(scheme.read_quorum(v)) {
            prop_assert!(reg < scheme.pool_size());
        }
    }
}
