//! Graph-based exhaustive exploration over canonicalized states.
//!
//! The path-based [`Explorer`](crate::Explorer) enumerates execution
//! *scripts*; its cost is the number of interleavings, which explodes
//! combinatorially. This engine explores the graph of reachable
//! *configurations* instead: it hashes each (memory, per-session control,
//! decisions) snapshot, deduplicates via a visited set, and additionally
//! identifies configurations that differ only by a certified symmetry
//! (process-id permutation, binary value swap — see [`crate::canon`]).
//! Many interleavings that the path engine walks separately converge on
//! the same configuration and are expanded once.
//!
//! Sessions are opaque state machines that cannot be cloned, so the engine
//! stores no live sessions: each node keeps only a predecessor link and
//! the [`PathEvent`] labeling the edge from its parent, and expanding a
//! node re-executes its script from scratch through the same
//! [`run_path`](crate::replay) machinery the path engine uses. That keeps
//! the two engines trivially consistent on execution semantics — they
//! disagree only if deduplication is wrong, which is exactly what the
//! cross-validation tests check.
//!
//! Because per-process operation counts are part of the state, the
//! configuration graph is a DAG and breadth-first order visits states in
//! nondecreasing script length — so the first violating terminal found
//! yields a **minimal** counterexample script via the predecessor links,
//! replayable through `mc-lab`'s real runtime objects.

use std::collections::{HashSet, VecDeque};

use mc_model::{properties, Decision, ObjectSpec, PropertyViolation, SymmetrySpec, Value};

use crate::canon::{encode_state, SymmetryGroup};
use crate::explore::{CheckError, Verdict};
use crate::replay::{run_path_capture, CoinPolicy, Need, PathEvent};

/// Exploration limits and policies for the graph engine.
#[derive(Debug, Clone)]
pub struct GraphConfig {
    /// Maximum operations per execution; configurations at the bound with
    /// live processes count as truncated leaves (same semantics as the
    /// path engine's `max_steps`).
    pub max_steps: usize,
    /// Abort with [`CheckError::PathBudgetExhausted`] after this many
    /// distinct canonical states (a runaway-state-space guard).
    pub max_states: usize,
    /// Session-local randomness policy.
    pub coin_policy: CoinPolicy,
    /// Also check acceptance (unanimous inputs ⇒ everyone decides them).
    pub check_acceptance: bool,
    /// Enable symmetry reduction (on top of plain state dedup). Process-id
    /// permutations are automatically disabled under
    /// [`CoinPolicy::Fixed`] (coin streams are pid-seeded), and value
    /// swaps whenever any input is non-binary; disabling this entirely is
    /// mainly useful for measuring the reduction.
    pub symmetry: bool,
}

impl Default for GraphConfig {
    fn default() -> GraphConfig {
        GraphConfig {
            max_steps: 64,
            max_states: 1_000_000,
            coin_policy: CoinPolicy::Forbid,
            check_acceptance: false,
            symmetry: true,
        }
    }
}

/// Outcome of a graph-based safety exploration.
#[derive(Debug, Clone, Default)]
pub struct GraphReport {
    /// Distinct canonical states visited (including the initial one).
    pub distinct_states: usize,
    /// Edges executed (each is one scripted replay).
    pub transitions: usize,
    /// Edges that led to an already-visited canonical state.
    pub dedup_hits: usize,
    /// Distinct terminal (all-halted) states.
    pub terminal_states: usize,
    /// Distinct states cut off by the step bound with live processes.
    pub truncated_states: usize,
    /// Maximum BFS depth reached, in events.
    pub depth: usize,
    /// Size of the largest symmetry group used (1 = no reduction).
    pub group_size: usize,
    /// The first violation found, with a minimal-length witness script.
    pub violation: Option<(Vec<PathEvent>, PropertyViolation)>,
    /// The largest number of operations any single process performed in
    /// any terminal state (the checker-certified individual work bound;
    /// compare Theorem 10's "at most 4 operations" for the binary
    /// ratifier).
    pub max_individual_ops: u64,
}

impl GraphReport {
    /// True if no violation was found and no state was truncated — the
    /// properties hold on *every* execution within the step bound.
    pub fn is_exhaustive_pass(&self) -> bool {
        self.violation.is_none() && self.truncated_states == 0
    }

    /// This report's engine-independent verdict, for cross-validating
    /// against the path engine. Truncation accounting is aligned: the path
    /// engine counts truncated *scripts*, this engine truncated *states*,
    /// but each is nonzero exactly when some execution exceeds the bound,
    /// so `exhaustive` agrees.
    pub fn verdict(&self) -> Verdict {
        Verdict {
            exhaustive: self.is_exhaustive_pass(),
            violation: self.violation.as_ref().map(|(_, v)| v.kind()),
            max_individual_ops: if self.violation.is_none() {
                Some(self.max_individual_ops)
            } else {
                None
            },
        }
    }
}

/// One explored configuration: predecessor link plus the branching
/// alternatives discovered when it was first reached.
struct Node {
    parent: usize,
    event: Option<PathEvent>,
    depth: usize,
    kids: Vec<PathEvent>,
}

/// Exhaustively explores the reachable configuration graph of one deciding
/// object on fixed inputs. Requires the object's sessions to implement
/// [`Session::snapshot`](mc_model::Session::snapshot).
pub struct GraphExplorer<S> {
    spec: S,
    inputs: Vec<Value>,
    config: GraphConfig,
}

impl<S: ObjectSpec> GraphExplorer<S> {
    /// Creates an explorer with default limits.
    pub fn new(spec: S, inputs: Vec<Value>) -> GraphExplorer<S> {
        GraphExplorer {
            spec,
            inputs,
            config: GraphConfig::default(),
        }
    }

    /// Replaces the exploration config.
    pub fn with_config(mut self, config: GraphConfig) -> GraphExplorer<S> {
        self.config = config;
        self
    }

    fn check_leaf(&self, outputs: &[Decision]) -> Result<(), PropertyViolation> {
        properties::check_validity(&self.inputs, outputs)?;
        properties::check_coherence(outputs)?;
        if self.config.check_acceptance {
            properties::check_acceptance(&self.inputs, outputs)?;
        }
        Ok(())
    }

    /// Checks validity and coherence on every reachable terminal state —
    /// plus acceptance if [`GraphConfig::check_acceptance`] is set.
    ///
    /// Stops at the first violation, recorded with a minimal witness
    /// script (breadth-first order guarantees no shorter script reaches a
    /// violating terminal).
    ///
    /// # Errors
    ///
    /// [`CheckError`] if the protocol draws local coins under
    /// [`CoinPolicy::Forbid`], the state budget is exhausted, or a session
    /// does not support snapshots.
    pub fn verify_safety(&self) -> Result<GraphReport, CheckError> {
        let allow_pid =
            self.config.symmetry && !matches!(self.config.coin_policy, CoinPolicy::Fixed(_));
        let allow_value = self.config.symmetry;

        let mut report = GraphReport::default();
        let mut visited: HashSet<Vec<u64>> = HashSet::new();
        let mut nodes: Vec<Node> = Vec::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        // Lazy compositions grow their symmetry certificate as stages
        // instantiate, so groups are cached per distinct certificate.
        let mut groups: Vec<(SymmetrySpec, SymmetryGroup)> = Vec::new();

        let path_of = |nodes: &[Node], ix: usize| -> Vec<PathEvent> {
            let mut events = Vec::new();
            let mut cur = ix;
            while cur != usize::MAX {
                if let Some(e) = nodes[cur].event {
                    events.push(e);
                }
                cur = nodes[cur].parent;
            }
            events.reverse();
            events
        };

        // Process one configuration reached via `path`; returns the node
        // to enqueue, if the state is new and expandable.
        let mut step = |path: Vec<PathEvent>,
                        parent: usize,
                        event: Option<PathEvent>,
                        depth: usize,
                        report: &mut GraphReport,
                        visited: &mut HashSet<Vec<u64>>,
                        nodes: &mut Vec<Node>|
         -> Result<Option<usize>, CheckError> {
            report.transitions += 1;
            let (need, captured) = run_path_capture(
                &self.spec,
                &self.inputs,
                self.config.coin_policy,
                self.config.max_steps,
                &path,
            );
            if matches!(need, Need::LocalCoinUsed) {
                return Err(CheckError::LocalCoinUsed);
            }
            let captured = captured.ok_or_else(|| CheckError::SnapshotUnsupported {
                object: self.spec.name(),
            })?;
            let gix = match groups.iter().position(|(s, _)| *s == captured.symmetry) {
                Some(ix) => ix,
                None => {
                    let g = SymmetryGroup::for_inputs(
                        captured.symmetry.clone(),
                        &self.inputs,
                        allow_pid,
                        allow_value,
                    );
                    groups.push((captured.symmetry.clone(), g));
                    groups.len() - 1
                }
            };
            let group = &groups[gix].1;
            report.group_size = report.group_size.max(group.len());
            let key = if group.len() == 1 {
                encode_state(&captured.snapshot)
            } else {
                group.canonical_key(&captured.snapshot)
            };
            if visited.contains(&key) {
                report.dedup_hits += 1;
                return Ok(None);
            }
            if visited.len() >= self.config.max_states {
                return Err(CheckError::PathBudgetExhausted {
                    limit: self.config.max_states,
                    visited: visited.len(),
                    frontier_depth: depth,
                });
            }
            visited.insert(key);
            report.distinct_states += 1;
            report.depth = report.depth.max(depth);

            let kids = match need {
                Need::Done(outputs) => {
                    report.terminal_states += 1;
                    let busiest = captured
                        .snapshot
                        .procs
                        .iter()
                        .map(|p| p.ops)
                        .max()
                        .unwrap_or(0);
                    report.max_individual_ops = report.max_individual_ops.max(busiest);
                    if let Err(violation) = self.check_leaf(&outputs) {
                        report.violation = Some((path, violation));
                    }
                    Vec::new()
                }
                Need::OutOfSteps => {
                    report.truncated_states += 1;
                    Vec::new()
                }
                Need::Sched(live) => live.into_iter().map(PathEvent::Sched).collect(),
                Need::Coin { .. } => vec![PathEvent::Coin(false), PathEvent::Coin(true)],
                Need::LocalCoinUsed => unreachable!("handled above"),
            };
            let expandable = !kids.is_empty();
            nodes.push(Node {
                parent,
                event,
                depth,
                kids,
            });
            Ok(expandable.then_some(nodes.len() - 1))
        };

        // Root configuration.
        if let Some(ix) = step(
            Vec::new(),
            usize::MAX,
            None,
            0,
            &mut report,
            &mut visited,
            &mut nodes,
        )? {
            queue.push_back(ix);
        }
        while report.violation.is_none() {
            let Some(ix) = queue.pop_front() else {
                break;
            };
            let base = path_of(&nodes, ix);
            let depth = nodes[ix].depth + 1;
            for kid_ix in 0..nodes[ix].kids.len() {
                let event = nodes[ix].kids[kid_ix];
                let mut path = base.clone();
                path.push(event);
                if let Some(new_ix) = step(
                    path,
                    ix,
                    Some(event),
                    depth,
                    &mut report,
                    &mut visited,
                    &mut nodes,
                )? {
                    queue.push_back(new_ix);
                }
                if report.violation.is_some() {
                    break;
                }
            }
        }
        Ok(report)
    }

    /// The inputs this explorer checks against (handy for reporting).
    pub fn inputs(&self) -> &[Value] {
        &self.inputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_model::{
        Action, Ctx, DecidingObject, InstantiateCtx, Op, ProcessId, RegisterId, Response, Session,
        StateSink,
    };
    use std::sync::Arc;

    /// Snapshot-capable twin of the path engine's BrokenSpec: write own
    /// input, then decide it unconditionally — violates coherence on split
    /// inputs.
    struct BrokenSpec;
    struct BrokenObj {
        reg: RegisterId,
    }
    struct BrokenSession {
        input: u64,
        reg: RegisterId,
    }

    impl DecidingObject for BrokenObj {
        fn session(&self, _pid: ProcessId) -> Box<dyn Session + Send> {
            Box::new(BrokenSession {
                input: 0,
                reg: self.reg,
            })
        }
        fn symmetry(&self) -> SymmetrySpec {
            SymmetrySpec {
                pid_oblivious: true,
                value_symmetric: true,
                value_registers: vec![(self.reg, 1)],
                ..SymmetrySpec::default()
            }
        }
    }
    impl Session for BrokenSession {
        fn begin(&mut self, input: u64, _ctx: &mut Ctx<'_>) -> Action {
            self.input = input;
            Action::Invoke(Op::Write {
                reg: self.reg,
                value: input,
            })
        }
        fn poll(&mut self, _r: Response, _ctx: &mut Ctx<'_>) -> Action {
            Action::Halt(Decision::decide(self.input))
        }
        fn snapshot(&self, sink: &mut StateSink) {
            sink.push_value(self.input);
        }
    }
    impl ObjectSpec for BrokenSpec {
        fn instantiate(&self, ctx: &mut InstantiateCtx<'_>) -> Arc<dyn DecidingObject> {
            Arc::new(BrokenObj {
                reg: ctx.alloc.alloc_block(1),
            })
        }
        fn name(&self) -> String {
            "broken".into()
        }
    }

    /// Snapshot-capable busy object: write input to a per-pid register,
    /// read it back twice, halt without deciding.
    struct BusySpec;
    struct BusyObj {
        base: RegisterId,
        n: usize,
    }
    struct BusySession {
        base: RegisterId,
        pid: ProcessId,
        input: u64,
        reads: u8,
    }

    impl DecidingObject for BusyObj {
        fn session(&self, pid: ProcessId) -> Box<dyn Session + Send> {
            Box::new(BusySession {
                base: self.base,
                pid,
                input: 0,
                reads: 0,
            })
        }
        fn symmetry(&self) -> SymmetrySpec {
            SymmetrySpec {
                pid_oblivious: true,
                value_symmetric: true,
                value_registers: vec![(self.base, self.n as u64)],
                pid_blocks: vec![self.base],
                ..SymmetrySpec::default()
            }
        }
    }
    impl Session for BusySession {
        fn begin(&mut self, input: u64, _ctx: &mut Ctx<'_>) -> Action {
            self.input = input;
            Action::Invoke(Op::Write {
                reg: self.base.offset(self.pid.index() as u64),
                value: input,
            })
        }
        fn poll(&mut self, _r: Response, _ctx: &mut Ctx<'_>) -> Action {
            if self.reads < 2 {
                self.reads += 1;
                Action::Invoke(Op::Read(self.base.offset(self.pid.index() as u64)))
            } else {
                Action::Halt(Decision::continue_with(self.input))
            }
        }
        fn snapshot(&self, sink: &mut StateSink) {
            sink.push_value(self.input);
            sink.push_raw(u64::from(self.reads));
        }
    }
    impl ObjectSpec for BusySpec {
        fn instantiate(&self, ctx: &mut InstantiateCtx<'_>) -> Arc<dyn DecidingObject> {
            Arc::new(BusyObj {
                base: ctx.alloc.alloc_block(ctx.n as u64),
                n: ctx.n,
            })
        }
        fn name(&self) -> String {
            "busy".into()
        }
    }

    #[test]
    fn graph_engine_finds_minimal_coherence_witness() {
        let report = GraphExplorer::new(BrokenSpec, vec![0, 1])
            .verify_safety()
            .unwrap();
        let (path, violation) = report.violation.expect("violation found");
        assert!(matches!(violation, PropertyViolation::Coherence { .. }));
        // Shortest possible violating execution: both processes write and
        // decide — 2 scheduled operations, hence a 2-event script.
        assert_eq!(path.len(), 2);
    }

    #[test]
    fn graph_engine_matches_path_engine_verdict_on_busy_object() {
        use crate::Explorer;
        let path_report = Explorer::new(BusySpec, vec![0, 1]).verify_safety().unwrap();
        let graph_report = GraphExplorer::new(BusySpec, vec![0, 1])
            .verify_safety()
            .unwrap();
        assert!(graph_report.is_exhaustive_pass());
        assert_eq!(graph_report.verdict(), path_report.verdict());
        assert_eq!(path_report.complete_paths, 20); // C(6,3) interleavings
        assert!(
            graph_report.distinct_states < 20,
            "interleavings should collapse onto the state lattice, got {}",
            graph_report.distinct_states
        );
    }

    #[test]
    fn symmetry_reduction_shrinks_the_state_count() {
        let on = GraphExplorer::new(BusySpec, vec![0, 1])
            .verify_safety()
            .unwrap();
        let off = GraphExplorer::new(BusySpec, vec![0, 1])
            .with_config(GraphConfig {
                symmetry: false,
                ..GraphConfig::default()
            })
            .verify_safety()
            .unwrap();
        assert!(on.is_exhaustive_pass() && off.is_exhaustive_pass());
        assert!(on.group_size > 1);
        assert_eq!(off.group_size, 1);
        assert!(
            on.distinct_states < off.distinct_states,
            "symmetry on: {} states, off: {} states",
            on.distinct_states,
            off.distinct_states
        );
        assert_eq!(on.verdict(), off.verdict());
    }

    #[test]
    fn state_budget_reports_progress_at_abort() {
        let err = GraphExplorer::new(BusySpec, vec![0, 1, 2])
            .with_config(GraphConfig {
                max_states: 3,
                ..GraphConfig::default()
            })
            .verify_safety()
            .unwrap_err();
        match err {
            CheckError::PathBudgetExhausted {
                limit,
                visited,
                frontier_depth,
            } => {
                assert_eq!(limit, 3);
                assert_eq!(visited, 3);
                assert!(frontier_depth > 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn snapshotless_objects_are_rejected() {
        struct Opaque;
        struct OpaqueObj;
        struct OpaqueSession;
        impl DecidingObject for OpaqueObj {
            fn session(&self, _pid: ProcessId) -> Box<dyn Session + Send> {
                Box::new(OpaqueSession)
            }
        }
        impl Session for OpaqueSession {
            fn begin(&mut self, input: u64, _ctx: &mut Ctx<'_>) -> Action {
                Action::Halt(Decision::continue_with(input))
            }
            fn poll(&mut self, _r: Response, _ctx: &mut Ctx<'_>) -> Action {
                unreachable!()
            }
        }
        impl ObjectSpec for Opaque {
            fn instantiate(&self, _ctx: &mut InstantiateCtx<'_>) -> Arc<dyn DecidingObject> {
                Arc::new(OpaqueObj)
            }
            fn name(&self) -> String {
                "opaque".into()
            }
        }
        let err = GraphExplorer::new(Opaque, vec![0, 1])
            .verify_safety()
            .unwrap_err();
        assert!(matches!(err, CheckError::SnapshotUnsupported { .. }));
    }
}
