//! Whole-configuration snapshots used by the graph engine.
//!
//! A configuration of an `n`-process execution is fully described by the
//! shared memory, each process's session control state (as tagged
//! [`StateAtom`]s), each process's decision (if halted), whether a
//! scheduled probabilistic write is awaiting its coin, and how many
//! operations each process has performed. Operation counts are part of the
//! state on purpose: they make the state graph acyclic (every transition
//! increases a count or resolves a coin), so breadth-first search
//! terminates and finds *shortest* counterexamples; they also keep the
//! step-bound accounting of the path engine and the graph engine aligned.

use mc_model::{Decision, StateAtom, Value};

/// One process's part of a configuration snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcSnapshot {
    /// The session's control state, in the object's canonical atom order.
    pub control: Vec<StateAtom>,
    /// Operations this process has performed (scheduled) so far.
    pub ops: u64,
    /// The decision, if the process has halted.
    pub decision: Option<Decision>,
    /// Whether this process's scheduled probabilistic write awaits its
    /// coin outcome.
    pub coin_pending: bool,
}

/// A full configuration snapshot: shared memory plus every process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateSnapshot {
    /// Written registers, sorted by register id. Unwritten registers read
    /// as `None` and are absent here, so two configurations with equal
    /// maps are indistinguishable to every future read.
    pub memory: Vec<(u64, Value)>,
    /// Per-process snapshots, indexed by process id.
    pub procs: Vec<ProcSnapshot>,
}

impl StateSnapshot {
    /// The inputs are not part of the snapshot, but the per-process
    /// decision vector is; this returns it for property checking on
    /// terminal states.
    pub fn decisions(&self) -> Option<Vec<Decision>> {
        self.procs.iter().map(|p| p.decision).collect()
    }
}
