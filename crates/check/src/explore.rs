//! Exhaustive exploration of the execution tree.

use std::error::Error;
use std::fmt;

use mc_model::{properties, Decision, ObjectSpec, PropertyViolation, Value};

use crate::replay::{run_path, CoinPolicy, Need, PathEvent};

/// Exploration limits and policies.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Maximum operations per execution; longer paths count as truncated.
    pub max_steps: usize,
    /// Abort with [`CheckError::PathBudgetExhausted`] after this many
    /// complete paths (a runaway-state-space guard).
    pub max_paths: usize,
    /// Session-local randomness policy.
    pub coin_policy: CoinPolicy,
    /// Also check acceptance (unanimous inputs ⇒ everyone decides them) —
    /// the defining *ratifier* property. Off by default because
    /// conciliators legitimately never decide.
    pub check_acceptance: bool,
}

impl Default for CheckConfig {
    fn default() -> CheckConfig {
        CheckConfig {
            max_steps: 64,
            max_paths: 5_000_000,
            coin_policy: CoinPolicy::Forbid,
            check_acceptance: false,
        }
    }
}

/// Why exploration could not complete.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckError {
    /// A session drew local randomness under [`CoinPolicy::Forbid`].
    LocalCoinUsed,
    /// The exploration budget tripped: more than `limit` paths (path
    /// engine) or distinct states (graph engine); raise the limit or
    /// shrink the system.
    PathBudgetExhausted {
        /// The configured limit (paths for the path engine, states for the
        /// graph engine).
        limit: usize,
        /// Work done at abort: leaves visited (path engine) or distinct
        /// states visited (graph engine).
        visited: usize,
        /// Depth of the frontier at abort: current path length (path
        /// engine) or BFS depth (graph engine), in events.
        frontier_depth: usize,
    },
    /// A session of this object does not implement
    /// [`Session::snapshot`](mc_model::Session::snapshot), so the graph
    /// engine cannot deduplicate its configurations; use the path engine.
    SnapshotUnsupported {
        /// The object's name.
        object: String,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::LocalCoinUsed => write!(
                f,
                "protocol uses session-local coins; exhaustive checking needs \
                 CoinPolicy::Fixed or a coin-free protocol"
            ),
            CheckError::PathBudgetExhausted {
                limit,
                visited,
                frontier_depth,
            } => {
                write!(
                    f,
                    "exploration exceeded its budget of {limit} \
                     ({visited} visited, frontier depth {frontier_depth} at abort)"
                )
            }
            CheckError::SnapshotUnsupported { object } => {
                write!(
                    f,
                    "object '{object}' does not support state snapshots; \
                     the graph engine needs Session::snapshot"
                )
            }
        }
    }
}

impl Error for CheckError {}

/// Outcome of a safety exploration.
#[derive(Debug, Clone, Default)]
pub struct SafetyReport {
    /// Complete executions explored.
    pub complete_paths: usize,
    /// Executions cut off by the step bound.
    pub truncated_paths: usize,
    /// The first violation found on any complete execution, with the path
    /// that produces it.
    pub violation: Option<(Vec<PathEvent>, PropertyViolation)>,
    /// The largest number of operations any single process performed on any
    /// complete execution — the checker-certified individual work bound
    /// (compare Theorem 10's "at most 4 operations" for the binary
    /// ratifier).
    pub max_individual_ops: u64,
}

impl SafetyReport {
    /// True if no violation was found and nothing was truncated — the
    /// properties hold on *every* execution within the bound.
    pub fn is_exhaustive_pass(&self) -> bool {
        self.violation.is_none() && self.truncated_paths == 0
    }

    /// This report's engine-independent verdict, for cross-validating the
    /// path and graph engines.
    pub fn verdict(&self) -> Verdict {
        Verdict {
            exhaustive: self.is_exhaustive_pass(),
            violation: self.violation.as_ref().map(|(_, v)| v.kind()),
            max_individual_ops: if self.violation.is_none() {
                Some(self.max_individual_ops)
            } else {
                None
            },
        }
    }
}

/// The engine-independent outcome of a safety check, used to cross-validate
/// the path-based [`Explorer`] against the graph-based
/// [`GraphExplorer`](crate::GraphExplorer).
///
/// Both engines stop at the first violation they find, and may find
/// different witnesses of the same broken property; the verdict therefore
/// carries the violated property's *kind* rather than its witness, and the
/// certified work bound only when exploration ran to completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// Every execution within the step bound was covered (no truncation)
    /// and no violation was found.
    pub exhaustive: bool,
    /// The kind of the violated property, if any
    /// ([`PropertyViolation::kind`]).
    pub violation: Option<&'static str>,
    /// The certified per-process worst-case operation count, present only
    /// when no violation cut exploration short.
    pub max_individual_ops: Option<u64>,
}

/// The worst-case agreement value of a conciliator-like object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgreementValue {
    /// The game value: minimum over adversary strategies of the probability
    /// that all outputs agree. Exact when `truncated == 0`, otherwise a
    /// sound lower bound (truncated subtrees score 0).
    pub probability: f64,
    /// Complete executions explored.
    pub complete_paths: usize,
    /// Executions cut off by the step bound (each contributing 0).
    pub truncated: usize,
}

/// Exhaustively explores all executions of one deciding object on fixed
/// inputs. See the crate docs for the branching model and soundness notes.
pub struct Explorer<S> {
    spec: S,
    inputs: Vec<Value>,
    config: CheckConfig,
}

impl<S: ObjectSpec> Explorer<S> {
    /// Creates an explorer with default limits.
    pub fn new(spec: S, inputs: Vec<Value>) -> Explorer<S> {
        Explorer {
            spec,
            inputs,
            config: CheckConfig::default(),
        }
    }

    /// Replaces the exploration config.
    pub fn with_config(mut self, config: CheckConfig) -> Explorer<S> {
        self.config = config;
        self
    }

    /// Checks validity and coherence on every complete execution — plus
    /// acceptance if [`CheckConfig::check_acceptance`] is set.
    ///
    /// Stops at the first violation (recorded with its witness path).
    ///
    /// # Errors
    ///
    /// [`CheckError`] if the protocol draws local coins under
    /// [`CoinPolicy::Forbid`] or the path budget is exhausted.
    pub fn verify_safety(&self) -> Result<SafetyReport, CheckError> {
        let mut report = SafetyReport::default();
        let mut path = Vec::new();
        self.dfs_safety(&mut path, &mut report)?;
        Ok(report)
    }

    fn check_leaf(&self, outputs: &[Decision]) -> Result<(), PropertyViolation> {
        properties::check_validity(&self.inputs, outputs)?;
        properties::check_coherence(outputs)?;
        if self.config.check_acceptance {
            properties::check_acceptance(&self.inputs, outputs)?;
        }
        Ok(())
    }

    fn dfs_safety(
        &self,
        path: &mut Vec<PathEvent>,
        report: &mut SafetyReport,
    ) -> Result<(), CheckError> {
        if report.violation.is_some() {
            return Ok(());
        }
        if report.complete_paths + report.truncated_paths >= self.config.max_paths {
            return Err(CheckError::PathBudgetExhausted {
                limit: self.config.max_paths,
                visited: report.complete_paths + report.truncated_paths,
                frontier_depth: path.len(),
            });
        }
        match run_path(
            &self.spec,
            &self.inputs,
            self.config.coin_policy,
            self.config.max_steps,
            path,
        ) {
            Need::Done(outputs) => {
                report.complete_paths += 1;
                let mut per_pid = vec![0u64; self.inputs.len()];
                for event in path.iter() {
                    if let PathEvent::Sched(pid) = event {
                        per_pid[pid.index()] += 1;
                    }
                }
                let busiest = per_pid.iter().copied().max().unwrap_or(0);
                report.max_individual_ops = report.max_individual_ops.max(busiest);
                if let Err(violation) = self.check_leaf(&outputs) {
                    report.violation = Some((path.clone(), violation));
                }
                Ok(())
            }
            Need::OutOfSteps => {
                report.truncated_paths += 1;
                Ok(())
            }
            Need::LocalCoinUsed => Err(CheckError::LocalCoinUsed),
            Need::Sched(live) => {
                for pid in live {
                    path.push(PathEvent::Sched(pid));
                    self.dfs_safety(path, report)?;
                    path.pop();
                    if report.violation.is_some() {
                        break;
                    }
                }
                Ok(())
            }
            Need::Coin { .. } => {
                for outcome in [true, false] {
                    path.push(PathEvent::Coin(outcome));
                    self.dfs_safety(path, report)?;
                    path.pop();
                    if report.violation.is_some() {
                        break;
                    }
                }
                Ok(())
            }
        }
    }

    /// Computes the worst-case agreement probability: the adversary picks
    /// each scheduling choice to *minimize* the probability that all
    /// outputs agree; coin nodes average over outcomes.
    ///
    /// # Errors
    ///
    /// [`CheckError`] as for [`verify_safety`](Explorer::verify_safety).
    pub fn worst_case_agreement(&self) -> Result<AgreementValue, CheckError> {
        let mut value = AgreementValue {
            probability: 0.0,
            complete_paths: 0,
            truncated: 0,
        };
        let mut path = Vec::new();
        value.probability = self.dfs_value(&mut path, &mut value)?;
        Ok(value)
    }

    fn dfs_value(
        &self,
        path: &mut Vec<PathEvent>,
        stats: &mut AgreementValue,
    ) -> Result<f64, CheckError> {
        if stats.complete_paths + stats.truncated >= self.config.max_paths {
            return Err(CheckError::PathBudgetExhausted {
                limit: self.config.max_paths,
                visited: stats.complete_paths + stats.truncated,
                frontier_depth: path.len(),
            });
        }
        match run_path(
            &self.spec,
            &self.inputs,
            self.config.coin_policy,
            self.config.max_steps,
            path,
        ) {
            Need::Done(outputs) => {
                stats.complete_paths += 1;
                Ok(f64::from(u8::from(
                    properties::check_agreement(&outputs).is_ok(),
                )))
            }
            Need::OutOfSteps => {
                stats.truncated += 1;
                Ok(0.0)
            }
            Need::LocalCoinUsed => Err(CheckError::LocalCoinUsed),
            Need::Sched(live) => {
                let mut worst = f64::INFINITY;
                for pid in live {
                    path.push(PathEvent::Sched(pid));
                    let v = self.dfs_value(path, stats)?;
                    path.pop();
                    worst = worst.min(v);
                    if worst == 0.0 {
                        break; // the adversary cannot do better than 0
                    }
                }
                Ok(worst)
            }
            Need::Coin { prob } => {
                path.push(PathEvent::Coin(true));
                let success = self.dfs_value(path, stats)?;
                path.pop();
                path.push(PathEvent::Coin(false));
                let failure = self.dfs_value(path, stats)?;
                path.pop();
                Ok(prob * success + (1.0 - prob) * failure)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_model::{
        Action, Ctx, DecidingObject, InstantiateCtx, Op, ProcessId, RegisterId, Response, Session,
    };
    use std::sync::Arc;

    /// Always halts immediately with its input, never deciding.
    struct CopySpec;
    struct CopyObj;
    struct CopySession;

    impl DecidingObject for CopyObj {
        fn session(&self, _pid: ProcessId) -> Box<dyn Session + Send> {
            Box::new(CopySession)
        }
    }
    impl Session for CopySession {
        fn begin(&mut self, input: u64, _ctx: &mut Ctx<'_>) -> Action {
            Action::Halt(Decision::continue_with(input))
        }
        fn poll(&mut self, _r: Response, _ctx: &mut Ctx<'_>) -> Action {
            unreachable!()
        }
    }
    impl ObjectSpec for CopySpec {
        fn instantiate(&self, _ctx: &mut InstantiateCtx<'_>) -> Arc<dyn DecidingObject> {
            Arc::new(CopyObj)
        }
    }

    /// A broken object: decides its own input unconditionally — violates
    /// coherence on split inputs.
    struct BrokenSpec;
    struct BrokenObj {
        reg: RegisterId,
    }
    struct BrokenSession {
        reg: RegisterId,
        input: u64,
    }

    impl DecidingObject for BrokenObj {
        fn session(&self, _pid: ProcessId) -> Box<dyn Session + Send> {
            Box::new(BrokenSession {
                reg: self.reg,
                input: 0,
            })
        }
    }
    impl Session for BrokenSession {
        fn begin(&mut self, input: u64, _ctx: &mut Ctx<'_>) -> Action {
            self.input = input;
            Action::Invoke(Op::Write {
                reg: self.reg,
                value: input,
            })
        }
        fn poll(&mut self, _r: Response, _ctx: &mut Ctx<'_>) -> Action {
            Action::Halt(Decision::decide(self.input))
        }
    }
    impl ObjectSpec for BrokenSpec {
        fn instantiate(&self, ctx: &mut InstantiateCtx<'_>) -> Arc<dyn DecidingObject> {
            Arc::new(BrokenObj {
                reg: ctx.alloc.alloc_block(1),
            })
        }
    }

    #[test]
    fn copy_object_passes_safety_trivially() {
        let report = Explorer::new(CopySpec, vec![1, 2]).verify_safety().unwrap();
        assert!(report.is_exhaustive_pass());
        assert_eq!(report.complete_paths, 1); // no operations => one path
    }

    #[test]
    fn copy_object_has_zero_worst_case_agreement_on_split_inputs() {
        let v = Explorer::new(CopySpec, vec![1, 2])
            .worst_case_agreement()
            .unwrap();
        assert_eq!(v.probability, 0.0);
        let v = Explorer::new(CopySpec, vec![3, 3])
            .worst_case_agreement()
            .unwrap();
        assert_eq!(v.probability, 1.0);
    }

    #[test]
    fn checker_finds_coherence_violation_with_witness() {
        let report = Explorer::new(BrokenSpec, vec![0, 1])
            .verify_safety()
            .unwrap();
        let (path, violation) = report.violation.expect("violation found");
        assert!(matches!(violation, PropertyViolation::Coherence { .. }));
        assert!(!path.is_empty());
    }

    /// Benign multi-op object: write input to own register, read it back
    /// twice, halt without deciding. Many interleavings, no violations.
    struct BusySpec;
    struct BusyObj {
        base: RegisterId,
    }
    struct BusySession {
        base: RegisterId,
        pid: ProcessId,
        input: u64,
        reads: u8,
    }

    impl DecidingObject for BusyObj {
        fn session(&self, pid: ProcessId) -> Box<dyn Session + Send> {
            Box::new(BusySession {
                base: self.base,
                pid,
                input: 0,
                reads: 0,
            })
        }
    }
    impl Session for BusySession {
        fn begin(&mut self, input: u64, _ctx: &mut Ctx<'_>) -> Action {
            self.input = input;
            Action::Invoke(Op::Write {
                reg: self.base.offset(self.pid.index() as u64),
                value: input,
            })
        }
        fn poll(&mut self, _r: Response, _ctx: &mut Ctx<'_>) -> Action {
            if self.reads < 2 {
                self.reads += 1;
                Action::Invoke(Op::Read(self.base.offset(self.pid.index() as u64)))
            } else {
                Action::Halt(Decision::continue_with(self.input))
            }
        }
    }
    impl ObjectSpec for BusySpec {
        fn instantiate(&self, ctx: &mut InstantiateCtx<'_>) -> Arc<dyn DecidingObject> {
            Arc::new(BusyObj {
                base: ctx.alloc.alloc_block(8),
            })
        }
    }

    #[test]
    fn path_budget_guard_triggers() {
        let config = CheckConfig {
            max_paths: 2,
            ..CheckConfig::default()
        };
        let err = Explorer::new(BusySpec, vec![0, 1, 2])
            .with_config(config)
            .verify_safety()
            .unwrap_err();
        match err {
            CheckError::PathBudgetExhausted {
                limit,
                visited,
                frontier_depth,
            } => {
                assert_eq!(limit, 2);
                assert_eq!(visited, 2);
                // The third leaf was about to be explored, so the frontier
                // sits somewhere strictly inside the execution tree.
                assert!(frontier_depth > 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn busy_object_explores_many_paths_cleanly() {
        let report = Explorer::new(BusySpec, vec![0, 1]).verify_safety().unwrap();
        assert!(report.is_exhaustive_pass());
        // 3 ops per process, 2 processes: C(6,3) = 20 interleavings.
        assert_eq!(report.complete_paths, 20);
        // Every process performs exactly 3 operations on every path.
        assert_eq!(report.max_individual_ops, 3);
    }
}
