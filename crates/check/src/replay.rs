//! Deterministic replay of a scripted execution path.
//!
//! The explorer cannot snapshot sessions (they are opaque state machines),
//! so it re-executes each path from scratch: a path is a sequence of
//! [`PathEvent`]s — scheduling choices and coin outcomes — and
//! [`run_path`] plays them against a fresh instance of the object,
//! returning either the final outputs or the next decision point.

use std::convert::Infallible;
use std::fmt;

use mc_model::{
    Action, BlockAlloc, Ctx, Decision, InstantiateCtx, ObjectSpec, Op, ProcessId, RegContents,
    Response, Session, StateSink, SymmetrySpec, Value,
};
use rand::rngs::SmallRng;
use rand::{SeedableRng, TryRng};

use crate::state::{ProcSnapshot, StateSnapshot};

/// One branch decision along an execution path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathEvent {
    /// The adversary schedules this process's pending operation.
    Sched(ProcessId),
    /// The coin of the just-scheduled probabilistic write resolves to
    /// `performed`.
    Coin(bool),
}

impl fmt::Display for PathEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathEvent::Sched(pid) => write!(f, "{pid}"),
            PathEvent::Coin(true) => write!(f, "coin+"),
            PathEvent::Coin(false) => write!(f, "coin-"),
        }
    }
}

/// How session-local coin flips are handled during checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoinPolicy {
    /// Reject protocols whose sessions draw local randomness — required
    /// for exhaustive results.
    Forbid,
    /// Give every session a deterministic stream from this seed; results
    /// are conditional on the seed (sampled, not enumerated).
    Fixed(u64),
}

/// Why a scripted replay did not produce final outputs.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayError {
    /// The script ended before every process halted.
    ScriptTooShort,
    /// The step bound was exhausted.
    OutOfSteps,
    /// A session drew local randomness under [`CoinPolicy::Forbid`].
    LocalCoinUsed,
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::ScriptTooShort => write!(f, "script ended before all processes halted"),
            ReplayError::OutOfSteps => write!(f, "replay exhausted its step bound"),
            ReplayError::LocalCoinUsed => {
                write!(f, "protocol drew a local coin under CoinPolicy::Forbid")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// Replays a complete scripted execution and returns the outputs.
///
/// This is the public face of the checker's replay machinery: given a full
/// script of scheduling choices and coin outcomes (e.g. extracted from an
/// `mc-sim` trace), it re-executes the object deterministically. Useful for
/// cross-validating the two execution substrates and for turning a recorded
/// failure into a standalone reproduction.
///
/// # Errors
///
/// [`ReplayError`] if the script is too short, the step bound trips, or the
/// protocol draws local coins under [`CoinPolicy::Forbid`].
///
/// # Panics
///
/// Panics if the script is *inconsistent* with the execution (schedules a
/// halted process, or supplies a coin where none is pending).
pub fn replay_to_completion(
    spec: &dyn ObjectSpec,
    inputs: &[Value],
    policy: CoinPolicy,
    max_steps: usize,
    path: &[PathEvent],
) -> Result<Vec<Decision>, ReplayError> {
    match run_path(spec, inputs, policy, max_steps, path) {
        Need::Done(outputs) => Ok(outputs),
        Need::Sched(_) | Need::Coin { .. } => Err(ReplayError::ScriptTooShort),
        Need::OutOfSteps => Err(ReplayError::OutOfSteps),
        Need::LocalCoinUsed => Err(ReplayError::LocalCoinUsed),
    }
}

/// Where a partial replay stopped.
#[derive(Debug)]
pub(crate) enum Need {
    /// All processes halted: the object's outputs.
    Done(Vec<Decision>),
    /// The adversary must choose among these live processes.
    Sched(Vec<ProcessId>),
    /// The scheduled probabilistic write's coin must resolve; `prob` is its
    /// success probability (strictly inside (0, 1)).
    Coin {
        /// Success probability of the pending coin.
        prob: f64,
    },
    /// The step bound was exhausted.
    OutOfSteps,
    /// A session drew local randomness under [`CoinPolicy::Forbid`].
    LocalCoinUsed,
}

/// An RNG that records (or rejects) any use of session-local randomness.
enum CheckRng {
    Forbid { used: bool },
    Fixed(SmallRng),
}

impl TryRng for CheckRng {
    type Error = Infallible;

    fn try_next_u32(&mut self) -> Result<u32, Infallible> {
        match self {
            CheckRng::Forbid { used } => {
                *used = true;
                Ok(0)
            }
            CheckRng::Fixed(rng) => rng.try_next_u32(),
        }
    }

    fn try_next_u64(&mut self) -> Result<u64, Infallible> {
        match self {
            CheckRng::Forbid { used } => {
                *used = true;
                Ok(0)
            }
            CheckRng::Fixed(rng) => rng.try_next_u64(),
        }
    }

    fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Infallible> {
        match self {
            CheckRng::Forbid { used } => {
                *used = true;
                dst.fill(0);
                Ok(())
            }
            CheckRng::Fixed(rng) => rng.try_fill_bytes(dst),
        }
    }
}

/// Mixes a run seed with a process id into a decorrelated per-process
/// stream seed (full SplitMix64 finalizer). Must match `mc-sim`'s
/// `mix_seed` and the lab workers exactly: conformance legs replay a
/// runtime execution through the checker at the same `(seed, pid)` and
/// expect identical coin streams.
fn mix_seed(seed: u64, pid: u64) -> u64 {
    let mut z = seed ^ pid.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl CheckRng {
    fn new(policy: CoinPolicy, pid: usize) -> CheckRng {
        match policy {
            CoinPolicy::Forbid => CheckRng::Forbid { used: false },
            CoinPolicy::Fixed(seed) => {
                CheckRng::Fixed(SmallRng::seed_from_u64(mix_seed(seed, pid as u64)))
            }
        }
    }

    fn local_coin_used(&self) -> bool {
        matches!(self, CheckRng::Forbid { used: true })
    }
}

struct Proc {
    session: Box<dyn Session + Send>,
    rng: CheckRng,
    pending: Option<Op>,
    decision: Option<Decision>,
    ops: u64,
}

/// A configuration snapshot captured at the point a replay stopped, plus
/// the object's symmetry certificate at that point (lazy compositions may
/// grow their certificate as stages instantiate).
pub(crate) struct Captured {
    pub snapshot: StateSnapshot,
    pub symmetry: SymmetrySpec,
}

/// Replays `path` against a fresh instance of `spec` and reports where the
/// execution stands afterwards.
///
/// Sparse memory is kept in a sorted vec (register ids are tiny here).
///
/// # Panics
///
/// Panics if `path` is inconsistent with the execution it scripts (e.g. a
/// `Sched` of a halted process, or a `Coin` where none is pending) — the
/// explorer only extends paths with alternatives the replay itself
/// reported, so this indicates an explorer bug.
pub(crate) fn run_path(
    spec: &dyn ObjectSpec,
    inputs: &[Value],
    policy: CoinPolicy,
    max_steps: usize,
    path: &[PathEvent],
) -> Need {
    run_inner(spec, inputs, policy, max_steps, path, false).0
}

/// Like [`run_path`], but additionally captures a [`StateSnapshot`] of the
/// configuration at the stopping point (for every outcome except
/// [`Need::LocalCoinUsed`]). Returns `None` for the capture when any
/// session does not support snapshots.
pub(crate) fn run_path_capture(
    spec: &dyn ObjectSpec,
    inputs: &[Value],
    policy: CoinPolicy,
    max_steps: usize,
    path: &[PathEvent],
) -> (Need, Option<Captured>) {
    run_inner(spec, inputs, policy, max_steps, path, true)
}

fn capture_state(
    object: &dyn mc_model::DecidingObject,
    memory: &[(u64, Value)],
    procs: &[Proc],
    pending_coin: Option<usize>,
) -> Option<Captured> {
    let mut snapped = Vec::with_capacity(procs.len());
    for (ix, proc) in procs.iter().enumerate() {
        let mut sink = StateSink::new();
        proc.session.snapshot(&mut sink);
        let control = sink.finish()?;
        snapped.push(ProcSnapshot {
            control,
            ops: proc.ops,
            decision: proc.decision,
            coin_pending: pending_coin == Some(ix),
        });
    }
    Some(Captured {
        snapshot: StateSnapshot {
            memory: memory.to_vec(),
            procs: snapped,
        },
        symmetry: object.symmetry(),
    })
}

fn run_inner(
    spec: &dyn ObjectSpec,
    inputs: &[Value],
    policy: CoinPolicy,
    max_steps: usize,
    path: &[PathEvent],
    capture: bool,
) -> (Need, Option<Captured>) {
    let n = inputs.len();
    let mut alloc = BlockAlloc::new();
    let object = spec.instantiate(&mut InstantiateCtx::new(n, &mut alloc));
    let mut memory: Vec<(u64, Value)> = Vec::new();
    let read = |memory: &Vec<(u64, Value)>, reg: u64| -> RegContents {
        memory
            .binary_search_by_key(&reg, |&(r, _)| r)
            .ok()
            .map(|ix| memory[ix].1)
    };
    let write = |memory: &mut Vec<(u64, Value)>, reg: u64, value: Value| match memory
        .binary_search_by_key(&reg, |&(r, _)| r)
    {
        Ok(ix) => memory[ix].1 = value,
        Err(ix) => memory.insert(ix, (reg, value)),
    };

    let mut procs: Vec<Proc> = Vec::with_capacity(n);
    for (ix, &input) in inputs.iter().enumerate() {
        let mut rng = CheckRng::new(policy, ix);
        let mut session = object.session(ProcessId(ix));
        let action = {
            let mut ctx = Ctx::new(&mut rng, &mut alloc);
            session.begin(input, &mut ctx)
        };
        if rng.local_coin_used() {
            return (Need::LocalCoinUsed, None);
        }
        let (pending, decision) = match action {
            Action::Invoke(op) => (Some(op), None),
            Action::Halt(d) => (None, Some(d)),
        };
        procs.push(Proc {
            session,
            rng,
            pending,
            decision,
            ops: 0,
        });
    }

    let mut steps = 0usize;
    let mut events = path.iter().copied();
    // A scheduled probabilistic write waiting for its coin outcome.
    let mut pending_coin: Option<(usize, u64, Value)> = None;

    loop {
        if let Some((pid, reg, value)) = pending_coin {
            // Resolve the coin with the next scripted event, or yield.
            let Some(event) = events.next() else {
                let proc = &procs[pid];
                let Some(Op::ProbWrite { prob, .. }) = &proc.pending else {
                    unreachable!("pending coin implies a pending probwrite");
                };
                let need = Need::Coin { prob: prob.get() };
                let cap = capture
                    .then(|| capture_state(&*object, &memory, &procs, Some(pid)))
                    .flatten();
                return (need, cap);
            };
            let PathEvent::Coin(performed) = event else {
                panic!("path scripted {event:?} where a coin outcome was needed");
            };
            if performed {
                write(&mut memory, reg, value);
            }
            pending_coin = None;
            advance(
                &mut procs[pid],
                Response::ProbWrite { performed: None },
                &mut alloc,
            );
            if procs[pid].rng.local_coin_used() {
                return (Need::LocalCoinUsed, None);
            }
            continue;
        }

        let live: Vec<ProcessId> = procs
            .iter()
            .enumerate()
            .filter(|(_, p)| p.pending.is_some())
            .map(|(ix, _)| ProcessId(ix))
            .collect();
        if live.is_empty() {
            let outputs = procs
                .iter()
                .map(|p| p.decision.expect("halted process has a decision"))
                .collect();
            let cap = capture
                .then(|| capture_state(&*object, &memory, &procs, None))
                .flatten();
            return (Need::Done(outputs), cap);
        }
        if steps >= max_steps {
            let cap = capture
                .then(|| capture_state(&*object, &memory, &procs, None))
                .flatten();
            return (Need::OutOfSteps, cap);
        }
        let Some(event) = events.next() else {
            let cap = capture
                .then(|| capture_state(&*object, &memory, &procs, None))
                .flatten();
            return (Need::Sched(live), cap);
        };
        let PathEvent::Sched(pid) = event else {
            panic!("path scripted {event:?} where a scheduling choice was needed");
        };
        assert!(live.contains(&pid), "path scheduled non-live process {pid}");
        steps += 1;
        let ix = pid.index();
        procs[ix].ops += 1;
        let op = procs[ix].pending.take().expect("scheduled process is live");
        let response = match op {
            Op::Read(reg) => Response::Read(read(&memory, reg.raw())),
            Op::Write { reg, value } => {
                write(&mut memory, reg.raw(), value);
                Response::Write
            }
            Op::ProbWrite { reg, value, prob } => {
                if prob.get() <= 0.0 {
                    Response::ProbWrite { performed: None }
                } else if prob.is_certain() {
                    write(&mut memory, reg.raw(), value);
                    Response::ProbWrite { performed: None }
                } else {
                    // Keep the op pending so a resumed replay can re-read
                    // its probability, and branch on the coin.
                    procs[ix].pending = Some(Op::ProbWrite { reg, value, prob });
                    pending_coin = Some((ix, reg.raw(), value));
                    continue;
                }
            }
            Op::Collect { base, len } => {
                Response::Collect((0..len).map(|d| read(&memory, base.raw() + d)).collect())
            }
        };
        advance(&mut procs[ix], response, &mut alloc);
        if procs[ix].rng.local_coin_used() {
            return (Need::LocalCoinUsed, None);
        }
    }
}

fn advance(proc: &mut Proc, response: Response, alloc: &mut BlockAlloc) {
    // Clear any coin-pending op left in place.
    proc.pending = None;
    let action = {
        let mut ctx = Ctx::new(&mut proc.rng, alloc);
        proc.session.poll(response, &mut ctx)
    };
    match action {
        Action::Invoke(op) => proc.pending = Some(op),
        Action::Halt(d) => proc.decision = Some(d),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_model::DecidingObject;
    use std::sync::Arc;

    /// A deterministic two-op object: write own input to own register,
    /// read the other register, halt with (0, read-or-own).
    struct PairSpec;
    struct PairObj {
        base: mc_model::RegisterId,
    }
    struct PairSession {
        base: mc_model::RegisterId,
        pid: ProcessId,
        input: Value,
        wrote: bool,
    }

    impl DecidingObject for PairObj {
        fn session(&self, pid: ProcessId) -> Box<dyn Session + Send> {
            Box::new(PairSession {
                base: self.base,
                pid,
                input: 0,
                wrote: false,
            })
        }
    }

    impl Session for PairSession {
        fn begin(&mut self, input: Value, _ctx: &mut Ctx<'_>) -> Action {
            self.input = input;
            Action::Invoke(Op::Write {
                reg: self.base.offset(self.pid.index() as u64),
                value: input,
            })
        }
        fn poll(&mut self, response: Response, _ctx: &mut Ctx<'_>) -> Action {
            if !self.wrote {
                self.wrote = true;
                let other = 1 - self.pid.index() as u64;
                Action::Invoke(Op::Read(self.base.offset(other)))
            } else {
                let v = response.expect_read().unwrap_or(self.input);
                Action::Halt(Decision::continue_with(v))
            }
        }
    }

    impl ObjectSpec for PairSpec {
        fn instantiate(&self, ctx: &mut InstantiateCtx<'_>) -> Arc<dyn DecidingObject> {
            Arc::new(PairObj {
                base: ctx.alloc.alloc_block(2),
            })
        }
    }

    #[test]
    fn empty_path_reports_initial_choice() {
        let need = run_path(&PairSpec, &[7, 9], CoinPolicy::Forbid, 100, &[]);
        match need {
            Need::Sched(live) => assert_eq!(live, vec![ProcessId(0), ProcessId(1)]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn full_path_completes_with_outputs() {
        use PathEvent::Sched;
        let p0 = ProcessId(0);
        let p1 = ProcessId(1);
        // p0 runs both ops first, then p1.
        let path = [Sched(p0), Sched(p0), Sched(p1), Sched(p1)];
        let need = run_path(&PairSpec, &[7, 9], CoinPolicy::Forbid, 100, &path);
        match need {
            Need::Done(outputs) => {
                // p0 read before p1 wrote: keeps 7. p1 reads p0's 7.
                assert_eq!(outputs[0].value(), 7);
                assert_eq!(outputs[1].value(), 7);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn step_bound_is_reported() {
        let need = run_path(
            &PairSpec,
            &[1, 2],
            CoinPolicy::Forbid,
            1,
            &[
                PathEvent::Sched(ProcessId(0)),
                PathEvent::Sched(ProcessId(0)),
            ],
        );
        assert!(matches!(need, Need::OutOfSteps));
    }

    #[test]
    #[should_panic(expected = "non-live")]
    fn scheduling_halted_process_is_an_explorer_bug() {
        use PathEvent::Sched;
        let p0 = ProcessId(0);
        let path = [Sched(p0), Sched(p0), Sched(p0)];
        run_path(&PairSpec, &[7, 9], CoinPolicy::Forbid, 100, &path);
    }
}
