//! Exhaustive bounded model checking for deciding objects.
//!
//! The simulator in `mc-sim` samples executions; this crate *enumerates*
//! them. For small systems it explores **every** interleaving the strongest
//! coin-blind adversary can produce and **every** outcome of every
//! probabilistic-write coin, giving:
//!
//! * [`Explorer::verify_safety`] — a proof (within the step bound) that
//!   validity and coherence (and, for ratifiers, acceptance — see
//!   [`CheckConfig::check_acceptance`]) hold on *all* executions, not just
//!   sampled ones;
//! * [`Explorer::worst_case_agreement`] — the **exact** worst-case
//!   agreement probability `δ*` of a conciliator: the value of the
//!   zero-sum game where the adversary picks the schedule (seeing
//!   everything except unresolved coins, i.e. at least as strong as the
//!   location-oblivious adversary of the paper's Theorem 7) and chance
//!   resolves each probabilistic write. Comparing `δ*` against the
//!   theorem's closed-form lower bound `(1 − e^{−1/4})/4` shows exactly
//!   how loose the analysis is at small `n`.
//!
//! # Scope and soundness
//!
//! The checker enumerates two kinds of branching: the adversary's choice of
//! which live process steps, and the boolean outcome of each
//! [`Op::ProbWrite`](mc_model::Op) whose probability is strictly between 0
//! and 1. Protocols whose *sessions* flip local coins (e.g. shared-coin
//! protocols) are rejected by default — enumerating arbitrary RNG draws is
//! impossible — unless a fixed coin seed is supplied, in which case local
//! coins are deterministic (sampled, not enumerated) and results are
//! conditional on that seed.
//!
//! Executions that exceed the step bound are counted as `truncated` and
//! treated pessimistically (agreement value 0, and reported in the safety
//! report), so `worst_case_agreement` is always a sound **lower** bound and
//! equals the exact value when `truncated == 0`.
//!
//! # Example: exact worst-case δ of the paper's conciliator at n = 2
//!
//! ```
//! use mc_check::Explorer;
//! use mc_core::FirstMoverConciliator;
//!
//! let explorer = Explorer::new(FirstMoverConciliator::impatient(), vec![0, 1]);
//! let agreement = explorer.worst_case_agreement().unwrap();
//! assert_eq!(agreement.truncated, 0); // fully explored: exact value
//! // Theorem 7 promises ≥ 0.0553; the exact two-process value is far higher.
//! assert!(agreement.probability > 0.0553);
//! ```

//! # Two engines
//!
//! The crate ships two exploration engines over the same replay machinery:
//!
//! * the path-based [`Explorer`], which enumerates execution scripts —
//!   simple, assumption-free, and the cross-validation oracle;
//! * the graph-based [`GraphExplorer`], which deduplicates canonicalized
//!   *configurations* (state hashing plus symmetry reduction over
//!   process-id permutations and the binary value swap — see [`canon`]),
//!   scales to `n = 3`, and reconstructs **minimal** counterexample
//!   scripts from shortest-path predecessor links.
//!
//! Both engines expose an engine-independent [`Verdict`]; the test suite
//! requires them to agree wherever both can run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canon;
mod explore;
mod graph;
mod replay;
mod state;

pub use explore::{AgreementValue, CheckConfig, CheckError, Explorer, SafetyReport, Verdict};
pub use graph::{GraphConfig, GraphExplorer, GraphReport};
pub use replay::{replay_to_completion, CoinPolicy, PathEvent, ReplayError};
pub use state::{ProcSnapshot, StateSnapshot};
