//! Property tests for the canonicalizer: the canonical form must be a true
//! orbit invariant (equal on every symmetric twin of a configuration) and
//! idempotent (canonicalizing a canonical form changes nothing). Both are
//! consequences of the admitted elements forming a subgroup — the
//! stabilizer of the input vector — and these tests exercise that argument
//! on randomized configurations and register layouts.

use mc_check::canon::{encode_state, SymmetryGroup};
use mc_check::{ProcSnapshot, StateSnapshot};
use mc_model::{Decision, RegisterId, StateAtom, SymmetrySpec};
use proptest::prelude::*;

/// A register layout exercising every declared role at once: a pid-indexed
/// block at the bottom, a swap pair, and a shared value register. The pid
/// block doubles as a value block (identity permutes *and* contents swap),
/// which is the collect-ratifier shape.
fn layout(n: usize) -> SymmetrySpec {
    SymmetrySpec {
        pid_oblivious: true,
        value_symmetric: true,
        value_registers: vec![(RegisterId(0), n as u64), (RegisterId(12), 1)],
        swap_pairs: vec![(RegisterId(10), RegisterId(11))],
        pid_blocks: vec![RegisterId(0)],
    }
}

/// Maps a sampled register index onto the layout's palette.
fn reg_for(ix: u64, n: usize) -> u64 {
    match ix {
        0..=3 => ix.min(n as u64 - 1), // pid block
        4 => 10,                       // swap pair, low
        5 => 11,                       // swap pair, high
        6 => 12,                       // shared value register
        _ => 20 + ix,                  // untouched by any symmetry
    }
}

fn decision_for(code: u64) -> Option<Decision> {
    match code {
        0 => None,
        1 => Some(Decision::continue_with(0)),
        2 => Some(Decision::continue_with(1)),
        3 => Some(Decision::decide(0)),
        _ => Some(Decision::decide(1)),
    }
}

fn atom_for(tag: u64, raw: u64, value: u64) -> StateAtom {
    match tag {
        0 => StateAtom::Raw(raw),
        1 => StateAtom::Value(value),
        _ => StateAtom::MaybeValue(raw.is_multiple_of(2).then_some(value)),
    }
}

/// Builds a snapshot from flat sampled words.
fn snapshot(
    n: usize,
    memory_seed: &[(u64, u64)],
    proc_seed: &[(u64, u64, u64, u64, u64)],
) -> StateSnapshot {
    let mut memory: Vec<(u64, u64)> = Vec::new();
    for &(reg_ix, value) in memory_seed {
        let reg = reg_for(reg_ix, n);
        if memory.iter().all(|&(r, _)| r != reg) {
            memory.push((reg, value));
        }
    }
    memory.sort_unstable_by_key(|&(reg, _)| reg);
    let procs = proc_seed
        .iter()
        .take(n)
        .map(|&(raw, value, tag, ops, dec)| ProcSnapshot {
            control: vec![StateAtom::Raw(raw), atom_for(tag, raw, value)],
            ops,
            decision: decision_for(dec),
            coin_pending: ops % 2 == 1,
        })
        .collect();
    StateSnapshot { memory, procs }
}

proptest! {
    /// The canonical key is constant on the whole orbit: applying any
    /// admitted group element before canonicalizing changes nothing.
    #[test]
    fn canonical_key_is_orbit_invariant(
        inputs in prop::collection::vec(0..2u64, 2..5),
        memory_seed in prop::collection::vec((0..10u64, 0..3u64), 0..6),
        proc_seed in prop::collection::vec((0..4u64, 0..2u64, 0..3u64, 0..5u64, 0..5u64), 4..5),
    ) {
        let n = inputs.len();
        let group = SymmetryGroup::for_inputs(layout(n), &inputs, true, true);
        let state = snapshot(n, &memory_seed, &proc_seed);
        let key = group.canonical_key(&state);
        for ix in 0..group.len() {
            let twin = group.apply(&state, ix);
            prop_assert_eq!(
                &group.canonical_key(&twin),
                &key,
                "element {} broke invariance",
                ix
            );
        }
    }

    /// Canonicalization is idempotent, and the canonical form's encoding
    /// *is* the canonical key.
    #[test]
    fn canonical_form_is_idempotent(
        inputs in prop::collection::vec(0..2u64, 2..5),
        memory_seed in prop::collection::vec((0..10u64, 0..3u64), 0..6),
        proc_seed in prop::collection::vec((0..4u64, 0..2u64, 0..3u64, 0..5u64, 0..5u64), 4..5),
    ) {
        let n = inputs.len();
        let group = SymmetryGroup::for_inputs(layout(n), &inputs, true, true);
        let state = snapshot(n, &memory_seed, &proc_seed);
        let form = group.canonical_form(&state);
        prop_assert_eq!(group.canonical_form(&form), form.clone());
        prop_assert_eq!(encode_state(&form), group.canonical_key(&state));
        // And the form stays inside the orbit: its own key equals the
        // original's.
        prop_assert_eq!(group.canonical_key(&form), group.canonical_key(&state));
    }

    /// The trivial group performs no reduction: the canonical key is the
    /// plain encoding, whatever the configuration.
    #[test]
    fn trivial_group_is_identity(
        inputs in prop::collection::vec(0..2u64, 2..5),
        memory_seed in prop::collection::vec((0..10u64, 0..3u64), 0..6),
        proc_seed in prop::collection::vec((0..4u64, 0..2u64, 0..3u64, 0..5u64, 0..5u64), 4..5),
    ) {
        let n = inputs.len();
        let group = SymmetryGroup::trivial(n);
        let state = snapshot(n, &memory_seed, &proc_seed);
        prop_assert_eq!(group.len(), 1);
        prop_assert_eq!(group.canonical_key(&state), encode_state(&state));
        prop_assert_eq!(group.canonical_form(&state), state);
    }
}
