//! Exhaustive verification of the paper's actual objects at small n.
//!
//! These are the strongest correctness statements in the repository: for
//! the systems below, *every* schedule the strongest coin-blind adversary
//! can produce, crossed with *every* outcome of every probabilistic-write
//! coin, satisfies the claimed properties.

use std::sync::Arc;

use mc_check::{CheckConfig, CheckError, CoinPolicy, Explorer};

fn ratifier_config() -> CheckConfig {
    CheckConfig {
        check_acceptance: true,
        ..CheckConfig::default()
    }
}
use mc_core::{
    Chain, CoinConciliator, FirstMoverConciliator, Ratifier, VotingSharedCoin, WriteSchedule,
};

/// Theorem 8, exhaustively: the binary ratifier satisfies validity,
/// coherence, and acceptance on every interleaving for n = 2 and n = 3,
/// for every input vector.
#[test]
fn binary_ratifier_is_safe_on_all_schedules() {
    for inputs in [
        vec![0, 0],
        vec![0, 1],
        vec![1, 0],
        vec![1, 1],
        vec![0, 0, 0],
        vec![0, 1, 1],
        vec![1, 0, 1],
        vec![0, 1, 0],
    ] {
        let report = Explorer::new(Ratifier::binary(), inputs.clone())
            .with_config(ratifier_config())
            .verify_safety()
            .unwrap();
        assert!(
            report.is_exhaustive_pass(),
            "inputs {inputs:?}: {:?}",
            report.violation
        );
        assert!(report.complete_paths > 1);
    }
}

/// Theorem 8 for the m-valued schemes: exhaustive at n = 2, m = 4 and a
/// three-process mixed-value instance.
#[test]
fn multivalued_ratifiers_are_safe_on_all_schedules() {
    for ratifier in [Ratifier::binomial(4), Ratifier::bitvector(4)] {
        for inputs in [vec![0u64, 3], vec![2, 2], vec![1, 3, 2]] {
            let report = Explorer::new(ratifier.clone(), inputs.clone())
                .with_config(ratifier_config())
                .verify_safety()
                .unwrap();
            assert!(
                report.is_exhaustive_pass(),
                "{inputs:?}: {:?}",
                report.violation
            );
        }
    }
}

/// The impatient conciliator terminates within its Theorem 7 step bound on
/// every schedule (no truncated paths), and never violates validity or
/// coherence. (n = 2 is the exhaustive frontier: the checker re-executes
/// paths from scratch, and the n = 3 tree has > 5M leaves.)
#[test]
fn impatient_conciliator_is_safe_and_bounded_on_all_schedules() {
    for inputs in [vec![0u64, 1], vec![5, 5]] {
        let n = inputs.len();
        // 2⌈lg n⌉ + 4 ops per process is the hard bound.
        let per_proc = 2 * (n as u64).next_power_of_two().trailing_zeros() as usize + 4;
        let config = CheckConfig {
            max_steps: per_proc * n,
            ..CheckConfig::default()
        };
        let report = Explorer::new(FirstMoverConciliator::impatient(), inputs.clone())
            .with_config(config)
            .verify_safety()
            .unwrap();
        assert!(
            report.is_exhaustive_pass(),
            "inputs {inputs:?}: truncated={} violation={:?}",
            report.truncated_paths,
            report.violation
        );
    }
}

/// The exact worst-case agreement probability of the paper's conciliator
/// at n = 2 against the strongest coin-blind adversary — compared with
/// Theorem 7's closed-form lower bound.
#[test]
fn exact_worst_case_agreement_at_n2_beats_theorem_bound() {
    let value = Explorer::new(FirstMoverConciliator::impatient(), vec![0, 1])
        .worst_case_agreement()
        .unwrap();
    assert_eq!(value.truncated, 0, "value must be exact");
    let theorem = (1.0 - (-0.25f64).exp()) * 0.25;
    assert!(
        value.probability >= theorem,
        "exact δ* = {} below the theorem bound {theorem}",
        value.probability
    );
    // The bound is known to be loose; the exact value is at least 25%.
    assert!(value.probability >= 0.25, "δ* = {}", value.probability);
    // And unanimous inputs always agree.
    let unanimous = Explorer::new(FirstMoverConciliator::impatient(), vec![4, 4])
        .worst_case_agreement()
        .unwrap();
    assert_eq!(unanimous.probability, 1.0);
}

/// Corollary 4, exhaustively: the composition (conciliator; ratifier) is a
/// weak consensus object on every schedule and coin outcome at n = 2.
#[test]
fn conciliator_ratifier_composition_is_safe_on_all_schedules() {
    let spec = Chain::pair(
        Arc::new(FirstMoverConciliator::impatient()),
        Arc::new(Ratifier::binary()),
    );
    for inputs in [vec![0u64, 1], vec![1, 1]] {
        let report = Explorer::new(spec.clone(), inputs.clone())
            .verify_safety()
            .unwrap();
        assert!(
            report.is_exhaustive_pass(),
            "inputs {inputs:?}: truncated={} violation={:?}",
            report.truncated_paths,
            report.violation
        );
    }
}

/// A non-saturating schedule yields unbounded executions: the checker
/// reports truncation instead of looping, and the truncated value is still
/// a sound lower bound.
#[test]
fn fixed_schedule_reports_truncation() {
    let spec = FirstMoverConciliator::with_schedule(WriteSchedule::fixed(1.0));
    let config = CheckConfig {
        max_steps: 12,
        ..CheckConfig::default()
    };
    let report = Explorer::new(spec.clone(), vec![0, 1])
        .with_config(config.clone())
        .verify_safety()
        .unwrap();
    assert!(report.truncated_paths > 0);
    assert!(report.violation.is_none());
    let value = Explorer::new(spec, vec![0, 1])
        .with_config(config)
        .worst_case_agreement()
        .unwrap();
    assert!(value.truncated > 0);
    assert!(value.probability <= 1.0);
}

/// Protocols with session-local coins are rejected under the exhaustive
/// policy and accepted (conditionally) with a fixed seed.
#[test]
fn local_coin_protocols_are_rejected_then_sampled() {
    let spec = CoinConciliator::new(Arc::new(
        VotingSharedCoin::with_quorum_factor(1).expect("positive factor"),
    ));
    let err = Explorer::new(spec.clone(), vec![0, 1])
        .verify_safety()
        .unwrap_err();
    assert_eq!(err, CheckError::LocalCoinUsed);

    // With a fixed coin seed the voting coin becomes deterministic and the
    // safety sweep covers all schedules for that seed.
    let config = CheckConfig {
        coin_policy: CoinPolicy::Fixed(7),
        max_steps: 400,
        max_paths: 2_000_000,
        ..CheckConfig::default()
    };
    let report = Explorer::new(spec, vec![0, 1])
        .with_config(config)
        .verify_safety()
        .unwrap();
    assert!(report.violation.is_none(), "{:?}", report.violation);
}
