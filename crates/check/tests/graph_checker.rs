//! The graph engine against the paper's composed protocols — and against
//! the path engine, which serves as its cross-validation oracle.
//!
//! Three layers of guarantees:
//!
//! * **Cross-engine agreement.** On every protocol in the matrix and every
//!   binary input vector at n = 2, the path engine (script enumeration)
//!   and the graph engine (canonical-state BFS) must return the same
//!   [`Verdict`] — exhaustiveness, violation kind, and certified
//!   worst-case individual work.
//! * **n = 3 sweeps.** State dedup plus symmetry reduction make n = 3
//!   tractable; agreement/validity (and acceptance for ratifiers) are
//!   verified exhaustively for every composed protocol under check.
//! * **Theorem 10 pin.** The binary ratifier's 4-operation individual
//!   bound is certified *exactly* by both engines at n ∈ {2, 3}.

use std::sync::Arc;

use mc_check::{CheckConfig, Explorer, GraphConfig, GraphExplorer, Verdict};
use mc_core::{
    BoundedChain, Chain, CollectRatifier, ConsensusBuilder, FirstMoverConciliator, Ratifier,
};
use mc_model::{ObjectSpec, Value};

/// One protocol under check: a spec plus the configuration both engines
/// share.
struct Entry {
    spec: Arc<dyn ObjectSpec>,
    check_acceptance: bool,
    max_steps: usize,
    /// Whether every execution must complete within `max_steps` (ratifier
    /// and truncated-chain territory). The full consensus builder cannot:
    /// an adversarial schedule livelocks its CIL fallback, so only the
    /// absence of violations is asserted there.
    expect_exhaustive: bool,
}

fn matrix() -> Vec<Entry> {
    let impatient = || Arc::new(FirstMoverConciliator::impatient()) as Arc<dyn ObjectSpec>;
    vec![
        Entry {
            spec: Arc::new(Ratifier::binary()),
            check_acceptance: true,
            max_steps: 64,
            expect_exhaustive: true,
        },
        Entry {
            spec: Arc::new(Ratifier::binomial(4)),
            check_acceptance: true,
            max_steps: 64,
            expect_exhaustive: true,
        },
        Entry {
            spec: Arc::new(Ratifier::bitvector(4)),
            check_acceptance: true,
            max_steps: 64,
            expect_exhaustive: true,
        },
        Entry {
            spec: Arc::new(CollectRatifier::new()),
            check_acceptance: true,
            max_steps: 64,
            expect_exhaustive: true,
        },
        Entry {
            spec: impatient(),
            check_acceptance: false,
            max_steps: 64,
            expect_exhaustive: true,
        },
        Entry {
            spec: Arc::new(Chain::pair(impatient(), Arc::new(Ratifier::binary()))),
            check_acceptance: false,
            max_steps: 64,
            expect_exhaustive: true,
        },
        Entry {
            spec: Arc::new(BoundedChain::new(
                "checked-bounded",
                move |_| Arc::new(FirstMoverConciliator::impatient()) as Arc<dyn ObjectSpec>,
                1,
                Arc::new(Ratifier::binary()),
            )),
            check_acceptance: false,
            max_steps: 64,
            expect_exhaustive: true,
        },
        Entry {
            // The full consensus protocol, bounded: its default fallback
            // contains fixed-probability conciliators an adversary can
            // livelock (FLP), so truncation is expected — safety must
            // still hold on everything explored.
            spec: Arc::new(ConsensusBuilder::binary().bounded(1).build()),
            check_acceptance: false,
            max_steps: 14,
            expect_exhaustive: false,
        },
    ]
}

fn binary_vectors(n: usize) -> Vec<Vec<Value>> {
    (0..1u64 << n)
        .map(|bits| (0..n).map(|i| (bits >> i) & 1).collect())
        .collect()
}

fn path_verdict(entry: &Entry, inputs: &[Value]) -> Verdict {
    Explorer::new(Arc::clone(&entry.spec), inputs.to_vec())
        .with_config(CheckConfig {
            max_steps: entry.max_steps,
            check_acceptance: entry.check_acceptance,
            ..CheckConfig::default()
        })
        .verify_safety()
        .unwrap_or_else(|e| panic!("{}: path engine failed: {e:?}", entry.spec.name()))
        .verdict()
}

fn graph_verdict(entry: &Entry, inputs: &[Value], symmetry: bool) -> Verdict {
    GraphExplorer::new(Arc::clone(&entry.spec), inputs.to_vec())
        .with_config(GraphConfig {
            max_steps: entry.max_steps,
            check_acceptance: entry.check_acceptance,
            symmetry,
            ..GraphConfig::default()
        })
        .verify_safety()
        .unwrap_or_else(|e| panic!("{}: graph engine failed: {e:?}", entry.spec.name()))
        .verdict()
}

/// The tentpole's oracle requirement: both engines agree on every n = 2
/// verdict, for every protocol in the matrix and every binary input
/// vector, with and without symmetry reduction.
#[test]
fn engines_agree_on_all_n2_verdicts() {
    for entry in matrix() {
        for inputs in binary_vectors(2) {
            let path = path_verdict(&entry, &inputs);
            let graph = graph_verdict(&entry, &inputs, true);
            let graph_plain = graph_verdict(&entry, &inputs, false);
            assert_eq!(
                path,
                graph,
                "{} on {inputs:?}: engines disagree",
                entry.spec.name()
            );
            assert_eq!(
                graph,
                graph_plain,
                "{} on {inputs:?}: symmetry changed the verdict",
                entry.spec.name()
            );
        }
    }
}

/// The n = 3 sweep the path engine cannot reach: every composed protocol,
/// exhaustively (where termination is guaranteed) under the graph engine.
///
/// Debug builds are slow, so this test covers one representative of each
/// input orbit — `[0,0,0]` (unanimous) and `[0,1,1]` (split) — under the
/// pid-permutation × value-swap group; the full 8-vector sweep runs in
/// release mode via the `check_campaign` CI gate.
#[test]
fn graph_engine_verifies_all_protocols_at_n3() {
    for entry in matrix() {
        for inputs in [vec![0, 0, 0], vec![0, 1, 1]] {
            let report = GraphExplorer::new(Arc::clone(&entry.spec), inputs.clone())
                .with_config(GraphConfig {
                    max_steps: entry.max_steps,
                    check_acceptance: entry.check_acceptance,
                    ..GraphConfig::default()
                })
                .verify_safety()
                .unwrap_or_else(|e| panic!("{}: graph engine failed: {e:?}", entry.spec.name()));
            assert!(
                report.violation.is_none(),
                "{} on {inputs:?}: {:?}",
                entry.spec.name(),
                report.violation
            );
            if entry.expect_exhaustive {
                assert!(
                    report.is_exhaustive_pass(),
                    "{} on {inputs:?}: truncated {} states",
                    entry.spec.name(),
                    report.truncated_states
                );
            }
            assert!(report.distinct_states > 1);
        }
    }
}

/// Satellite: Theorem 10's exact individual bound — the binary ratifier
/// costs at most 4 operations per process, certified by *both* engines on
/// every schedule at n ∈ {2, 3}, for every binary input vector.
#[test]
fn theorem_10_binary_ratifier_costs_exactly_4_ops() {
    let entry = Entry {
        spec: Arc::new(Ratifier::binary()),
        check_acceptance: true,
        max_steps: 64,
        expect_exhaustive: true,
    };
    for n in [2usize, 3] {
        for inputs in binary_vectors(n) {
            let graph = graph_verdict(&entry, &inputs, true);
            assert!(graph.exhaustive, "n={n} {inputs:?}");
            assert_eq!(graph.violation, None, "n={n} {inputs:?}");
            // The bound is *attained*, not just respected: some schedule
            // drives a process through all four operations.
            assert_eq!(graph.max_individual_ops, Some(4), "n={n} {inputs:?}");
            let path = path_verdict(&entry, &inputs);
            assert_eq!(path, graph, "n={n} {inputs:?}: engines disagree");
        }
    }
}

/// Symmetry reduction must not change any n = 3 outcome, only the state
/// count — and on symmetric inputs it must actually reduce.
#[test]
fn symmetry_reduction_preserves_n3_verdicts() {
    let entry = Entry {
        spec: Arc::new(Ratifier::binary()),
        check_acceptance: true,
        max_steps: 64,
        expect_exhaustive: true,
    };
    for inputs in binary_vectors(3) {
        let with = GraphExplorer::new(Arc::clone(&entry.spec), inputs.clone())
            .with_config(GraphConfig {
                check_acceptance: true,
                ..GraphConfig::default()
            })
            .verify_safety()
            .unwrap();
        let without = GraphExplorer::new(Arc::clone(&entry.spec), inputs.clone())
            .with_config(GraphConfig {
                check_acceptance: true,
                symmetry: false,
                ..GraphConfig::default()
            })
            .verify_safety()
            .unwrap();
        assert_eq!(with.verdict(), without.verdict(), "{inputs:?}");
        assert!(with.group_size > 1, "{inputs:?}");
        assert!(
            with.distinct_states < without.distinct_states,
            "{inputs:?}: {} !< {}",
            with.distinct_states,
            without.distinct_states
        );
    }
}

/// Coins survive the round trip: a conciliator's probabilistic writes show
/// up as [`PathEvent::Coin`] branches in both engines, and the graph
/// engine's counterexample scripts stay replayable (exercised end-to-end in
/// `mc-lab`'s `check_counterexample_replays`).
#[test]
fn conciliator_coin_branches_are_explored() {
    let report = GraphExplorer::new(FirstMoverConciliator::impatient(), vec![0, 1, 1])
        .verify_safety()
        .unwrap();
    assert!(report.is_exhaustive_pass());
    // A 1/3- or 2/3-probability write branched somewhere; dedup must have
    // collapsed some of those branches.
    assert!(report.transitions > report.distinct_states);
    assert!(report.dedup_hits > 0);
}
