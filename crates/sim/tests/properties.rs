//! Property-based tests of the simulator itself: the memory model, run
//! determinism, work accounting, and adversary-view information hiding.

use mc_model::{OpKind, ProcessId, RegisterId};
use mc_sim::adversary::{Adversary, Capability, RandomScheduler, View};
use mc_sim::harness::{self, inputs};
use mc_sim::testutil::{CoinFlipSpec, CollectOnceSpec, WriteThenReadSpec};
use mc_sim::{EngineConfig, Memory};
use proptest::prelude::*;

proptest! {
    /// The register file agrees with a reference map under arbitrary
    /// write/read sequences (last write wins, ⊥ until first write).
    #[test]
    fn memory_matches_reference_model(ops in prop::collection::vec((0u64..32, 0u64..1000), 0..200)) {
        let mut memory = Memory::new();
        let mut reference = std::collections::HashMap::new();
        for (reg, value) in ops {
            // Interleave a read check before each write.
            prop_assert_eq!(memory.read(RegisterId(reg)), reference.get(&reg).copied());
            memory.write(RegisterId(reg), value);
            reference.insert(reg, value);
        }
        for reg in 0..32 {
            prop_assert_eq!(memory.read(RegisterId(reg)), reference.get(&reg).copied());
        }
        prop_assert_eq!(memory.written_count(), reference.len());
    }

    /// Runs are pure functions of (spec, inputs, adversary seed, run seed).
    #[test]
    fn runs_are_deterministic(n in 1usize..10, seed in 0u64..10_000) {
        let ins = inputs::alternating(n, 3);
        let run = || {
            harness::run_object(
                &WriteThenReadSpec,
                &ins,
                &mut RandomScheduler::new(seed),
                seed,
                &EngineConfig::default().with_trace(),
            ).unwrap()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.outputs, b.outputs);
        prop_assert_eq!(a.metrics, b.metrics);
        prop_assert_eq!(a.trace, b.trace);
    }

    /// The trace length equals the total work: every operation is recorded
    /// exactly once and costs exactly one unit.
    #[test]
    fn trace_length_equals_total_work(n in 1usize..10, seed in 0u64..10_000) {
        let ins = inputs::alternating(n, 2);
        let out = harness::run_object(
            &WriteThenReadSpec,
            &ins,
            &mut RandomScheduler::new(seed),
            seed,
            &EngineConfig::default().with_trace(),
        ).unwrap();
        prop_assert_eq!(out.trace.unwrap().len() as u64, out.metrics.total_work());
        // WriteThenRead: exactly 2 ops per process.
        prop_assert_eq!(out.metrics.total_work(), 2 * n as u64);
        prop_assert_eq!(out.metrics.individual_work(), 2);
    }

    /// Collect runs cost one op per collect in the cheap-collect model.
    #[test]
    fn collect_costs_one_operation(n in 1usize..8, seed in 0u64..5000) {
        let ins = inputs::alternating(n, 2);
        let out = harness::run_object(
            &CollectOnceSpec,
            &ins,
            &mut RandomScheduler::new(seed),
            seed,
            &EngineConfig::default().with_cheap_collect(),
        ).unwrap();
        // write + collect = 2 ops each.
        prop_assert_eq!(out.metrics.total_work(), 2 * n as u64);
    }

    /// Different run seeds give independent coin streams (two seeds agree
    /// on all of 16 coin flips only with probability 2^-16 per pair; assert
    /// they differ for at least one of several pairs).
    #[test]
    fn coin_streams_vary_with_seed(base in 0u64..1_000_000) {
        let flip = |seed: u64| {
            harness::run_object(
                &CoinFlipSpec,
                &[0; 16],
                &mut RandomScheduler::new(0),
                seed,
                &EngineConfig::default(),
            ).unwrap().values()
        };
        let distinct = (1..=4u64).any(|d| flip(base) != flip(base + d));
        prop_assert!(distinct);
    }
}

proptest! {
    /// A recorded schedule replayed via `ScriptedAdversary` with the same
    /// run seed reproduces the execution exactly (coins re-flip
    /// identically from the per-process streams).
    #[test]
    fn scripted_replay_reproduces_recorded_runs(n in 1usize..8, seed in 0u64..10_000) {
        let ins = inputs::alternating(n, 2);
        let original = harness::run_object(
            &WriteThenReadSpec,
            &ins,
            &mut RandomScheduler::new(seed),
            seed,
            &EngineConfig::default().with_trace(),
        ).unwrap();
        let mut replayer = mc_sim::adversary::ScriptedAdversary::from_trace(
            original.trace.as_ref().unwrap(),
        );
        let replayed = harness::run_object(
            &WriteThenReadSpec,
            &ins,
            &mut replayer,
            seed,
            &EngineConfig::default().with_trace(),
        ).unwrap();
        prop_assert_eq!(original.outputs, replayed.outputs);
        prop_assert_eq!(original.trace, replayed.trace);
    }
}

/// An adversary that asserts its view is masked per its declared
/// capability, then defers to round-robin.
struct MaskSpy {
    capability: Capability,
    cursor: usize,
}

impl Adversary for MaskSpy {
    fn capability(&self) -> Capability {
        self.capability
    }

    fn choose(&mut self, view: &View<'_>) -> ProcessId {
        for p in view.pending {
            match self.capability {
                Capability::Oblivious => {
                    assert!(p.kind.is_none() && p.reg.is_none() && p.value.is_none());
                    assert!(view.memory.is_none());
                }
                Capability::ValueOblivious => {
                    assert!(p.kind.is_some());
                    assert!(p.value.is_none(), "value leaked to value-oblivious");
                    assert!(view.memory.is_none(), "memory leaked to value-oblivious");
                }
                Capability::LocationOblivious => {
                    assert!(p.kind.is_some());
                    if matches!(p.kind, Some(OpKind::Write) | Some(OpKind::ProbWrite)) {
                        assert!(p.reg.is_none(), "write location leaked");
                    }
                    assert!(view.memory.is_some());
                }
                Capability::Adaptive => {
                    assert!(p.kind.is_some() && p.reg.is_some());
                    assert!(view.memory.is_some());
                }
            }
        }
        let choice = view
            .pending
            .iter()
            .map(|p| p.pid)
            .find(|p| p.index() >= self.cursor)
            .unwrap_or(view.pending[0].pid);
        self.cursor = (choice.index() + 1) % view.n;
        choice
    }
}

#[test]
fn adversary_views_hide_exactly_what_each_class_may_not_see() {
    for capability in [
        Capability::Oblivious,
        Capability::ValueOblivious,
        Capability::LocationOblivious,
        Capability::Adaptive,
    ] {
        let mut spy = MaskSpy {
            capability,
            cursor: 0,
        };
        // WriteThenRead exercises writes and reads; every view is asserted
        // inside the spy.
        harness::run_object(
            &WriteThenReadSpec,
            &inputs::alternating(5, 2),
            &mut spy,
            1,
            &EngineConfig::default(),
        )
        .unwrap();
    }
}
