//! Tiny deciding objects used by tests, docs, and examples of the engine
//! itself. Real protocols live in `mc-core`.

use std::sync::Arc;

use mc_model::{
    Action, Ctx, DecidingObject, Decision, InstantiateCtx, ObjectSpec, Op, ProcessId, RegisterId,
    Response, Session,
};
use rand::RngExt;

/// Every process writes its input to one shared register, reads the
/// register, and returns whatever it read (decision bit 0).
///
/// A minimal exercise of write/read interleaving; satisfies validity and
/// termination but not agreement.
#[derive(Debug, Clone, Copy)]
pub struct WriteThenReadSpec;

struct WriteThenRead {
    reg: RegisterId,
}

impl DecidingObject for WriteThenRead {
    fn session(&self, _pid: ProcessId) -> Box<dyn Session + Send> {
        Box::new(WriteThenReadSession {
            reg: self.reg,
            wrote: false,
        })
    }
}

struct WriteThenReadSession {
    reg: RegisterId,
    wrote: bool,
}

impl Session for WriteThenReadSession {
    fn begin(&mut self, input: u64, _ctx: &mut Ctx<'_>) -> Action {
        Action::Invoke(Op::Write {
            reg: self.reg,
            value: input,
        })
    }

    fn poll(&mut self, response: Response, _ctx: &mut Ctx<'_>) -> Action {
        if !self.wrote {
            self.wrote = true;
            debug_assert!(matches!(response, Response::Write));
            Action::Invoke(Op::Read(self.reg))
        } else {
            let read = response.expect_read().expect("someone wrote first");
            Action::Halt(Decision::continue_with(read))
        }
    }
}

impl ObjectSpec for WriteThenReadSpec {
    fn instantiate(&self, ctx: &mut InstantiateCtx<'_>) -> Arc<dyn DecidingObject> {
        Arc::new(WriteThenRead {
            reg: ctx.alloc.alloc_block(1),
        })
    }

    fn name(&self) -> String {
        "write-then-read".to_string()
    }
}

/// Reads one register forever; never halts. Exists to test step limits.
#[derive(Debug, Clone, Copy)]
pub struct SpinSpec;

struct Spin {
    reg: RegisterId,
}

impl DecidingObject for Spin {
    fn session(&self, _pid: ProcessId) -> Box<dyn Session + Send> {
        Box::new(SpinSession { reg: self.reg })
    }
}

struct SpinSession {
    reg: RegisterId,
}

impl Session for SpinSession {
    fn begin(&mut self, _input: u64, _ctx: &mut Ctx<'_>) -> Action {
        Action::Invoke(Op::Read(self.reg))
    }

    fn poll(&mut self, _response: Response, _ctx: &mut Ctx<'_>) -> Action {
        Action::Invoke(Op::Read(self.reg))
    }
}

impl ObjectSpec for SpinSpec {
    fn instantiate(&self, ctx: &mut InstantiateCtx<'_>) -> Arc<dyn DecidingObject> {
        Arc::new(Spin {
            reg: ctx.alloc.alloc_block(1),
        })
    }

    fn name(&self) -> String {
        "spin".to_string()
    }
}

/// Writes its input to its own register, then collects the whole block and
/// returns the first non-⊥ value. Exercises [`Op::Collect`].
#[derive(Debug, Clone, Copy)]
pub struct CollectOnceSpec;

struct CollectOnce {
    base: RegisterId,
    n: u64,
}

impl DecidingObject for CollectOnce {
    fn session(&self, pid: ProcessId) -> Box<dyn Session + Send> {
        Box::new(CollectOnceSession {
            base: self.base,
            n: self.n,
            pid,
            wrote: false,
        })
    }
}

struct CollectOnceSession {
    base: RegisterId,
    n: u64,
    pid: ProcessId,
    wrote: bool,
}

impl Session for CollectOnceSession {
    fn begin(&mut self, input: u64, _ctx: &mut Ctx<'_>) -> Action {
        Action::Invoke(Op::Write {
            reg: self.base.offset(self.pid.index() as u64),
            value: input,
        })
    }

    fn poll(&mut self, response: Response, _ctx: &mut Ctx<'_>) -> Action {
        if !self.wrote {
            self.wrote = true;
            Action::Invoke(Op::Collect {
                base: self.base,
                len: self.n,
            })
        } else {
            let seen = response.expect_collect();
            let first = seen
                .into_iter()
                .flatten()
                .next()
                .expect("own write visible");
            Action::Halt(Decision::continue_with(first))
        }
    }
}

impl ObjectSpec for CollectOnceSpec {
    fn instantiate(&self, ctx: &mut InstantiateCtx<'_>) -> Arc<dyn DecidingObject> {
        Arc::new(CollectOnce {
            base: ctx.alloc.alloc_block(ctx.n as u64),
            n: ctx.n as u64,
        })
    }

    fn name(&self) -> String {
        "collect-once".to_string()
    }
}

/// Halts immediately with a private fair coin flip (0 or 1) — exercises the
/// per-process coin streams without touching memory.
#[derive(Debug, Clone, Copy)]
pub struct CoinFlipSpec;

struct CoinFlip;

impl DecidingObject for CoinFlip {
    fn session(&self, _pid: ProcessId) -> Box<dyn Session + Send> {
        Box::new(CoinFlipSession)
    }
}

struct CoinFlipSession;

impl Session for CoinFlipSession {
    fn begin(&mut self, _input: u64, ctx: &mut Ctx<'_>) -> Action {
        let bit = u64::from(ctx.rng.random_bool(0.5));
        Action::Halt(Decision::continue_with(bit))
    }

    fn poll(&mut self, _response: Response, _ctx: &mut Ctx<'_>) -> Action {
        unreachable!("coin flip halts at begin")
    }
}

impl ObjectSpec for CoinFlipSpec {
    fn instantiate(&self, _ctx: &mut InstantiateCtx<'_>) -> Arc<dyn DecidingObject> {
        Arc::new(CoinFlip)
    }

    fn name(&self) -> String {
        "coin-flip".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_model::BlockAlloc;

    #[test]
    fn specs_have_names() {
        assert_eq!(WriteThenReadSpec.name(), "write-then-read");
        assert_eq!(SpinSpec.name(), "spin");
        assert_eq!(CollectOnceSpec.name(), "collect-once");
        assert_eq!(CoinFlipSpec.name(), "coin-flip");
    }

    #[test]
    fn collect_once_allocates_n_registers() {
        let mut alloc = BlockAlloc::new();
        let _obj = CollectOnceSpec.instantiate(&mut InstantiateCtx::new(4, &mut alloc));
        assert_eq!(alloc.allocated(), 4);
    }
}
