//! The execution engine: interleaving semantics driven by an adversary.

use std::error::Error;
use std::fmt;

use mc_model::{
    Action, BlockAlloc, Ctx, Decision, InstantiateCtx, ObjectSpec, Op, OpKind, ProcessId, Response,
    Session, Value,
};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::adversary::{Adversary, Capability, PendingInfo, View};
use crate::memory::Memory;
use crate::metrics::WorkMetrics;
use crate::trace::{Event, Trace};

/// Engine configuration: model variants and safety limits.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Abort the run with [`RunError::StepLimitExceeded`] after this many
    /// operations. Randomized wait-free protocols terminate only with
    /// probability 1, so a limit distinguishes "astronomically unlucky"
    /// from "livelocked by a bug".
    pub max_steps: u64,
    /// Allow [`Op::Collect`] (the cheap-snapshot model of §6.2 item 4).
    pub cheap_collect: bool,
    /// Let processes observe whether their probabilistic write took effect
    /// (footnote 2 of the paper: saves 2 operations in the conciliator).
    pub detect_prob_writes: bool,
    /// Record a full [`Trace`] of the execution.
    pub record_trace: bool,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            max_steps: 10_000_000,
            cheap_collect: false,
            detect_prob_writes: false,
            record_trace: false,
        }
    }
}

impl EngineConfig {
    /// Returns the config with the step limit replaced.
    pub fn with_max_steps(mut self, max_steps: u64) -> EngineConfig {
        self.max_steps = max_steps;
        self
    }

    /// Returns the config with cheap collects enabled.
    pub fn with_cheap_collect(mut self) -> EngineConfig {
        self.cheap_collect = true;
        self
    }

    /// Returns the config with detectable probabilistic writes enabled.
    pub fn with_detectable_prob_writes(mut self) -> EngineConfig {
        self.detect_prob_writes = true;
        self
    }

    /// Returns the config with trace recording enabled.
    pub fn with_trace(mut self) -> EngineConfig {
        self.record_trace = true;
        self
    }
}

/// Why a run could not be completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The configured step limit was reached before every process halted.
    StepLimitExceeded {
        /// The limit that was hit.
        limit: u64,
    },
    /// A session issued [`Op::Collect`] but the engine is not configured for
    /// the cheap-collect model.
    CollectDisallowed {
        /// The offending process.
        pid: ProcessId,
    },
    /// The adversary chose a process that is not live.
    AdversaryChoseInvalid {
        /// The invalid choice.
        pid: ProcessId,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::StepLimitExceeded { limit } => {
                write!(f, "execution exceeded the step limit of {limit}")
            }
            RunError::CollectDisallowed { pid } => write!(
                f,
                "{pid} issued a collect but the engine is not in the cheap-collect model"
            ),
            RunError::AdversaryChoseInvalid { pid } => {
                write!(f, "adversary chose non-live process {pid}")
            }
        }
    }
}

impl Error for RunError {}

/// The result of a completed execution.
#[derive(Debug)]
pub struct EngineOutput {
    /// Each process's deciding-object output, indexed by pid.
    pub outputs: Vec<Decision>,
    /// Operation counts.
    pub metrics: WorkMetrics,
    /// The recorded trace, if enabled.
    pub trace: Option<Trace>,
}

/// The result of a run stopped before every process halted (crash-failure
/// executions).
#[derive(Debug)]
pub struct PartialOutput {
    /// Each process's output, `None` for processes that never halted
    /// (crashed or still running at the stop point).
    pub decisions: Vec<Option<Decision>>,
    /// Operation counts (crashed processes' operations included).
    pub metrics: WorkMetrics,
    /// The recorded trace, if enabled.
    pub trace: Option<Trace>,
}

struct Proc {
    session: Box<dyn Session + Send>,
    rng: SmallRng,
    pending: Option<Op>,
    decision: Option<Decision>,
    ops_done: u64,
}

/// Executes one instance of a deciding object under an adversary, one
/// operation at a time.
///
/// Most callers want [`harness::run_object`](crate::harness::run_object);
/// the engine type itself is exposed for step-level tests and tools.
pub struct Engine<'a> {
    memory: Memory,
    alloc: BlockAlloc,
    procs: Vec<Proc>,
    adversary: &'a mut dyn Adversary,
    config: EngineConfig,
    step: u64,
    metrics: WorkMetrics,
    trace: Option<Trace>,
    pending_buf: Vec<PendingInfo>,
}

impl<'a> Engine<'a> {
    /// Instantiates `spec` for `inputs.len()` processes and starts every
    /// session (establishing each process's first pending operation).
    ///
    /// `seed` derives every process's private coin stream; the adversary
    /// carries its own randomness.
    pub fn new(
        spec: &dyn ObjectSpec,
        inputs: &[Value],
        adversary: &'a mut dyn Adversary,
        seed: u64,
        config: EngineConfig,
    ) -> Engine<'a> {
        let n = inputs.len();
        let mut alloc = BlockAlloc::new();
        let object = spec.instantiate(&mut InstantiateCtx::new(n, &mut alloc));
        let mut metrics = WorkMetrics::new(n);
        let trace = config.record_trace.then(Trace::new);
        let mut procs = Vec::with_capacity(n);
        for (ix, &input) in inputs.iter().enumerate() {
            let pid = ProcessId(ix);
            let mut rng = SmallRng::seed_from_u64(mix_seed(seed, ix as u64));
            let mut session = object.session(pid);
            let action = {
                let mut ctx = Ctx::new(&mut rng, &mut alloc);
                session.begin(input, &mut ctx)
            };
            let (pending, decision) = match action {
                Action::Invoke(op) => (Some(op), None),
                Action::Halt(d) => (None, Some(d)),
            };
            procs.push(Proc {
                session,
                rng,
                pending,
                decision,
                ops_done: 0,
            });
        }
        metrics.registers_allocated = alloc.allocated();
        Engine {
            memory: Memory::new(),
            alloc,
            procs,
            adversary,
            config,
            step: 0,
            metrics,
            trace,
            pending_buf: Vec::with_capacity(n),
        }
    }

    /// True once every process has halted.
    pub fn is_complete(&self) -> bool {
        self.procs.iter().all(|p| p.decision.is_some())
    }

    /// The register file (for inspection in tests and tools).
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Executes a single scheduling step: the adversary picks a live
    /// process, its pending operation applies, and its session advances.
    ///
    /// # Errors
    ///
    /// Returns a [`RunError`] if the adversary misbehaves, a session uses a
    /// disallowed operation, or the step limit is hit.
    ///
    /// # Panics
    ///
    /// Panics if called when [`is_complete`](Engine::is_complete) is true.
    pub fn step(&mut self) -> Result<(), RunError> {
        if self.step >= self.config.max_steps {
            return Err(RunError::StepLimitExceeded {
                limit: self.config.max_steps,
            });
        }
        let pid = self.choose_process()?;
        let ix = pid.index();
        let op = self.procs[ix]
            .pending
            .take()
            .expect("chosen process has a pending op");

        // Apply the operation to memory.
        let (response, observed) = match &op {
            Op::Read(reg) => {
                let contents = self.memory.read(*reg);
                (Response::Read(contents), contents)
            }
            Op::Write { reg, value } => {
                self.memory.write(*reg, *value);
                (Response::Write, None)
            }
            Op::ProbWrite { reg, value, prob } => {
                // The adversary committed to this operation before the coin
                // resolves — the probabilistic-write guarantee.
                let performed = self.procs[ix].rng.random_bool(prob.get());
                if performed {
                    self.memory.write(*reg, *value);
                }
                self.metrics.prob_writes_attempted += 1;
                if performed {
                    self.metrics.prob_writes_performed += 1;
                }
                let visible = self.config.detect_prob_writes.then_some(performed);
                (
                    Response::ProbWrite { performed: visible },
                    Some(u64::from(performed)),
                )
            }
            Op::Collect { base, len } => {
                if !self.config.cheap_collect {
                    return Err(RunError::CollectDisallowed { pid });
                }
                (Response::Collect(self.memory.collect(*base, *len)), None)
            }
        };

        if let Some(trace) = &mut self.trace {
            trace.push(Event {
                step: self.step,
                pid,
                op: op.clone(),
                observed,
            });
        }

        self.procs[ix].ops_done += 1;
        self.metrics.per_process[ix] += 1;
        self.step += 1;

        // Advance the session.
        let proc = &mut self.procs[ix];
        let action = {
            let mut ctx = Ctx::new(&mut proc.rng, &mut self.alloc);
            proc.session.poll(response, &mut ctx)
        };
        match action {
            Action::Invoke(next) => proc.pending = Some(next),
            Action::Halt(d) => proc.decision = Some(d),
        }
        self.metrics.registers_allocated = self.alloc.allocated();
        Ok(())
    }

    /// Current per-process decisions: `None` for processes still running.
    pub fn decisions(&self) -> Vec<Option<Decision>> {
        self.procs.iter().map(|p| p.decision).collect()
    }

    /// Runs until `stop` returns true (checked before each step) or every
    /// process has halted, and returns the partial outputs.
    ///
    /// This is the crash-failure entry point: with a
    /// [`CrashingAdversary`](crate::adversary::CrashingAdversary) that stops
    /// scheduling some processes, pass a `stop` that waits only for the
    /// survivors — wait-freedom means they halt regardless.
    ///
    /// # Errors
    ///
    /// Propagates any [`RunError`] from [`step`](Engine::step).
    pub fn run_until(
        mut self,
        mut stop: impl FnMut(&Engine<'_>) -> bool,
    ) -> Result<PartialOutput, RunError> {
        while !self.is_complete() && !stop(&self) {
            self.step()?;
        }
        let mut metrics = self.metrics;
        metrics.registers_touched = self.memory.touched() as u64;
        Ok(PartialOutput {
            decisions: self.procs.iter().map(|p| p.decision).collect(),
            metrics,
            trace: self.trace,
        })
    }

    /// Runs to completion and returns the outputs and metrics.
    ///
    /// # Errors
    ///
    /// Propagates any [`RunError`] from [`step`](Engine::step).
    pub fn run(mut self) -> Result<EngineOutput, RunError> {
        while !self.is_complete() {
            self.step()?;
        }
        let mut metrics = self.metrics;
        metrics.registers_touched = self.memory.touched() as u64;
        Ok(EngineOutput {
            outputs: self
                .procs
                .into_iter()
                .map(|p| p.decision.expect("complete run"))
                .collect(),
            metrics,
            trace: self.trace,
        })
    }

    fn choose_process(&mut self) -> Result<ProcessId, RunError> {
        let capability = self.adversary.capability();
        self.pending_buf.clear();
        for (ix, proc) in self.procs.iter().enumerate() {
            let Some(op) = &proc.pending else { continue };
            self.pending_buf.push(observe_pending(
                ProcessId(ix),
                proc.ops_done,
                op,
                capability,
            ));
        }
        debug_assert!(!self.pending_buf.is_empty(), "no live processes");
        let memory = match capability {
            Capability::LocationOblivious | Capability::Adaptive => Some(&self.memory),
            Capability::Oblivious | Capability::ValueOblivious => None,
        };
        let view = View {
            step: self.step,
            n: self.procs.len(),
            pending: &self.pending_buf,
            memory,
        };
        let pid = self.adversary.choose(&view);
        let live = self
            .procs
            .get(pid.index())
            .map(|p| p.pending.is_some())
            .unwrap_or(false);
        if !live {
            return Err(RunError::AdversaryChoseInvalid { pid });
        }
        Ok(pid)
    }
}

/// Builds the view of one pending operation permitted to `capability`.
///
/// Public so other execution substrates (notably `mc-lab`'s cooperative
/// scheduler over the real runtime) present adversaries with views built by
/// the same censoring rules the engine uses.
pub fn observe_pending(
    pid: ProcessId,
    ops_done: u64,
    op: &Op,
    capability: Capability,
) -> PendingInfo {
    let mut info = PendingInfo {
        pid,
        ops_done,
        kind: None,
        reg: None,
        value: None,
        prob: None,
    };
    match capability {
        Capability::Oblivious => {}
        Capability::ValueOblivious => {
            info.kind = Some(op.kind());
            info.reg = Some(op.register());
        }
        Capability::LocationOblivious => {
            info.kind = Some(op.kind());
            // Write locations are indistinguishable to this class.
            if matches!(op.kind(), OpKind::Read | OpKind::Collect) {
                info.reg = Some(op.register());
            }
            info.value = op.written_value();
            if let Op::ProbWrite { prob, .. } = op {
                info.prob = Some(prob.get());
            }
        }
        Capability::Adaptive => {
            info.kind = Some(op.kind());
            info.reg = Some(op.register());
            info.value = op.written_value();
            if let Op::ProbWrite { prob, .. } = op {
                info.prob = Some(prob.get());
            }
        }
    }
    info
}

/// Derives process `pid`'s coin-stream seed from the run seed.
///
/// Public so other substrates seed per-process rngs identically; coin
/// streams then line up operation-for-operation across sim and lab runs.
pub fn mix_seed(seed: u64, pid: u64) -> u64 {
    // SplitMix64-style mixing keeps per-process streams decorrelated even
    // for adjacent seeds.
    let mut z = seed ^ pid.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::RoundRobin;
    use crate::testutil::{CollectOnceSpec, WriteThenReadSpec};

    #[test]
    fn write_then_read_completes_under_round_robin() {
        let mut adv = RoundRobin::new();
        let engine = Engine::new(
            &WriteThenReadSpec,
            &[5, 6],
            &mut adv,
            1,
            EngineConfig::default(),
        );
        let out = engine.run().unwrap();
        assert_eq!(out.outputs.len(), 2);
        // Round-robin: p0 writes, p1 writes, p0 reads (sees p1's or own
        // write on register 0: last write wins, so both read 6? p0 and p1
        // write to the same register; the last write was p1's).
        assert_eq!(out.metrics.total_work(), 4);
        assert_eq!(out.metrics.individual_work(), 2);
    }

    #[test]
    fn step_limit_enforced() {
        let mut adv = RoundRobin::new();
        let engine = Engine::new(
            &crate::testutil::SpinSpec,
            &[0],
            &mut adv,
            1,
            EngineConfig::default().with_max_steps(10),
        );
        let err = engine.run().unwrap_err();
        assert_eq!(err, RunError::StepLimitExceeded { limit: 10 });
    }

    #[test]
    fn collect_rejected_outside_cheap_collect_model() {
        let mut adv = RoundRobin::new();
        let engine = Engine::new(
            &CollectOnceSpec,
            &[1, 2],
            &mut adv,
            1,
            EngineConfig::default(),
        );
        let err = engine.run().unwrap_err();
        assert!(matches!(err, RunError::CollectDisallowed { .. }));
    }

    #[test]
    fn collect_allowed_in_cheap_collect_model() {
        let mut adv = RoundRobin::new();
        let engine = Engine::new(
            &CollectOnceSpec,
            &[1, 2],
            &mut adv,
            1,
            EngineConfig::default().with_cheap_collect(),
        );
        let out = engine.run().unwrap();
        assert_eq!(out.outputs.len(), 2);
    }

    #[test]
    fn trace_recording() {
        let mut adv = RoundRobin::new();
        let engine = Engine::new(
            &WriteThenReadSpec,
            &[5, 6],
            &mut adv,
            1,
            EngineConfig::default().with_trace(),
        );
        let out = engine.run().unwrap();
        let trace = out.trace.unwrap();
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.events()[0].pid, ProcessId(0));
    }

    #[test]
    fn identical_seeds_reproduce_runs() {
        let run = |seed| {
            let mut adv = RoundRobin::new();
            Engine::new(
                &crate::testutil::CoinFlipSpec,
                &[0, 0, 0, 0],
                &mut adv,
                seed,
                EngineConfig::default(),
            )
            .run()
            .unwrap()
            .outputs
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn different_process_streams_differ() {
        // With CoinFlipSpec every process halts with its own coin flip; over
        // 16 processes the flips should not all match (probability 2^-15 per
        // seed; seed chosen to pass).
        let mut adv = RoundRobin::new();
        let out = Engine::new(
            &crate::testutil::CoinFlipSpec,
            &[0; 16],
            &mut adv,
            3,
            EngineConfig::default(),
        )
        .run()
        .unwrap();
        let values: Vec<u64> = out.outputs.iter().map(|d| d.value()).collect();
        assert!(values.iter().any(|&v| v != values[0]), "{values:?}");
    }
}
