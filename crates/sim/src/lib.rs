//! Deterministic simulator of asynchronous shared memory with adversary
//! schedulers.
//!
//! This crate is the substrate on which the paper's model (§2) runs:
//!
//! * [`Memory`] — a flat array of atomic multiwriter registers with
//!   interleaving semantics (each read returns the last value written).
//! * [`Engine`] — executes a set of [`Session`](mc_model::Session) state
//!   machines, one pending operation per live process, with the interleaving
//!   chosen by an [`Adversary`].
//! * [`adversary`] — the adversary-class hierarchy of §2.1 (oblivious,
//!   value-oblivious, location-oblivious, adaptive), concrete schedulers,
//!   and attack adversaries that try to break the paper's algorithms.
//! * [`sched`] — the noisy and priority schedulers of §4.2.
//! * [`harness`] — one-call run + verification helpers and multi-trial
//!   statistics used by tests and experiments.
//!
//! # Determinism
//!
//! A run is a pure function of `(spec, inputs, adversary, seed, config)`.
//! Each process owns a private seeded RNG stream (its *local coins*), the
//! adversary owns its own stream, and the engine serializes all operations,
//! so identical arguments reproduce identical executions — including every
//! probabilistic-write coin.
//!
//! # Example
//!
//! Run a trivial one-register object under a round-robin scheduler:
//!
//! ```
//! use mc_sim::{adversary::RoundRobin, harness, EngineConfig};
//! use mc_sim::testutil::WriteThenReadSpec;
//!
//! let spec = WriteThenReadSpec;
//! let outcome = harness::run_object(
//!     &spec,
//!     &[10, 20, 30],
//!     &mut RoundRobin::new(),
//!     42,
//!     &EngineConfig::default(),
//! )
//! .unwrap();
//! assert_eq!(outcome.outputs.len(), 3);
//! // Every process read some process's write: validity holds.
//! mc_model::properties::check_validity(&[10, 20, 30], &outcome.outputs).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
mod engine;
pub mod harness;
mod memory;
mod metrics;
pub mod observe;
pub mod sched;
pub mod synth;
pub mod testutil;
mod trace;

pub use adversary::{Adversary, Capability, PendingInfo, View};
pub use engine::{mix_seed, observe_pending, Engine, EngineConfig, RunError};
pub use harness::{run_object, RunOutcome};
pub use memory::Memory;
pub use metrics::WorkMetrics;
pub use trace::{Event, Trace};
