//! Work accounting for the paper's complexity measures.

use std::fmt;

/// Operation counts for a completed execution, matching the paper's cost
/// model (§2): every shared-memory operation costs 1; local computation and
/// local coin flips cost 0. A probabilistic write costs 1 whether or not the
/// write takes effect.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkMetrics {
    /// Operations executed by each process (indexed by pid).
    pub per_process: Vec<u64>,
    /// Probabilistic writes attempted (subset of the operation counts).
    pub prob_writes_attempted: u64,
    /// Probabilistic writes whose coin succeeded.
    pub prob_writes_performed: u64,
    /// Registers ever allocated by the run's objects.
    pub registers_allocated: u64,
    /// Registers ever materialized (touched) in memory.
    pub registers_touched: u64,
}

impl WorkMetrics {
    /// Creates zeroed metrics for `n` processes.
    pub fn new(n: usize) -> WorkMetrics {
        WorkMetrics {
            per_process: vec![0; n],
            ..WorkMetrics::default()
        }
    }

    /// Total work `T_total`: operations summed over all processes.
    pub fn total_work(&self) -> u64 {
        self.per_process.iter().sum()
    }

    /// Individual work `T_individual`: the maximum operations executed by
    /// any single process.
    pub fn individual_work(&self) -> u64 {
        self.per_process.iter().copied().max().unwrap_or(0)
    }
}

impl fmt::Display for WorkMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total={} individual={} probwrites={}/{} registers={}/{}",
            self.total_work(),
            self.individual_work(),
            self.prob_writes_performed,
            self.prob_writes_attempted,
            self.registers_allocated,
            self.registers_touched,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_measures() {
        let m = WorkMetrics {
            per_process: vec![3, 7, 5],
            ..WorkMetrics::new(3)
        };
        assert_eq!(m.total_work(), 15);
        assert_eq!(m.individual_work(), 7);
    }

    #[test]
    fn empty_metrics() {
        let m = WorkMetrics::new(0);
        assert_eq!(m.total_work(), 0);
        assert_eq!(m.individual_work(), 0);
    }

    #[test]
    fn display_is_compact() {
        let mut m = WorkMetrics::new(2);
        m.per_process = vec![1, 2];
        m.prob_writes_attempted = 4;
        m.prob_writes_performed = 1;
        m.registers_allocated = 3;
        m.registers_touched = 2;
        assert_eq!(
            m.to_string(),
            "total=3 individual=2 probwrites=1/4 registers=3/2"
        );
    }
}
