//! Optional execution traces for debugging and analysis.

use std::fmt;

use mc_model::{Op, ProcessId, RegContents};

/// One executed operation in an execution trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Global step index (0-based).
    pub step: u64,
    /// The process that took the step.
    pub pid: ProcessId,
    /// The operation that executed.
    pub op: Op,
    /// For reads: the value returned. For probabilistic writes: whether the
    /// write took effect, encoded as `Some(1)`/`Some(0)`. Otherwise `None`.
    pub observed: RegContents,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>6}] {} {}", self.step, self.pid, self.op)?;
        if let Some(v) = self.observed {
            write!(f, " -> {v}")?;
        }
        Ok(())
    }
}

/// A recorded execution: the sequence of operations as applied.
///
/// Traces are recorded only when
/// [`EngineConfig::record_trace`](crate::EngineConfig) is set; they make
/// failures reproducible and adversary behaviour inspectable, at the cost of
/// an allocation per step.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    events: Vec<Event>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: Event) {
        self.events.push(event);
    }

    /// The recorded events, in execution order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events taken by one process, in order.
    pub fn by_process(&self, pid: ProcessId) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.pid == pid)
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_model::RegisterId;

    #[test]
    fn trace_records_and_filters() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push(Event {
            step: 0,
            pid: ProcessId(0),
            op: Op::Read(RegisterId(0)),
            observed: Some(4),
        });
        t.push(Event {
            step: 1,
            pid: ProcessId(1),
            op: Op::Write {
                reg: RegisterId(0),
                value: 5,
            },
            observed: None,
        });
        assert_eq!(t.len(), 2);
        assert_eq!(t.by_process(ProcessId(1)).count(), 1);
        let rendered = t.to_string();
        assert!(rendered.contains("p0 read(r0) -> 4"), "{rendered}");
    }
}
