//! The register file.

use mc_model::{RegContents, RegisterId, Value};

/// A flat array of atomic multiwriter registers, all initially ⊥.
///
/// The engine serializes operations, so atomicity is by construction: each
/// read returns the last value written to that register. Memory grows on
/// demand as registers are allocated and touched, which is what lets
/// *unbounded* constructions (§4.1.1) run in space proportional to the
/// registers actually used.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    cells: Vec<RegContents>,
}

impl Memory {
    /// Creates an empty register file.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Reads register `reg`; unallocated/untouched registers read as ⊥.
    #[inline]
    pub fn read(&self, reg: RegisterId) -> RegContents {
        self.cells.get(index(reg)).copied().flatten()
    }

    /// Writes `value` to register `reg`, growing the file if needed.
    #[inline]
    pub fn write(&mut self, reg: RegisterId, value: Value) {
        let ix = index(reg);
        if ix >= self.cells.len() {
            self.cells.resize(ix + 1, None);
        }
        self.cells[ix] = Some(value);
    }

    /// Reads a contiguous block of `len` registers starting at `base`.
    pub fn collect(&self, base: RegisterId, len: u64) -> Vec<RegContents> {
        (0..len).map(|d| self.read(base.offset(d))).collect()
    }

    /// Clears register `reg` back to ⊥: a subsequent read observes an
    /// initial register, exactly as if it had never been written. Pool
    /// recycling support — the materialized high-water mark is unchanged.
    pub fn clear_register(&mut self, reg: RegisterId) {
        if let Some(cell) = self.cells.get_mut(index(reg)) {
            *cell = None;
        }
    }

    /// Number of register slots currently materialized (a high-water mark of
    /// the highest register ever written, plus one).
    pub fn touched(&self) -> usize {
        self.cells.len()
    }

    /// Iterates over the materialized registers and their contents.
    pub fn iter(&self) -> impl Iterator<Item = (RegisterId, RegContents)> + '_ {
        self.cells
            .iter()
            .enumerate()
            .map(|(ix, c)| (RegisterId(ix as u64), *c))
    }

    /// Returns how many materialized registers hold a non-⊥ value.
    pub fn written_count(&self) -> usize {
        self.cells.iter().filter(|c| c.is_some()).count()
    }
}

#[inline]
fn index(reg: RegisterId) -> usize {
    usize::try_from(reg.raw()).expect("register id exceeds addressable memory")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_registers_read_bottom() {
        let m = Memory::new();
        assert_eq!(m.read(RegisterId(0)), None);
        assert_eq!(m.read(RegisterId(1 << 20)), None);
        assert_eq!(m.touched(), 0);
    }

    #[test]
    fn read_after_write() {
        let mut m = Memory::new();
        m.write(RegisterId(3), 7);
        assert_eq!(m.read(RegisterId(3)), Some(7));
        assert_eq!(m.read(RegisterId(2)), None);
        assert_eq!(m.touched(), 4);
        assert_eq!(m.written_count(), 1);
    }

    #[test]
    fn last_write_wins() {
        let mut m = Memory::new();
        m.write(RegisterId(0), 1);
        m.write(RegisterId(0), 2);
        assert_eq!(m.read(RegisterId(0)), Some(2));
    }

    #[test]
    fn cleared_register_reads_bottom_again() {
        let mut m = Memory::new();
        m.write(RegisterId(2), 9);
        m.clear_register(RegisterId(2));
        assert_eq!(m.read(RegisterId(2)), None);
        assert_eq!(m.touched(), 3, "high-water mark is preserved");
        // Clearing a never-materialized register is a no-op.
        m.clear_register(RegisterId(100));
        assert_eq!(m.touched(), 3);
    }

    #[test]
    fn collect_reads_block() {
        let mut m = Memory::new();
        m.write(RegisterId(1), 5);
        assert_eq!(m.collect(RegisterId(0), 3), vec![None, Some(5), None]);
    }

    #[test]
    fn iter_walks_materialized_cells() {
        let mut m = Memory::new();
        m.write(RegisterId(1), 9);
        let cells: Vec<_> = m.iter().collect();
        assert_eq!(cells, vec![(RegisterId(0), None), (RegisterId(1), Some(9))]);
    }
}
