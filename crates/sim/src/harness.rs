//! One-call execution and multi-trial statistics.

use mc_model::{Decision, ObjectSpec, Value};

use crate::adversary::Adversary;
use crate::engine::{Engine, EngineConfig, RunError};
use crate::metrics::WorkMetrics;
use crate::trace::Trace;

/// The outputs and accounting of one completed run.
#[derive(Debug)]
pub struct RunOutcome {
    /// Per-process outputs, indexed by pid.
    pub outputs: Vec<Decision>,
    /// Operation counts.
    pub metrics: WorkMetrics,
    /// The execution trace, if recording was enabled.
    pub trace: Option<Trace>,
}

impl RunOutcome {
    /// The output values, stripped of decision bits.
    pub fn values(&self) -> Vec<Value> {
        self.outputs.iter().map(|d| d.value()).collect()
    }

    /// True if all processes returned the same value.
    pub fn agreed(&self) -> bool {
        mc_model::properties::check_agreement(&self.outputs).is_ok()
    }
}

/// Instantiates `spec` for `inputs.len()` processes and runs it to
/// completion under `adversary`.
///
/// # Errors
///
/// Propagates [`RunError`] from the engine (step-limit, misbehaving
/// adversary, or model violations).
///
/// # Example
///
/// ```
/// use mc_sim::{adversary::RandomScheduler, harness::run_object, EngineConfig};
/// use mc_sim::testutil::WriteThenReadSpec;
///
/// let outcome = run_object(
///     &WriteThenReadSpec,
///     &[1, 2, 3, 4],
///     &mut RandomScheduler::new(99),
///     7,
///     &EngineConfig::default(),
/// )
/// .unwrap();
/// assert_eq!(outcome.metrics.total_work(), 8); // 2 ops per process
/// ```
pub fn run_object(
    spec: &dyn ObjectSpec,
    inputs: &[Value],
    adversary: &mut dyn Adversary,
    seed: u64,
    config: &EngineConfig,
) -> Result<RunOutcome, RunError> {
    let out = Engine::new(spec, inputs, adversary, seed, config.clone()).run()?;
    Ok(RunOutcome {
        outputs: out.outputs,
        metrics: out.metrics,
        trace: out.trace,
    })
}

/// The outcome of a run with crash failures: survivors' outputs plus
/// accounting.
#[derive(Debug)]
pub struct CrashRunOutcome {
    /// Per-process outputs: `None` for processes that crashed before
    /// halting (a doomed process that finished before its crash step still
    /// has an output).
    pub decisions: Vec<Option<Decision>>,
    /// The process ids scheduled to crash, sorted.
    pub crashed: Vec<mc_model::ProcessId>,
    /// Operation counts (crashed processes' pre-crash work included).
    pub metrics: WorkMetrics,
    /// The execution trace, if recording was enabled.
    pub trace: Option<Trace>,
}

impl CrashRunOutcome {
    /// The survivors' outputs, in pid order.
    pub fn survivor_outputs(&self) -> Vec<Decision> {
        self.decisions.iter().copied().flatten().collect()
    }
}

/// Runs `spec` while crashing the given processes at the given global
/// steps: a crashed process is never scheduled again, and the run stops
/// once every *surviving* process has halted.
///
/// This is how the model expresses crash failures (§1: randomized consensus
/// "can even tolerate up to n − 1 crash failures"); wait-freedom means the
/// survivors' outputs exist and must satisfy the object's properties among
/// themselves.
///
/// # Errors
///
/// Propagates [`RunError`] from the engine.
///
/// # Panics
///
/// Panics if a crash names a process outside `0..inputs.len()`.
pub fn run_with_crashes(
    spec: &dyn ObjectSpec,
    inputs: &[Value],
    adversary: impl Adversary,
    crashes: &[(mc_model::ProcessId, u64)],
    seed: u64,
    config: &EngineConfig,
) -> Result<CrashRunOutcome, RunError> {
    for (pid, _) in crashes {
        assert!(
            pid.index() < inputs.len(),
            "crash names unknown process {pid}"
        );
    }
    let mut wrapped = crate::adversary::CrashingAdversary::new(adversary, crashes.iter().copied());
    let doomed = wrapped.doomed();
    let engine = Engine::new(spec, inputs, &mut wrapped, seed, config.clone());
    let output = engine.run_until(|engine| {
        engine
            .decisions()
            .iter()
            .enumerate()
            .all(|(ix, d)| d.is_some() || doomed.contains(&mc_model::ProcessId(ix)))
    })?;
    Ok(CrashRunOutcome {
        decisions: output.decisions,
        crashed: doomed,
        metrics: output.metrics,
        trace: output.trace,
    })
}

/// Aggregate statistics over repeated independent runs.
#[derive(Debug, Clone, Default)]
pub struct TrialStats {
    /// Number of completed trials.
    pub trials: usize,
    /// Trials in which all outputs agreed on one value.
    pub agreements: usize,
    /// Trials in which every process had decision bit 1.
    pub all_decided: usize,
    /// Total work of each trial.
    pub total_work: Vec<u64>,
    /// Individual work of each trial.
    pub individual_work: Vec<u64>,
    /// Registers allocated in each trial.
    pub registers: Vec<u64>,
}

impl TrialStats {
    /// Fraction of trials that reached agreement.
    pub fn agreement_rate(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        self.agreements as f64 / self.trials as f64
    }

    /// Mean total work per trial.
    pub fn mean_total_work(&self) -> f64 {
        mean(&self.total_work)
    }

    /// Mean individual work per trial.
    pub fn mean_individual_work(&self) -> f64 {
        mean(&self.individual_work)
    }

    /// Worst individual work seen in any trial.
    pub fn max_individual_work(&self) -> u64 {
        self.individual_work.iter().copied().max().unwrap_or(0)
    }

    /// Worst total work seen in any trial.
    pub fn max_total_work(&self) -> u64 {
        self.total_work.iter().copied().max().unwrap_or(0)
    }
}

fn mean(xs: &[u64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().map(|&x| x as f64).sum::<f64>() / xs.len() as f64
}

/// Runs `trials` independent executions, deriving per-trial seeds from
/// `base_seed`, with a fresh adversary per trial.
///
/// `inputs_fn(trial)` supplies the input vector for each trial and
/// `adversary_fn(trial_seed)` builds the adversary (so stateful attackers
/// start fresh).
///
/// # Errors
///
/// Stops at the first trial that fails with a [`RunError`].
///
/// # Example
///
/// ```
/// use mc_sim::{adversary::RandomScheduler, harness, EngineConfig};
/// use mc_sim::testutil::WriteThenReadSpec;
///
/// let stats = harness::run_trials(
///     &WriteThenReadSpec,
///     50,
///     7,
///     &EngineConfig::default(),
///     |_| harness::inputs::alternating(4, 2),
///     |seed| Box::new(RandomScheduler::new(seed)),
/// )
/// .unwrap();
/// assert_eq!(stats.trials, 50);
/// assert_eq!(stats.mean_total_work(), 8.0); // 2 ops × 4 processes
/// ```
pub fn run_trials(
    spec: &dyn ObjectSpec,
    trials: usize,
    base_seed: u64,
    config: &EngineConfig,
    mut inputs_fn: impl FnMut(usize) -> Vec<Value>,
    mut adversary_fn: impl FnMut(u64) -> Box<dyn Adversary>,
) -> Result<TrialStats, RunError> {
    let mut stats = TrialStats::default();
    for trial in 0..trials {
        let seed = base_seed.wrapping_add((trial as u64).wrapping_mul(0x9E37_79B9));
        let inputs = inputs_fn(trial);
        let mut adversary = adversary_fn(seed);
        let outcome = run_object(spec, &inputs, adversary.as_mut(), seed, config)?;
        stats.trials += 1;
        if outcome.agreed() {
            stats.agreements += 1;
        }
        if outcome.outputs.iter().all(|d| d.is_decided()) {
            stats.all_decided += 1;
        }
        stats.total_work.push(outcome.metrics.total_work());
        stats
            .individual_work
            .push(outcome.metrics.individual_work());
        stats.registers.push(outcome.metrics.registers_allocated);
    }
    Ok(stats)
}

/// Standard input-vector generators for experiments.
pub mod inputs {
    use mc_model::Value;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    /// All `n` processes propose the same value.
    pub fn unanimous(n: usize, v: Value) -> Vec<Value> {
        vec![v; n]
    }

    /// Process `i` proposes `i mod m` — the maximally split input vector.
    pub fn alternating(n: usize, m: Value) -> Vec<Value> {
        (0..n).map(|i| i as Value % m.max(1)).collect()
    }

    /// Uniformly random proposals from `0..m`.
    pub fn random(n: usize, m: Value, seed: u64) -> Vec<Value> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| rng.random_range(0..m.max(1))).collect()
    }

    /// One process proposes `1`, everyone else proposes `0` — the lone
    /// dissenter workload.
    pub fn dissenter(n: usize) -> Vec<Value> {
        let mut v = vec![0; n];
        if let Some(last) = v.last_mut() {
            *last = 1;
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{RandomScheduler, RoundRobin};
    use crate::testutil::WriteThenReadSpec;

    #[test]
    fn run_object_reports_work() {
        let outcome = run_object(
            &WriteThenReadSpec,
            &[1, 2],
            &mut RoundRobin::new(),
            0,
            &EngineConfig::default(),
        )
        .unwrap();
        assert_eq!(outcome.metrics.total_work(), 4);
        assert_eq!(outcome.values().len(), 2);
    }

    #[test]
    fn trials_accumulate() {
        let stats = run_trials(
            &WriteThenReadSpec,
            20,
            99,
            &EngineConfig::default(),
            |_| inputs::alternating(4, 2),
            |seed| Box::new(RandomScheduler::new(seed)),
        )
        .unwrap();
        assert_eq!(stats.trials, 20);
        assert_eq!(stats.mean_total_work(), 8.0);
        assert_eq!(stats.max_individual_work(), 2);
        // write-then-read never decides.
        assert_eq!(stats.all_decided, 0);
    }

    #[test]
    fn input_generators() {
        assert_eq!(inputs::unanimous(3, 9), vec![9, 9, 9]);
        assert_eq!(inputs::alternating(5, 2), vec![0, 1, 0, 1, 0]);
        assert_eq!(inputs::dissenter(4), vec![0, 0, 0, 1]);
        let r = inputs::random(8, 3, 5);
        assert_eq!(r.len(), 8);
        assert!(r.iter().all(|&v| v < 3));
        assert_eq!(r, inputs::random(8, 3, 5));
    }

    #[test]
    fn agreement_rate_of_empty_stats_is_zero() {
        assert_eq!(TrialStats::default().agreement_rate(), 0.0);
    }
}
