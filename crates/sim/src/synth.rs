//! Adversary synthesis: searching for bad oblivious schedules.
//!
//! The attack adversaries in [`adversary`](crate::adversary) are
//! hand-written strategies. This module *searches* for attacks instead: a
//! randomized local search over fixed (oblivious) schedules, minimizing the
//! measured agreement rate of a deciding object. The result is an empirical
//! upper bound on the worst-case agreement probability achievable by an
//! oblivious adversary — complementing the analytic lower bound of
//! Theorem 7 and the exact small-`n` values from `mc-check`.
//!
//! Evaluation uses common random numbers (the same per-trial seeds for
//! every candidate schedule), so comparisons between candidates are paired
//! and low-variance; the final schedule is re-scored on a held-out seed set
//! to control for overfitting the search seeds.

use mc_model::{ObjectSpec, ProcessId, Value};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::adversary::FixedOrder;
use crate::engine::EngineConfig;
use crate::harness;

/// Search parameters for [`synthesize_schedule_attack`].
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Length of the schedule being optimized (it cycles thereafter).
    pub horizon: usize,
    /// Runs per candidate evaluation (paired across candidates).
    pub eval_trials: usize,
    /// Local-search iterations (one mutation each).
    pub iterations: usize,
    /// RNG seed for the search (mutations and trial seeds).
    pub seed: u64,
    /// Engine configuration for evaluations.
    pub engine: EngineConfig,
}

impl Default for SynthConfig {
    fn default() -> SynthConfig {
        SynthConfig {
            horizon: 48,
            eval_trials: 200,
            iterations: 150,
            seed: 0x5EED,
            engine: EngineConfig::default(),
        }
    }
}

/// Outcome of a schedule search.
#[derive(Debug, Clone)]
pub struct SynthResult {
    /// The best (lowest-agreement) schedule found.
    pub schedule: Vec<ProcessId>,
    /// Its agreement rate on the search seed set.
    pub search_rate: f64,
    /// Its agreement rate on a held-out seed set (the honest number).
    pub holdout_rate: f64,
    /// Agreement rate of the round-robin baseline on the held-out set.
    pub round_robin_rate: f64,
    /// Candidate evaluations performed.
    pub evaluations: usize,
}

/// Searches for an oblivious schedule minimizing the agreement rate of
/// `spec` on the given inputs.
///
/// # Panics
///
/// Panics if `inputs` is empty or the config's horizon/trials/iterations
/// are zero.
///
/// # Example
///
/// ```
/// use mc_sim::synth::{synthesize_schedule_attack, SynthConfig};
/// use mc_sim::testutil::WriteThenReadSpec;
///
/// let config = SynthConfig { horizon: 8, eval_trials: 20, iterations: 5, ..SynthConfig::default() };
/// let result = synthesize_schedule_attack(&WriteThenReadSpec, &[0, 1, 0, 1], &config);
/// assert!(result.holdout_rate <= 1.0);
/// assert_eq!(result.schedule.len(), 8);
/// ```
pub fn synthesize_schedule_attack(
    spec: &dyn ObjectSpec,
    inputs: &[Value],
    config: &SynthConfig,
) -> SynthResult {
    assert!(!inputs.is_empty(), "need at least one process");
    assert!(config.horizon > 0, "horizon must be positive");
    assert!(config.eval_trials > 0, "eval_trials must be positive");
    assert!(config.iterations > 0, "iterations must be positive");
    let n = inputs.len();
    let mut rng = SmallRng::seed_from_u64(config.seed);

    let evaluate = |schedule: &[ProcessId], seed_base: u64| -> f64 {
        let stats = harness::run_trials(
            spec,
            config.eval_trials,
            seed_base,
            &config.engine,
            |_| inputs.to_vec(),
            |_| Box::new(FixedOrder::new(schedule.to_vec())),
        )
        .expect("synthesis evaluations must complete");
        stats.agreement_rate()
    };

    // Start from round-robin over the horizon.
    let mut best: Vec<ProcessId> = (0..config.horizon).map(|i| ProcessId(i % n)).collect();
    let search_seeds = config.seed ^ 0xA5A5_0000;
    let mut best_rate = evaluate(&best, search_seeds);
    let mut evaluations = 1;

    for _ in 0..config.iterations {
        let mut candidate = best.clone();
        match rng.random_range(0..3u32) {
            // Point mutation: retarget one slot.
            0 => {
                let ix = rng.random_range(0..candidate.len());
                candidate[ix] = ProcessId(rng.random_range(0..n));
            }
            // Swap two slots.
            1 => {
                let a = rng.random_range(0..candidate.len());
                let b = rng.random_range(0..candidate.len());
                candidate.swap(a, b);
            }
            // Burst mutation: clone one process across a short window
            // (bursts are what break first-mover races).
            _ => {
                let start = rng.random_range(0..candidate.len());
                let len = rng.random_range(1..=(candidate.len() / 4).max(1));
                let pid = ProcessId(rng.random_range(0..n));
                for d in 0..len {
                    let ix = (start + d) % candidate.len();
                    candidate[ix] = pid;
                }
            }
        }
        let rate = evaluate(&candidate, search_seeds);
        evaluations += 1;
        if rate <= best_rate {
            best = candidate;
            best_rate = rate;
        }
    }

    // Honest scoring on held-out seeds.
    let holdout_seeds = config.seed ^ 0x0000_5A5A;
    let holdout_rate = evaluate(&best, holdout_seeds);
    let round_robin: Vec<ProcessId> = (0..config.horizon).map(|i| ProcessId(i % n)).collect();
    let round_robin_rate = evaluate(&round_robin, holdout_seeds);

    SynthResult {
        schedule: best,
        search_rate: best_rate,
        holdout_rate,
        round_robin_rate,
        evaluations: evaluations + 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::WriteThenReadSpec;

    #[test]
    fn synthesis_runs_and_reports() {
        let config = SynthConfig {
            horizon: 8,
            eval_trials: 20,
            iterations: 10,
            ..SynthConfig::default()
        };
        let result = synthesize_schedule_attack(&WriteThenReadSpec, &[0, 1, 0, 1], &config);
        assert_eq!(result.schedule.len(), 8);
        assert!(result.evaluations >= 12);
        assert!((0.0..=1.0).contains(&result.holdout_rate));
        assert!(result.schedule.iter().all(|p| p.index() < 4));
    }

    #[test]
    fn search_never_regresses_on_search_seeds() {
        // The accepted schedule's search-rate is the minimum seen, so it
        // cannot exceed the round-robin starting point on the same seeds.
        let config = SynthConfig {
            horizon: 8,
            eval_trials: 30,
            iterations: 15,
            ..SynthConfig::default()
        };
        let spec = WriteThenReadSpec;
        let result = synthesize_schedule_attack(&spec, &[0, 1], &config);
        let start: Vec<ProcessId> = (0..8).map(|i| ProcessId(i % 2)).collect();
        let stats = harness::run_trials(
            &spec,
            config.eval_trials,
            config.seed ^ 0xA5A5_0000,
            &config.engine,
            |_| vec![0, 1],
            |_| Box::new(FixedOrder::new(start.clone())),
        )
        .unwrap();
        assert!(result.search_rate <= stats.agreement_rate() + 1e-9);
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn zero_horizon_rejected() {
        let config = SynthConfig {
            horizon: 0,
            ..SynthConfig::default()
        };
        synthesize_schedule_attack(&WriteThenReadSpec, &[0, 1], &config);
    }
}
