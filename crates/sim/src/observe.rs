//! Export simulator results through the shared telemetry event schema.
//!
//! The simulator already produces exact accounting ([`WorkMetrics`]) and,
//! optionally, a step-level [`Trace`]. This module replays both through a
//! [`Recorder`], so a simulated run and a real-thread run emit the *same*
//! event vocabulary (`op`, `work_summary`, …) and downstream tooling —
//! JSONL files, aggregators, dashboards — cannot tell the substrates
//! apart.
//!
//! Replay is exact by construction: the engine counts one operation per
//! scheduling step and the trace records one event per step, so
//! aggregating the replayed `op` events reproduces `WorkMetrics`
//! per-process counts bit-for-bit (a property test in `crates/sim/tests`
//! holds this invariant).

use mc_model::OpKind;
use mc_telemetry::{OpClass, Recorder, TelemetryEvent};

use crate::metrics::WorkMetrics;
use crate::trace::Trace;

/// Maps the simulator's operation kind onto the telemetry vocabulary.
pub fn op_class(kind: OpKind) -> OpClass {
    match kind {
        OpKind::Read => OpClass::Read,
        OpKind::Write => OpClass::Write,
        OpKind::ProbWrite => OpClass::ProbWrite,
        OpKind::Collect => OpClass::Collect,
    }
}

/// Replays every traced operation as a [`TelemetryEvent::Op`]; returns the
/// number of events emitted.
///
/// For probabilistic writes the trace's `observed` field (1 = the coin
/// landed) becomes the event's `performed` flag; every other operation is
/// unconditionally `performed`.
pub fn replay_trace(trace: &Trace, recorder: &dyn Recorder) -> u64 {
    if !recorder.enabled() {
        return 0;
    }
    let mut emitted = 0;
    for event in trace.events() {
        let kind = event.op.kind();
        let performed = match kind {
            OpKind::ProbWrite => event.observed == Some(1),
            _ => true,
        };
        recorder.record(&TelemetryEvent::Op {
            step: event.step,
            pid: event.pid.index() as u64,
            class: op_class(kind),
            performed,
        });
        emitted += 1;
    }
    emitted
}

/// Emits one [`TelemetryEvent::WorkSummary`] mirroring `metrics`.
pub fn emit_summary(seed: u64, metrics: &WorkMetrics, recorder: &dyn Recorder) {
    if !recorder.enabled() {
        return;
    }
    recorder.record(&TelemetryEvent::WorkSummary {
        seed,
        total_work: metrics.total_work(),
        individual_work: metrics.individual_work(),
        prob_writes_attempted: metrics.prob_writes_attempted,
        prob_writes_performed: metrics.prob_writes_performed,
        registers_allocated: metrics.registers_allocated,
        registers_touched: metrics.registers_touched,
        per_process: metrics.per_process.clone(),
    });
}

/// Exports a completed run: the trace (when recorded) followed by the work
/// summary. Returns the number of `op` events emitted.
pub fn export_run(
    seed: u64,
    trace: Option<&Trace>,
    metrics: &WorkMetrics,
    recorder: &dyn Recorder,
) -> u64 {
    let emitted = trace.map_or(0, |t| replay_trace(t, recorder));
    emit_summary(seed, metrics, recorder);
    emitted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Event;
    use mc_model::{Op, ProcessId, RegisterId};
    use mc_telemetry::{AggregatingRecorder, NoopRecorder};

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        t.push(Event {
            step: 0,
            pid: ProcessId(0),
            op: Op::Read(RegisterId(0)),
            observed: Some(3),
        });
        t.push(Event {
            step: 1,
            pid: ProcessId(1),
            op: Op::ProbWrite {
                reg: RegisterId(0),
                value: 9,
                prob: mc_model::Probability::new(0.5).unwrap(),
            },
            observed: Some(1),
        });
        t.push(Event {
            step: 2,
            pid: ProcessId(1),
            op: Op::ProbWrite {
                reg: RegisterId(0),
                value: 9,
                prob: mc_model::Probability::new(0.5).unwrap(),
            },
            observed: Some(0),
        });
        t
    }

    #[test]
    fn replay_counts_match_the_trace() {
        let agg = AggregatingRecorder::new();
        let emitted = replay_trace(&sample_trace(), &agg);
        assert_eq!(emitted, 3);
        assert_eq!(agg.ops(), 3);
        assert_eq!(agg.per_process_ops(), vec![1, 2]);
        assert_eq!(agg.prob_writes_attempted(), 2);
        assert_eq!(agg.prob_writes_performed(), 1);
    }

    #[test]
    fn summary_round_trips_metrics() {
        let mut metrics = WorkMetrics::new(2);
        metrics.per_process = vec![4, 6];
        metrics.prob_writes_attempted = 3;
        metrics.prob_writes_performed = 2;
        metrics.registers_allocated = 5;
        metrics.registers_touched = 4;
        let agg = AggregatingRecorder::new();
        emit_summary(11, &metrics, &agg);
        assert_eq!(agg.events(), 1);
    }

    #[test]
    fn disabled_recorder_skips_all_work() {
        assert_eq!(replay_trace(&sample_trace(), &NoopRecorder), 0);
        assert_eq!(
            export_run(
                0,
                Some(&sample_trace()),
                &WorkMetrics::new(1),
                &NoopRecorder
            ),
            0
        );
    }
}
