//! Restricted schedulers under which ratifier-only consensus terminates
//! (§4.2): the noisy scheduler of Aspnes's *Fast deterministic consensus in
//! a noisy environment* and priority-based scheduling à la Ramamurthy–Moir–
//! Anderson.

use mc_model::ProcessId;
use rand::rngs::SmallRng;
use rand::{Rng, RngExt, SeedableRng};

use crate::adversary::{Adversary, Capability, View};

/// The noisy scheduler: each process has a planned step cadence fixed in
/// advance, perturbed by random timing errors that accumulate over time.
///
/// Process `p` takes its `i`-th step at virtual time
/// `t_p(i) = Σ_{j≤i} (rate_p + ε_{p,j})` with i.i.d. noise
/// `ε ~ N(0, σ²)`; steps execute in virtual-time order. Over time the
/// accumulated noise drives some process ahead of all others, which is what
/// makes the ratifier-only protocol `R₁; R₂; …` terminate (§4.2).
#[derive(Debug)]
pub struct NoisyScheduler {
    rates: Vec<f64>,
    sigma: f64,
    next_time: Vec<f64>,
    rng: SmallRng,
}

impl NoisyScheduler {
    /// Creates a noisy scheduler for `n` processes with unit cadence and
    /// noise standard deviation `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn new(n: usize, sigma: f64, seed: u64) -> NoisyScheduler {
        NoisyScheduler::with_rates(vec![1.0; n], sigma, seed)
    }

    /// Creates a noisy scheduler with per-process cadences (`rates[p]` is
    /// the planned gap between consecutive steps of process `p`).
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative/not finite or any rate is
    /// non-positive/not finite.
    pub fn with_rates(rates: Vec<f64>, sigma: f64, seed: u64) -> NoisyScheduler {
        assert!(sigma.is_finite() && sigma >= 0.0, "sigma must be ≥ 0");
        assert!(
            rates.iter().all(|r| r.is_finite() && *r > 0.0),
            "rates must be positive"
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        // Stagger initial offsets uniformly within one cadence so processes
        // don't start in lockstep.
        let next_time = rates
            .iter()
            .map(|r| r * rng.random_range(0.0..1.0))
            .collect();
        NoisyScheduler {
            rates,
            sigma,
            next_time,
            rng,
        }
    }

    fn gaussian(rng: &mut SmallRng) -> f64 {
        // Box–Muller; rand_distr is outside the approved dependency set.
        loop {
            let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.random_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            if z.is_finite() {
                return z;
            }
        }
    }
}

impl Adversary for NoisyScheduler {
    fn capability(&self) -> Capability {
        // The schedule depends only on pre-chosen timings plus noise, never
        // on the execution: this is an oblivious adversary.
        Capability::Oblivious
    }

    fn choose(&mut self, view: &View<'_>) -> ProcessId {
        debug_assert!(!view.pending.is_empty());
        let choice = view
            .pending
            .iter()
            .map(|p| p.pid)
            .min_by(|a, b| {
                self.next_time[a.index()]
                    .partial_cmp(&self.next_time[b.index()])
                    .expect("virtual times are finite")
            })
            .expect("non-empty");
        let ix = choice.index();
        let noise = self.sigma * Self::gaussian(&mut self.rng);
        // Accumulate: errors compound over time rather than averaging out,
        // matching the noisy-scheduler model. Keep increments positive so
        // virtual time advances.
        let increment = (self.rates[ix] + noise).max(self.rates[ix] * 1e-3);
        self.next_time[ix] += increment;
        choice
    }

    fn name(&self) -> String {
        format!("noisy(sigma={})", self.sigma)
    }
}

/// Priority-based scheduling: each process has a fixed unique priority and
/// every step is taken by the highest-priority live process.
///
/// Under this scheduler the highest-priority process runs solo until it
/// halts, so it reaches some ratifier alone and the ratifier-only protocol
/// decides (§4.2).
#[derive(Debug, Clone)]
pub struct PriorityScheduler {
    /// `priority[p]` — larger runs first.
    priority: Vec<u64>,
}

impl PriorityScheduler {
    /// Creates a scheduler where lower process ids have higher priority.
    pub fn descending(n: usize) -> PriorityScheduler {
        PriorityScheduler {
            priority: (0..n).map(|p| (n - p) as u64).collect(),
        }
    }

    /// Creates a scheduler with explicit priorities (`priority[p]`, larger
    /// runs first). Ties break toward smaller pid.
    pub fn with_priorities(priority: Vec<u64>) -> PriorityScheduler {
        PriorityScheduler { priority }
    }

    /// Creates a scheduler with a random priority permutation.
    pub fn shuffled(n: usize, seed: u64) -> PriorityScheduler {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut prio: Vec<u64> = (1..=n as u64).collect();
        // Fisher–Yates.
        for i in (1..prio.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            prio.swap(i, j);
        }
        PriorityScheduler { priority: prio }
    }
}

impl Adversary for PriorityScheduler {
    fn capability(&self) -> Capability {
        Capability::Oblivious
    }

    fn choose(&mut self, view: &View<'_>) -> ProcessId {
        debug_assert!(!view.pending.is_empty());
        view.pending
            .iter()
            .map(|p| p.pid)
            .max_by_key(|p| (self.priority[p.index()], std::cmp::Reverse(p.index())))
            .expect("non-empty")
    }

    fn name(&self) -> String {
        "priority".to_string()
    }
}

/// Quantum-based scheduling (à la Anderson–Jain–Ott / Anderson–Moir, cited
/// in §2.1): each scheduled process runs for a *quantum* of `q` consecutive
/// operations before the scheduler may switch, cycling round-robin.
///
/// If the quantum covers a whole ratifier pass (`q ≥ 4` for the binary
/// ratifier), the first process to enter a fresh ratifier completes it
/// before anyone with a conflicting value arrives, so the ratifier-only
/// protocol `R₁; R₂; …` decides — the quantum analogue of §4.2's priority
/// argument. With `q = 1` this degenerates to lockstep round-robin, which
/// livelocks ratifier-only chains.
#[derive(Debug, Clone)]
pub struct QuantumScheduler {
    quantum: u64,
    cursor: usize,
    remaining: u64,
    current: Option<ProcessId>,
}

impl QuantumScheduler {
    /// Creates a quantum scheduler giving each process `quantum`
    /// consecutive operations.
    ///
    /// # Panics
    ///
    /// Panics if `quantum == 0`.
    pub fn new(quantum: u64) -> QuantumScheduler {
        assert!(quantum > 0, "quantum must be positive");
        QuantumScheduler {
            quantum,
            cursor: 0,
            remaining: 0,
            current: None,
        }
    }
}

impl Adversary for QuantumScheduler {
    fn capability(&self) -> Capability {
        Capability::Oblivious
    }

    fn choose(&mut self, view: &View<'_>) -> ProcessId {
        debug_assert!(!view.pending.is_empty());
        // Continue the current quantum while its owner is live.
        if self.remaining > 0 {
            if let Some(pid) = self.current {
                if view.pending.iter().any(|p| p.pid == pid) {
                    self.remaining -= 1;
                    return pid;
                }
            }
        }
        // Start a fresh quantum on the next live process in cyclic order.
        let choice = view
            .pending
            .iter()
            .map(|p| p.pid)
            .find(|p| p.index() >= self.cursor)
            .unwrap_or(view.pending[0].pid);
        self.cursor = (choice.index() + 1) % view.n;
        self.current = Some(choice);
        self.remaining = self.quantum - 1;
        choice
    }

    fn name(&self) -> String {
        format!("quantum({})", self.quantum)
    }
}

/// PCT-style probabilistic scheduling (Burckhardt et al., *A Randomized
/// Scheduler with Probabilistic Guarantees of Finding Bugs*): each process
/// gets a random distinct priority, the highest-priority live process runs,
/// and at `d − 1` random *change points* over a step horizon the currently
/// running process is demoted below everyone else.
///
/// For a program with `k` steps and a bug of depth `d`, one PCT run hits the
/// bug with probability ≥ `1/(n·k^(d−1))` — far better than naive random
/// walks for ordering bugs. Here it serves as a seeded schedule generator
/// for the conformance lab: high-probability coverage of rare interleavings
/// with full reproducibility.
#[derive(Debug)]
pub struct PctScheduler {
    rng: SmallRng,
    depth: usize,
    horizon: u64,
    /// Lazily initialized from the first view's `n`; larger runs first.
    priorities: Vec<u64>,
    /// Remaining change points, as step numbers in decreasing order.
    change_points: Vec<u64>,
    /// Counter handing out ever-lower priorities at change points.
    demote_next: u64,
}

impl PctScheduler {
    /// Creates a PCT scheduler of depth `d` over a `horizon`-step run.
    ///
    /// `d = 1` is pure random-priority scheduling (no preemption points);
    /// each extra unit of depth adds one mid-run demotion.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0` or `horizon == 0`.
    pub fn new(depth: usize, horizon: u64, seed: u64) -> PctScheduler {
        assert!(depth > 0, "depth must be positive");
        assert!(horizon > 0, "horizon must be positive");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut change_points: Vec<u64> =
            (0..depth - 1).map(|_| rng.next_u64() % horizon).collect();
        change_points.sort_unstable_by(|a, b| b.cmp(a));
        PctScheduler {
            rng,
            depth,
            horizon,
            priorities: Vec::new(),
            change_points,
            demote_next: 0,
        }
    }

    fn ensure_priorities(&mut self, n: usize) {
        if !self.priorities.is_empty() {
            return;
        }
        // Distinct random priorities above the demotion range: a Fisher–Yates
        // permutation of `horizon+1 ..= horizon+n`.
        let base = self.horizon;
        let mut prio: Vec<u64> = (1..=n as u64).map(|p| base + p).collect();
        for i in (1..prio.len()).rev() {
            let j = (self.rng.next_u64() % (i as u64 + 1)) as usize;
            prio.swap(i, j);
        }
        self.priorities = prio;
        // Demotions hand out priorities below every initial one, decreasing
        // so later demotions sink lower still.
        self.demote_next = base;
    }
}

impl Adversary for PctScheduler {
    fn capability(&self) -> Capability {
        // Priorities and change points are fixed up front from the seed —
        // the schedule never reads the execution.
        Capability::Oblivious
    }

    fn choose(&mut self, view: &View<'_>) -> ProcessId {
        debug_assert!(!view.pending.is_empty());
        self.ensure_priorities(view.n);
        let top = view
            .pending
            .iter()
            .map(|p| p.pid)
            .max_by_key(|p| (self.priorities[p.index()], std::cmp::Reverse(p.index())))
            .expect("non-empty");
        if self.change_points.last().is_some_and(|&cp| view.step >= cp) {
            self.change_points.pop();
            self.priorities[top.index()] = self.demote_next;
            self.demote_next = self.demote_next.saturating_sub(1);
            // Re-pick under the new priority table.
            return view
                .pending
                .iter()
                .map(|p| p.pid)
                .max_by_key(|p| (self.priorities[p.index()], std::cmp::Reverse(p.index())))
                .expect("non-empty");
        }
        top
    }

    fn name(&self) -> String {
        format!("pct(d={})", self.depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::PendingInfo;

    fn pending(pids: &[usize]) -> Vec<PendingInfo> {
        pids.iter()
            .map(|&p| PendingInfo {
                pid: ProcessId(p),
                ops_done: 0,
                kind: None,
                reg: None,
                value: None,
                prob: None,
            })
            .collect()
    }

    fn view<'a>(n: usize, p: &'a [PendingInfo]) -> View<'a> {
        View {
            step: 0,
            n,
            pending: p,
            memory: None,
        }
    }

    #[test]
    fn priority_always_picks_top_live() {
        let mut sched = PriorityScheduler::descending(3);
        let p = pending(&[0, 1, 2]);
        assert_eq!(sched.choose(&view(3, &p)), ProcessId(0));
        let p = pending(&[1, 2]);
        assert_eq!(sched.choose(&view(3, &p)), ProcessId(1));
    }

    #[test]
    fn priority_with_explicit_table() {
        let mut sched = PriorityScheduler::with_priorities(vec![1, 9, 5]);
        let p = pending(&[0, 1, 2]);
        assert_eq!(sched.choose(&view(3, &p)), ProcessId(1));
    }

    #[test]
    fn noiseless_scheduler_is_nearly_fair() {
        let mut sched = NoisyScheduler::new(3, 0.0, 11);
        let p = pending(&[0, 1, 2]);
        let v = view(3, &p);
        let mut counts = [0usize; 3];
        for _ in 0..300 {
            counts[sched.choose(&v).index()] += 1;
        }
        for &c in &counts {
            assert!((95..=105).contains(&c), "counts: {counts:?}");
        }
    }

    #[test]
    fn noisy_scheduler_eventually_diverges() {
        // With large noise, step counts should become visibly unequal over a
        // long horizon — the property §4.2's termination argument relies on.
        let mut sched = NoisyScheduler::new(2, 0.8, 5);
        let p = pending(&[0, 1]);
        let v = view(2, &p);
        let mut counts = [0i64; 2];
        for _ in 0..10_000 {
            counts[sched.choose(&v).index()] += 1;
        }
        assert!(
            (counts[0] - counts[1]).abs() > 20,
            "expected drift, got {counts:?}"
        );
    }

    #[test]
    fn shuffled_priorities_are_a_permutation() {
        let sched = PriorityScheduler::shuffled(10, 3);
        let mut prio = sched.priority.clone();
        prio.sort_unstable();
        assert_eq!(prio, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn negative_sigma_rejected() {
        NoisyScheduler::new(2, -1.0, 0);
    }

    #[test]
    fn quantum_scheduler_runs_bursts() {
        let mut sched = QuantumScheduler::new(3);
        let p = pending(&[0, 1]);
        let v = view(2, &p);
        let picks: Vec<usize> = (0..8).map(|_| sched.choose(&v).index()).collect();
        assert_eq!(picks, vec![0, 0, 0, 1, 1, 1, 0, 0]);
    }

    #[test]
    fn quantum_scheduler_skips_halted_mid_quantum() {
        let mut sched = QuantumScheduler::new(4);
        let both = pending(&[0, 1]);
        let v_both = view(2, &both);
        assert_eq!(sched.choose(&v_both).index(), 0);
        // p0 halts; the rest of its quantum must pass to p1.
        let only1 = pending(&[1]);
        let v_only1 = view(2, &only1);
        assert_eq!(sched.choose(&v_only1).index(), 1);
    }

    #[test]
    #[should_panic(expected = "quantum must be positive")]
    fn zero_quantum_rejected() {
        QuantumScheduler::new(0);
    }

    #[test]
    fn pct_depth_one_is_fixed_priority() {
        // No change points: the same process runs whenever it is live.
        let mut sched = PctScheduler::new(1, 100, 4);
        let p = pending(&[0, 1, 2]);
        let v = view(3, &p);
        let first = sched.choose(&v);
        for _ in 0..20 {
            assert_eq!(sched.choose(&v), first);
        }
    }

    #[test]
    fn pct_demotes_at_change_points() {
        // Depth 4 over a tiny horizon forces demotions early; with 2 live
        // processes each demotion flips who runs, so both must appear.
        let mut sched = PctScheduler::new(4, 4, 9);
        let p = pending(&[0, 1]);
        let mut seen = [false; 2];
        for step in 0..4 {
            let v = View {
                step,
                n: 2,
                pending: &p,
                memory: None,
            };
            seen[sched.choose(&v).index()] = true;
        }
        assert_eq!(seen, [true, true]);
    }

    #[test]
    fn pct_is_reproducible() {
        let picks = |seed| {
            let mut sched = PctScheduler::new(3, 50, seed);
            let p = pending(&[0, 1, 2, 3]);
            (0..50u64)
                .map(|step| {
                    let v = View {
                        step,
                        n: 4,
                        pending: &p,
                        memory: None,
                    };
                    sched.choose(&v).index()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(picks(7), picks(7));
        assert_ne!(picks(7), picks(8));
    }

    #[test]
    #[should_panic(expected = "depth must be positive")]
    fn pct_zero_depth_rejected() {
        PctScheduler::new(0, 10, 0);
    }
}
