//! Crash failures: an adversary wrapper that permanently stops scheduling
//! chosen processes.
//!
//! In the asynchronous model a crash is indistinguishable from never being
//! scheduled again, so crash failures are an adversary behaviour, not an
//! engine mechanism. Wait-freedom — the property all the paper's protocols
//! have — means every *surviving* process still terminates, with up to
//! `n − 1` crashes.

use std::collections::HashMap;

use mc_model::ProcessId;

use super::{Adversary, Capability, View};

/// Wraps any adversary and crashes the given processes at the given global
/// steps: from that step on, the process is never scheduled again.
///
/// # Example
///
/// ```
/// use mc_model::ProcessId;
/// use mc_sim::{harness::run_with_crashes, adversary::RoundRobin, EngineConfig};
/// use mc_sim::testutil::WriteThenReadSpec;
///
/// // p0 crashes before taking a single step; p1 still finishes.
/// let outcome = run_with_crashes(
///     &WriteThenReadSpec,
///     &[5, 9],
///     RoundRobin::new(),
///     &[(ProcessId(0), 0)],
///     1,
///     &EngineConfig::default(),
/// )
/// .unwrap();
/// assert!(outcome.decisions[0].is_none());
/// assert_eq!(outcome.survivor_outputs().len(), 1);
/// ```
#[derive(Debug)]
pub struct CrashingAdversary<A> {
    inner: A,
    crash_at: HashMap<ProcessId, u64>,
}

impl<A: Adversary> CrashingAdversary<A> {
    /// Wraps `inner`; each `(pid, step)` pair crashes `pid` at global step
    /// `step` (0 = crashed from the start).
    pub fn new(inner: A, crashes: impl IntoIterator<Item = (ProcessId, u64)>) -> Self {
        CrashingAdversary {
            inner,
            crash_at: crashes.into_iter().collect(),
        }
    }

    /// The processes this wrapper will have crashed by `step`.
    pub fn crashed_by(&self, step: u64) -> Vec<ProcessId> {
        let mut out: Vec<ProcessId> = self
            .crash_at
            .iter()
            .filter(|(_, &s)| s <= step)
            .map(|(&pid, _)| pid)
            .collect();
        out.sort_unstable();
        out
    }

    /// All processes scheduled for a crash (at any step).
    pub fn doomed(&self) -> Vec<ProcessId> {
        let mut out: Vec<ProcessId> = self.crash_at.keys().copied().collect();
        out.sort_unstable();
        out
    }
}

impl<A: Adversary> Adversary for CrashingAdversary<A> {
    fn capability(&self) -> Capability {
        self.inner.capability()
    }

    fn choose(&mut self, view: &View<'_>) -> ProcessId {
        let alive = |pid: ProcessId| {
            self.crash_at
                .get(&pid)
                .is_none_or(|&crash_step| view.step < crash_step)
        };
        let filtered: Vec<_> = view
            .pending
            .iter()
            .filter(|p| alive(p.pid))
            .cloned()
            .collect();
        assert!(
            !filtered.is_empty(),
            "all live processes are crashed; the run should have been stopped"
        );
        let inner_view = View {
            step: view.step,
            n: view.n,
            pending: &filtered,
            memory: view.memory,
        };
        self.inner.choose(&inner_view)
    }

    fn name(&self) -> String {
        format!("{}+crashes({})", self.inner.name(), self.crash_at.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{PendingInfo, RoundRobin};

    fn pending(pids: &[usize]) -> Vec<PendingInfo> {
        pids.iter()
            .map(|&p| PendingInfo {
                pid: ProcessId(p),
                ops_done: 0,
                kind: None,
                reg: None,
                value: None,
                prob: None,
            })
            .collect()
    }

    #[test]
    fn crashed_processes_are_never_chosen() {
        let mut adv =
            CrashingAdversary::new(RoundRobin::new(), [(ProcessId(0), 0), (ProcessId(2), 0)]);
        let p = pending(&[0, 1, 2]);
        let view = View {
            step: 5,
            n: 3,
            pending: &p,
            memory: None,
        };
        for _ in 0..10 {
            assert_eq!(adv.choose(&view), ProcessId(1));
        }
    }

    #[test]
    fn crashes_take_effect_at_their_step() {
        let mut adv = CrashingAdversary::new(RoundRobin::new(), [(ProcessId(0), 10)]);
        let p = pending(&[0, 1]);
        let early = View {
            step: 0,
            n: 2,
            pending: &p,
            memory: None,
        };
        assert_eq!(adv.choose(&early), ProcessId(0));
        let late = View {
            step: 10,
            n: 2,
            pending: &p,
            memory: None,
        };
        assert_eq!(adv.choose(&late), ProcessId(1));
        assert_eq!(adv.crashed_by(10), vec![ProcessId(0)]);
        assert_eq!(adv.doomed(), vec![ProcessId(0)]);
    }

    #[test]
    #[should_panic(expected = "all live processes are crashed")]
    fn all_crashed_is_a_harness_bug() {
        let mut adv = CrashingAdversary::new(RoundRobin::new(), [(ProcessId(0), 0)]);
        let p = pending(&[0]);
        let view = View {
            step: 1,
            n: 1,
            pending: &p,
            memory: None,
        };
        adv.choose(&view);
    }
}
