//! Attack adversaries: schedulers that actively try to break agreement or
//! inflate work, within their declared information class.
//!
//! These are the adversaries the paper's probability bounds are quantified
//! over; the experiments measure agreement probability *under attack* and
//! check it stays above the theorem's lower bound.

use mc_model::{OpKind, ProcessId};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use super::{Adversary, Capability, View};

/// A location-oblivious attacker against first-mover conciliators.
///
/// Strategy: while memory is empty it cycles processes so that everyone
/// accumulates failed probabilistic writes (driving the impatient schedule's
/// write probabilities up). The moment any register becomes non-⊥ — some
/// process's write won the race — it schedules every *pending probabilistic
/// write* before any read, most-impatient process first, maximizing the
/// chance that a second write lands before the winners' value is observed.
///
/// This is exactly the adversary analyzed in the proof of Theorem 7: its
/// power is limited to choosing the order of the probabilistic write
/// attempts.
#[derive(Debug, Clone, Default)]
pub struct ImpatienceExploiter {
    cursor: usize,
}

impl ImpatienceExploiter {
    /// Creates the attacker.
    pub fn new() -> ImpatienceExploiter {
        ImpatienceExploiter::default()
    }
}

impl Adversary for ImpatienceExploiter {
    fn capability(&self) -> Capability {
        Capability::LocationOblivious
    }

    fn choose(&mut self, view: &View<'_>) -> ProcessId {
        debug_assert!(!view.pending.is_empty());
        let memory_written = view.memory.map(|m| m.written_count() > 0).unwrap_or(false);
        if memory_written {
            // Fire the most-impatient pending probabilistic write first.
            if let Some(p) = view
                .pending
                .iter()
                .filter(|p| p.kind == Some(OpKind::ProbWrite))
                .max_by_key(|p| p.ops_done)
            {
                return p.pid;
            }
        }
        // Otherwise cycle fairly so write probabilities climb together.
        let choice = view
            .pending
            .iter()
            .map(|p| p.pid)
            .find(|p| p.index() >= self.cursor)
            .unwrap_or(view.pending[0].pid);
        self.cursor = (choice.index() + 1) % view.n;
        choice
    }

    fn name(&self) -> String {
        "impatience-exploiter".to_string()
    }
}

/// An adaptive attacker that tries to keep processes split between values.
///
/// Heuristic: look at the values present in memory; prefer executing a
/// pending write whose value is currently in the *minority*, so no value
/// ever dominates. Among non-writes it prefers the process that has taken
/// the fewest steps (keeping everyone in the race). This is a strong generic
/// stress for conciliators and shared coins; it cannot, by Theorem 7 /
/// Theorem 6, push agreement probability below δ.
#[derive(Debug)]
pub struct SplitKeeper {
    rng: SmallRng,
}

impl SplitKeeper {
    /// Creates the attacker with its own tie-breaking seed.
    pub fn new(seed: u64) -> SplitKeeper {
        SplitKeeper {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Counts occurrences of `value` in memory.
    fn memory_count(view: &View<'_>, value: u64) -> usize {
        view.memory
            .map(|m| m.iter().filter(|(_, c)| *c == Some(value)).count())
            .unwrap_or(0)
    }
}

impl Adversary for SplitKeeper {
    fn capability(&self) -> Capability {
        Capability::Adaptive
    }

    fn choose(&mut self, view: &View<'_>) -> ProcessId {
        debug_assert!(!view.pending.is_empty());
        // Among pending writes, pick the one whose value is rarest in memory.
        let best_write = view
            .pending
            .iter()
            .filter(|p| matches!(p.kind, Some(OpKind::Write) | Some(OpKind::ProbWrite)))
            .min_by_key(|p| {
                p.value
                    .map(|v| Self::memory_count(view, v))
                    .unwrap_or(usize::MAX)
            });
        if let Some(p) = best_write {
            return p.pid;
        }
        // No writes pending: run the least-advanced process, random ties.
        let min_ops = view
            .pending
            .iter()
            .map(|p| p.ops_done)
            .min()
            .expect("non-empty");
        let laggards: Vec<ProcessId> = view
            .pending
            .iter()
            .filter(|p| p.ops_done == min_ops)
            .map(|p| p.pid)
            .collect();
        laggards[self.rng.random_range(0..laggards.len())]
    }

    fn name(&self) -> String {
        "split-keeper".to_string()
    }
}

/// A value-oblivious attacker that starves writers.
///
/// It sees operation kinds and locations (but no values). Strategy: always
/// prefer executing reads, delaying every pending write as long as possible;
/// among writes it round-robins. Against ratifiers this maximizes the window
/// in which processes can observe stale ⊥ proposals; against conciliators it
/// stretches the race. A correct algorithm's safety properties must survive
/// it.
#[derive(Debug, Clone, Default)]
pub struct WriteBlocker {
    cursor: usize,
}

impl WriteBlocker {
    /// Creates the attacker.
    pub fn new() -> WriteBlocker {
        WriteBlocker::default()
    }
}

impl Adversary for WriteBlocker {
    fn capability(&self) -> Capability {
        Capability::ValueOblivious
    }

    fn choose(&mut self, view: &View<'_>) -> ProcessId {
        debug_assert!(!view.pending.is_empty());
        let pick = |infos: Vec<&super::PendingInfo>, cursor: usize| {
            infos
                .iter()
                .map(|p| p.pid)
                .find(|p| p.index() >= cursor)
                .unwrap_or(infos[0].pid)
        };
        let readers: Vec<_> = view
            .pending
            .iter()
            .filter(|p| matches!(p.kind, Some(OpKind::Read) | Some(OpKind::Collect)))
            .collect();
        let choice = if readers.is_empty() {
            let writers: Vec<_> = view.pending.iter().collect();
            pick(writers, self.cursor)
        } else {
            pick(readers, self.cursor)
        };
        self.cursor = (choice.index() + 1) % view.n;
        choice
    }

    fn name(&self) -> String {
        "write-blocker".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::PendingInfo;
    use crate::memory::Memory;
    use mc_model::RegisterId;

    fn info(pid: usize, ops: u64, kind: OpKind, value: Option<u64>) -> PendingInfo {
        PendingInfo {
            pid: ProcessId(pid),
            ops_done: ops,
            kind: Some(kind),
            reg: Some(RegisterId(0)),
            value,
            prob: None,
        }
    }

    #[test]
    fn exploiter_cycles_while_memory_empty() {
        let mut adv = ImpatienceExploiter::new();
        let mem = Memory::new();
        let pending = vec![
            info(0, 4, OpKind::ProbWrite, Some(1)),
            info(1, 2, OpKind::Read, None),
        ];
        let view = View {
            step: 0,
            n: 2,
            pending: &pending,
            memory: Some(&mem),
        };
        assert_eq!(adv.choose(&view), ProcessId(0));
        assert_eq!(adv.choose(&view), ProcessId(1));
    }

    #[test]
    fn exploiter_fires_most_impatient_writer_once_memory_written() {
        let mut adv = ImpatienceExploiter::new();
        let mut mem = Memory::new();
        mem.write(RegisterId(0), 9);
        let pending = vec![
            info(0, 2, OpKind::ProbWrite, Some(1)),
            info(1, 7, OpKind::ProbWrite, Some(2)),
            info(2, 9, OpKind::Read, None),
        ];
        let view = View {
            step: 0,
            n: 3,
            pending: &pending,
            memory: Some(&mem),
        };
        assert_eq!(adv.choose(&view), ProcessId(1));
    }

    #[test]
    fn split_keeper_prefers_minority_value_write() {
        let mut adv = SplitKeeper::new(0);
        let mut mem = Memory::new();
        mem.write(RegisterId(0), 1);
        mem.write(RegisterId(1), 1);
        mem.write(RegisterId(2), 2);
        let pending = vec![
            info(0, 0, OpKind::Write, Some(1)),
            info(1, 0, OpKind::Write, Some(2)),
        ];
        let view = View {
            step: 0,
            n: 2,
            pending: &pending,
            memory: Some(&mem),
        };
        // Value 2 is the minority in memory, so p1's write goes first.
        assert_eq!(adv.choose(&view), ProcessId(1));
    }

    #[test]
    fn write_blocker_prefers_reads() {
        let mut adv = WriteBlocker::new();
        let pending = vec![
            info(0, 0, OpKind::Write, None),
            info(1, 0, OpKind::Read, None),
        ];
        let view = View {
            step: 0,
            n: 2,
            pending: &pending,
            memory: None,
        };
        assert_eq!(adv.choose(&view), ProcessId(1));
    }

    #[test]
    fn write_blocker_falls_back_to_writers() {
        let mut adv = WriteBlocker::new();
        let pending = vec![info(0, 0, OpKind::Write, None)];
        let view = View {
            step: 0,
            n: 1,
            pending: &pending,
            memory: None,
        };
        assert_eq!(adv.choose(&view), ProcessId(0));
    }
}
