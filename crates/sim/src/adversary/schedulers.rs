//! Baseline (non-attacking) schedulers.

use mc_model::ProcessId;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use super::{Adversary, Capability, View};

/// The canonical oblivious adversary: processes take steps in round-robin
/// order, skipping halted processes.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    cursor: usize,
}

impl RoundRobin {
    /// Creates a round-robin scheduler starting at process 0.
    pub fn new() -> RoundRobin {
        RoundRobin::default()
    }
}

impl Adversary for RoundRobin {
    fn capability(&self) -> Capability {
        Capability::Oblivious
    }

    fn choose(&mut self, view: &View<'_>) -> ProcessId {
        debug_assert!(!view.pending.is_empty());
        // Find the first live process at or after the cursor, wrapping.
        let choice = view
            .pending
            .iter()
            .map(|p| p.pid)
            .find(|p| p.index() >= self.cursor)
            .unwrap_or(view.pending[0].pid);
        self.cursor = (choice.index() + 1) % view.n;
        choice
    }

    fn name(&self) -> String {
        "round-robin".to_string()
    }
}

/// An oblivious adversary that replays a fixed schedule, cycling through it
/// and skipping entries whose process has halted.
///
/// This realizes the textbook definition of the oblivious adversary — the
/// entire schedule is chosen before the execution begins.
#[derive(Debug, Clone)]
pub struct FixedOrder {
    schedule: Vec<ProcessId>,
    cursor: usize,
}

impl FixedOrder {
    /// Creates a scheduler cycling through `schedule`.
    ///
    /// # Panics
    ///
    /// Panics if `schedule` is empty.
    pub fn new(schedule: Vec<ProcessId>) -> FixedOrder {
        assert!(!schedule.is_empty(), "schedule must be non-empty");
        FixedOrder {
            schedule,
            cursor: 0,
        }
    }

    /// A schedule that runs each process for `burst` consecutive steps
    /// before moving to the next of `n` processes.
    ///
    /// Bursty schedules are a classic stress for first-mover algorithms: a
    /// single process races far ahead, then the rest arrive together.
    pub fn bursty(n: usize, burst: usize) -> FixedOrder {
        let schedule = (0..n)
            .flat_map(|p| std::iter::repeat_n(ProcessId(p), burst.max(1)))
            .collect();
        FixedOrder::new(schedule)
    }
}

impl Adversary for FixedOrder {
    fn capability(&self) -> Capability {
        Capability::Oblivious
    }

    fn choose(&mut self, view: &View<'_>) -> ProcessId {
        debug_assert!(!view.pending.is_empty());
        // Advance through the fixed schedule until we hit a live process.
        // Bounded by schedule length + live processes, so this terminates:
        // if a full cycle contains no live process, fall back to the first
        // live one (the fixed schedule has starved everyone it lists).
        for _ in 0..self.schedule.len() {
            let candidate = self.schedule[self.cursor];
            self.cursor = (self.cursor + 1) % self.schedule.len();
            if view.pending.iter().any(|p| p.pid == candidate) {
                return candidate;
            }
        }
        view.pending[0].pid
    }

    fn name(&self) -> String {
        "fixed-order".to_string()
    }
}

/// Replays an exact recorded schedule, one entry per step, then falls back
/// to round-robin if the run outlives the script.
///
/// Unlike [`FixedOrder`] (which cycles and skips halted processes — the
/// oblivious adversary abstraction), `ScriptedAdversary` is a *replay*
/// tool: feed it the pid sequence of a recorded
/// [`Trace`](crate::trace::Trace) to re-create that execution step for
/// step, e.g. to re-run a failing schedule under a tweaked protocol.
#[derive(Debug, Clone)]
pub struct ScriptedAdversary {
    script: Vec<ProcessId>,
    cursor: usize,
    fallback: RoundRobin,
}

impl ScriptedAdversary {
    /// Creates a replayer for the given pid sequence.
    pub fn new(script: Vec<ProcessId>) -> ScriptedAdversary {
        ScriptedAdversary {
            script,
            cursor: 0,
            fallback: RoundRobin::new(),
        }
    }

    /// Extracts the schedule from a recorded trace.
    pub fn from_trace(trace: &crate::trace::Trace) -> ScriptedAdversary {
        ScriptedAdversary::new(trace.events().iter().map(|e| e.pid).collect())
    }

    /// How many scripted steps were consumed so far.
    pub fn consumed(&self) -> usize {
        self.cursor.min(self.script.len())
    }
}

impl Adversary for ScriptedAdversary {
    fn capability(&self) -> Capability {
        Capability::Oblivious
    }

    fn choose(&mut self, view: &View<'_>) -> ProcessId {
        while self.cursor < self.script.len() {
            let pid = self.script[self.cursor];
            self.cursor += 1;
            if view.pending.iter().any(|p| p.pid == pid) {
                return pid;
            }
            // A scripted pid that already halted means the protocol under
            // replay diverged from the recording; skip and continue.
        }
        self.fallback.choose(view)
    }

    fn name(&self) -> String {
        "scripted".to_string()
    }
}

/// An oblivious adversary that picks a uniformly random live process each
/// step — the "fair" scheduler most closely matching a real SMP under load.
#[derive(Debug)]
pub struct RandomScheduler {
    rng: SmallRng,
}

impl RandomScheduler {
    /// Creates a random scheduler with its own seed.
    pub fn new(seed: u64) -> RandomScheduler {
        RandomScheduler {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Adversary for RandomScheduler {
    fn capability(&self) -> Capability {
        Capability::Oblivious
    }

    fn choose(&mut self, view: &View<'_>) -> ProcessId {
        debug_assert!(!view.pending.is_empty());
        let ix = self.rng.random_range(0..view.pending.len());
        view.pending[ix].pid
    }

    fn name(&self) -> String {
        "random".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::PendingInfo;

    fn pending(pids: &[usize]) -> Vec<PendingInfo> {
        pids.iter()
            .map(|&p| PendingInfo {
                pid: ProcessId(p),
                ops_done: 0,
                kind: None,
                reg: None,
                value: None,
                prob: None,
            })
            .collect()
    }

    fn view<'a>(n: usize, pending: &'a [PendingInfo]) -> View<'a> {
        View {
            step: 0,
            n,
            pending,
            memory: None,
        }
    }

    #[test]
    fn round_robin_cycles() {
        let mut rr = RoundRobin::new();
        let p = pending(&[0, 1, 2]);
        let v = view(3, &p);
        assert_eq!(rr.choose(&v), ProcessId(0));
        assert_eq!(rr.choose(&v), ProcessId(1));
        assert_eq!(rr.choose(&v), ProcessId(2));
        assert_eq!(rr.choose(&v), ProcessId(0));
    }

    #[test]
    fn round_robin_skips_halted() {
        let mut rr = RoundRobin::new();
        let p = pending(&[0, 2]);
        let v = view(3, &p);
        assert_eq!(rr.choose(&v), ProcessId(0));
        assert_eq!(rr.choose(&v), ProcessId(2));
        assert_eq!(rr.choose(&v), ProcessId(0));
    }

    #[test]
    fn fixed_order_replays_schedule() {
        let mut fo = FixedOrder::new(vec![ProcessId(1), ProcessId(1), ProcessId(0)]);
        let p = pending(&[0, 1]);
        let v = view(2, &p);
        assert_eq!(fo.choose(&v), ProcessId(1));
        assert_eq!(fo.choose(&v), ProcessId(1));
        assert_eq!(fo.choose(&v), ProcessId(0));
        assert_eq!(fo.choose(&v), ProcessId(1));
    }

    #[test]
    fn fixed_order_skips_halted_and_falls_back() {
        let mut fo = FixedOrder::new(vec![ProcessId(0)]);
        let p = pending(&[1]);
        let v = view(2, &p);
        // Schedule only lists p0, which has halted; falls back to a live one.
        assert_eq!(fo.choose(&v), ProcessId(1));
    }

    #[test]
    fn bursty_schedule_shape() {
        let fo = FixedOrder::bursty(2, 3);
        assert_eq!(
            fo.schedule,
            vec![
                ProcessId(0),
                ProcessId(0),
                ProcessId(0),
                ProcessId(1),
                ProcessId(1),
                ProcessId(1)
            ]
        );
    }

    #[test]
    fn scripted_adversary_replays_then_falls_back() {
        let mut adv = ScriptedAdversary::new(vec![ProcessId(1), ProcessId(1), ProcessId(0)]);
        let p = pending(&[0, 1]);
        let v = view(2, &p);
        assert_eq!(adv.choose(&v), ProcessId(1));
        assert_eq!(adv.choose(&v), ProcessId(1));
        assert_eq!(adv.choose(&v), ProcessId(0));
        assert_eq!(adv.consumed(), 3);
        // Script exhausted: round-robin fallback from process 0.
        assert_eq!(adv.choose(&v), ProcessId(0));
        assert_eq!(adv.choose(&v), ProcessId(1));
    }

    #[test]
    fn scripted_adversary_skips_halted_entries() {
        let mut adv = ScriptedAdversary::new(vec![ProcessId(0), ProcessId(0), ProcessId(1)]);
        let only1 = pending(&[1]);
        let v = view(2, &only1);
        // p0 halted in this (diverged) run: its scripted steps are skipped.
        assert_eq!(adv.choose(&v), ProcessId(1));
    }

    #[test]
    fn random_scheduler_picks_live() {
        let mut rs = RandomScheduler::new(7);
        let p = pending(&[3, 5]);
        let v = view(8, &p);
        for _ in 0..50 {
            let c = rs.choose(&v);
            assert!(c == ProcessId(3) || c == ProcessId(5));
        }
    }

    #[test]
    fn random_scheduler_is_deterministic_per_seed() {
        let p = pending(&[0, 1, 2, 3]);
        let v = view(4, &p);
        let mut a = RandomScheduler::new(9);
        let mut b = RandomScheduler::new(9);
        for _ in 0..20 {
            assert_eq!(a.choose(&v), b.choose(&v));
        }
    }
}
