//! Adversary schedulers and the information hierarchy of §2.1.
//!
//! The adversary is a function from partial executions to process ids. Its
//! *strength* is what it is allowed to observe; the engine enforces this by
//! constructing a [`View`] containing exactly the fields the adversary's
//! declared [`Capability`] permits — weaker adversaries physically cannot
//! read what they are not allowed to see.
//!
//! | Capability | sees pending op kind | op location | op value | memory |
//! |---|---|---|---|---|
//! | [`Oblivious`](Capability::Oblivious) | – | – | – | – |
//! | [`ValueOblivious`](Capability::ValueOblivious) | ✓ | ✓ | – | – |
//! | [`LocationOblivious`](Capability::LocationOblivious) | ✓ | reads only | ✓ | ✓ |
//! | [`Adaptive`](Capability::Adaptive) | ✓ | ✓ | ✓ | ✓ |
//!
//! All classes see which processes are still live and how many operations
//! each has executed — both derivable from the schedule the adversary itself
//! produced. No class ever sees local coins before they take effect; the
//! coin of a probabilistic write is resolved only after the adversary has
//! committed to scheduling it (the defining property of the
//! probabilistic-write model).

mod attackers;
mod crashes;
mod schedulers;

pub use attackers::{ImpatienceExploiter, SplitKeeper, WriteBlocker};
pub use crashes::CrashingAdversary;
pub use schedulers::{FixedOrder, RandomScheduler, RoundRobin, ScriptedAdversary};

use mc_model::{OpKind, ProcessId, RegisterId, Value};

use crate::memory::Memory;

/// How much of the execution an adversary class may observe (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Capability {
    /// Sees nothing but the set of live processes and the step count;
    /// equivalent executions are those of the same length.
    Oblivious,
    /// Sees pending operation kinds and locations, but no values and no
    /// register contents.
    ValueOblivious,
    /// Sees register contents and pending write values, but cannot
    /// distinguish pending writes to different locations. This is the class
    /// that admits probabilistic writes (Chor–Israeli–Li, Cheung).
    LocationOblivious,
    /// The strong adversary: sees everything except unflipped local coins.
    Adaptive,
}

/// What an adversary can see of one process's pending operation, filtered by
/// its capability.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingInfo {
    /// The process this operation belongs to (always visible — the adversary
    /// produced the schedule, so it knows who it has run).
    pub pid: ProcessId,
    /// Operations this process has executed so far (schedule-derivable).
    pub ops_done: u64,
    /// Pending operation kind, if the capability can distinguish kinds.
    pub kind: Option<OpKind>,
    /// Target register, if visible for this op under this capability.
    pub reg: Option<RegisterId>,
    /// Pending write value, if visible under this capability.
    pub value: Option<Value>,
    /// Probability of a pending probabilistic write, if visible.
    pub prob: Option<f64>,
}

/// The filtered snapshot handed to the adversary at each scheduling step.
#[derive(Debug)]
pub struct View<'a> {
    /// Number of operations executed so far in the whole execution.
    pub step: u64,
    /// Total number of processes in the system (live or halted).
    pub n: usize,
    /// One entry per *live* process, in process-id order.
    pub pending: &'a [PendingInfo],
    /// Register contents, for capabilities that may observe memory.
    pub memory: Option<&'a Memory>,
}

impl View<'_> {
    /// Convenience: the live process ids, in order.
    pub fn live(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.pending.iter().map(|p| p.pid)
    }
}

/// An adversary scheduler: chooses which live process's pending operation
/// executes next.
///
/// Implementations must return the pid of some process present in
/// `view.pending`; the engine rejects other choices with
/// [`RunError::AdversaryChoseInvalid`](crate::RunError).
pub trait Adversary {
    /// The information class this adversary declares; the engine builds the
    /// view accordingly.
    fn capability(&self) -> Capability;

    /// Chooses the next process to take a step.
    fn choose(&mut self, view: &View<'_>) -> ProcessId;

    /// Short name for diagnostics and experiment tables.
    fn name(&self) -> String {
        "adversary".to_string()
    }
}

impl<A: Adversary + ?Sized> Adversary for Box<A> {
    fn capability(&self) -> Capability {
        (**self).capability()
    }
    fn choose(&mut self, view: &View<'_>) -> ProcessId {
        (**self).choose(view)
    }
    fn name(&self) -> String {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_live_lists_pids() {
        let pending = vec![
            PendingInfo {
                pid: ProcessId(0),
                ops_done: 0,
                kind: None,
                reg: None,
                value: None,
                prob: None,
            },
            PendingInfo {
                pid: ProcessId(2),
                ops_done: 3,
                kind: None,
                reg: None,
                value: None,
                prob: None,
            },
        ];
        let view = View {
            step: 5,
            n: 3,
            pending: &pending,
            memory: None,
        };
        let live: Vec<_> = view.live().collect();
        assert_eq!(live, vec![ProcessId(0), ProcessId(2)]);
    }
}
