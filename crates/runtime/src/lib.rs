//! Real-thread implementations of modular consensus on std atomics.
//!
//! `mc-sim` runs the paper's algorithms in the abstract model, where
//! operation counts and adversaries are exact. This crate runs the *same
//! algorithms* as ordinary multi-threaded Rust: registers are
//! [`AtomicU64`](std::sync::atomic::AtomicU64)s, processes are threads, and
//! the scheduler is whatever your OS does.
//!
//! The probabilistic-write model's assumption — that the scheduler cannot
//! condition on the outcome of a local coin attached to a store — is the
//! Chor–Israeli–Li atomicity assumption, and it is *plausible but not
//! guaranteed* on real hardware (see §2.1 of the paper on location-oblivious
//! adversaries and page-based memory systems). In practice, an OS scheduler
//! is far weaker than even an oblivious adversary, so agreement rates
//! comfortably exceed the paper's worst-case `δ`.
//!
//! # Quickstart
//!
//! ```
//! use mc_runtime::Consensus;
//! use rand::{rngs::SmallRng, SeedableRng};
//! use std::sync::Arc;
//!
//! let consensus = Arc::new(Consensus::builder().n(4).build());
//! let mut handles = Vec::new();
//! for thread_id in 0..4u64 {
//!     let consensus = Arc::clone(&consensus);
//!     handles.push(std::thread::spawn(move || {
//!         let mut rng = SmallRng::seed_from_u64(thread_id);
//!         consensus.decide(thread_id % 2, &mut rng)
//!     }));
//! }
//! let decisions: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
//! assert!(decisions.windows(2).all(|w| w[0] == w[1]), "agreement");
//! assert!(decisions[0] <= 1, "validity");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bounded;
mod builder;
pub mod clock;
mod coin;
mod conciliator;
mod consensus;
mod derived;
mod engine;
mod error;
mod faults;
mod log;
mod ratifier;
mod register;
mod service;
mod telemetry;
mod typed;

pub use bounded::{BoundedConsensus, Fallback, LeaderFallback, DEFAULT_MAX_CONCILIATOR_ROUNDS};
pub use builder::{ConsensusBuilder, EngineBuilder};
pub use coin::{CoinConciliator, CoinKind, LocalCoin, VotingCoin, WeakSharedCoin};
pub use conciliator::{AdaptiveOptions, Conciliator, ConciliatorChoice, ImpatientConciliator};
pub use consensus::{AdaptiveConsensus, Consensus, ConsensusOptions};
pub use derived::{Election, TestAndSet};
pub use engine::{ConsensusEngine, EngineOptions};
pub use error::EngineError;
pub use faults::{FaultCounts, FaultPlan, FaultyMemory, FaultyRegister, ResetScope};
pub use log::ReplicatedLog;
pub use ratifier::AtomicRatifier;
pub use register::{AtomicMemory, AtomicRegister, SharedMemory, SharedRegister, GENERATION_0};
pub use service::{
    BackpressurePolicy, ChaosPlan, CircuitOptions, ConsensusService, DecisionHandle, RetryPolicy,
    RingHealth, ServiceBuilder, ServiceOptions, SubmitOptions, SupervisorOptions,
};
pub use telemetry::RuntimeTelemetry;
pub use typed::{TypedConsensus, ValueCode};
