//! Atomic multiwriter registers on `AtomicU64`, and the [`SharedMemory`]
//! abstraction that lets the same algorithms run on other register
//! substrates (notably `mc-lab`'s deterministically scheduled backend).
//!
//! # Generations and recycling
//!
//! Every deciding object in the paper is one-shot (§2), so a naive runtime
//! allocates registers per instance and leaks them forever. The generation
//! API makes registers recyclable without giving up one-shot semantics:
//! each register carries a *generation* tag, and a value written under an
//! earlier generation is invisible — a stale-generation read behaves
//! exactly like an initial read of a fresh register (⊥). Retiring a
//! register into a new generation ([`SharedRegister::retire_to`]) therefore
//! makes it indistinguishable from a newly allocated one, which is the
//! contract the pooled [`ConsensusEngine`](crate::ConsensusEngine) and the
//! recycled-vs-fresh lab conformance leg rely on.
//!
//! Retirement requires exclusive access (`&mut`): recycling happens only
//! *between* one-shot instances, never concurrently with operations, so
//! implementations physically clear the retired value with plain
//! (non-atomic) writes. Code that never recycles pays nothing per
//! operation — the engine-off path is a structural passthrough.

use std::sync::atomic::{AtomicU64, Ordering};

use mc_model::Probability;
use rand::{Rng, RngExt};

/// The generation fresh registers are born into.
pub const GENERATION_0: u64 = 0;

/// One shared multiwriter register as the runtime algorithms see it.
///
/// The paper's model (§2) has three operations: read, write, and the
/// probabilistic write of the Chor–Israeli–Li model — a coin flip bound
/// atomically to a store, which the scheduler cannot observe before
/// committing to the operation.
pub trait SharedRegister: Send + Sync {
    /// Reads the register: `None` is ⊥.
    ///
    /// A value written under an earlier generation than the register's
    /// current one is *not* observable: the read behaves as an initial
    /// read of a fresh register and returns `None`.
    fn read(&self) -> Option<u64>;

    /// Writes `value` under the register's current generation.
    fn write(&self, value: u64);

    /// Probabilistic write: with probability `prob` the register takes
    /// `value`. Returns whether the write landed. The coin comes from
    /// `rng` and is resolved only as part of the operation itself.
    fn prob_write(&self, value: u64, prob: Probability, rng: &mut dyn Rng) -> bool;

    /// The allocation generation this register currently belongs to.
    fn generation(&self) -> u64 {
        GENERATION_0
    }

    /// Moves the register into `generation`, invalidating every value
    /// written under an earlier generation: the next read behaves as an
    /// initial read (⊥), making the recycled register indistinguishable
    /// from a fresh allocation.
    ///
    /// Exclusive access (`&mut`) is the synchronization: one-shot objects
    /// are retired only between instances, when no operation can be in
    /// flight, so implementations clear the retired value with plain
    /// writes and need no atomics. The value must be *physically* cleared,
    /// not masked behind a separate tag a concurrent reader could observe
    /// out of step with the cell.
    ///
    /// # Panics
    ///
    /// Implementations must `debug_assert` that `generation` strictly
    /// increases — retiring backwards would resurrect stale values.
    fn retire_to(&mut self, generation: u64);
}

/// A register substrate: allocates fresh shared registers.
///
/// [`AtomicMemory`] is the zero-overhead default (plain `AtomicU64`s);
/// `mc-lab` provides an instrumented backend whose every operation is a
/// scheduling yield point. Generic runtime objects take the substrate as a
/// type parameter defaulted to `AtomicMemory`, so existing call sites pay
/// nothing.
pub trait SharedMemory: Clone + Send + Sync + 'static {
    /// The register type this substrate allocates.
    type Reg: SharedRegister;

    /// Allocates one fresh register holding ⊥, in [`GENERATION_0`].
    ///
    /// Allocation order is observable to instrumented substrates (register
    /// ids are assigned sequentially), so objects must allocate in a
    /// deterministic order — the same order the model-side objects use.
    fn alloc(&self) -> Self::Reg {
        self.alloc_in_generation(GENERATION_0)
    }

    /// Allocates one fresh register holding ⊥, tagged with `generation`.
    ///
    /// A pooling engine allocates each instance's registers in the
    /// instance's generation so that recycling the whole instance is one
    /// [`retire_to`](SharedRegister::retire_to) sweep. For substrates with
    /// no per-generation state the tag is carried by the register itself.
    fn alloc_in_generation(&self, generation: u64) -> Self::Reg;

    /// Declares every register allocated under `generation` retired.
    ///
    /// This is a bookkeeping hook for substrates that keep per-generation
    /// state (accounting, debug ledgers); the visibility change itself is
    /// enacted register-by-register via
    /// [`retire_to`](SharedRegister::retire_to), so the default is a
    /// no-op.
    fn retire_generation(&self, generation: u64) {
        let _ = generation;
    }
}

/// The default substrate: lock-free `AtomicU64` registers.
#[derive(Debug, Clone, Copy, Default)]
pub struct AtomicMemory;

impl SharedMemory for AtomicMemory {
    type Reg = AtomicRegister;

    fn alloc_in_generation(&self, generation: u64) -> AtomicRegister {
        AtomicRegister::in_generation(generation)
    }
}

/// An atomic multiwriter register holding ⊥ or a value in `0..u64::MAX`.
///
/// ⊥ is represented by the reserved word `u64::MAX`; writing that value is
/// rejected. Loads and stores use sequentially consistent ordering — the
/// paper's model is atomic registers with interleaving semantics, and SeqCst
/// is the faithful (and simplest) mapping.
///
/// # Generation recycling
///
/// The register's current generation is a plain field, mutated only under
/// `&mut` in [`retire_to`](SharedRegister::retire_to), which also
/// physically clears the value cell back to ⊥. Clearing — rather than
/// masking the stale value behind a separate generation tag — keeps every
/// operation a single atomic access: there is no (value, tag) pair a
/// concurrent reader could observe half-updated, so a torn read can never
/// surface a retired instance's value as current, and reads/writes cost
/// exactly what an unpooled register's do.
#[derive(Debug)]
pub struct AtomicRegister {
    cell: AtomicU64,
    /// The register's current generation. Plain field: mutated only via
    /// `retire_to(&mut self)`, when exclusive access rules out readers.
    generation: u64,
}

const EMPTY: u64 = u64::MAX;

impl AtomicRegister {
    /// Creates a register holding ⊥ in generation 0.
    pub fn new() -> AtomicRegister {
        AtomicRegister::in_generation(GENERATION_0)
    }

    /// Creates a register holding ⊥ in `generation`.
    pub fn in_generation(generation: u64) -> AtomicRegister {
        AtomicRegister {
            cell: AtomicU64::new(EMPTY),
            generation,
        }
    }

    /// Reads the register: `None` is ⊥. Retiring physically clears the
    /// cell, so a recycled register reads as ⊥ until its first
    /// current-generation write — exactly like a fresh register.
    #[inline]
    pub fn read(&self) -> Option<u64> {
        match self.cell.load(Ordering::SeqCst) {
            EMPTY => None,
            v => Some(v),
        }
    }

    /// Writes `value` under the current generation.
    ///
    /// # Panics
    ///
    /// Panics if `value == u64::MAX` (reserved for ⊥).
    #[inline]
    pub fn write(&self, value: u64) {
        assert_ne!(value, EMPTY, "u64::MAX is reserved for the null value");
        self.cell.store(value, Ordering::SeqCst);
    }
}

impl SharedRegister for AtomicRegister {
    fn read(&self) -> Option<u64> {
        AtomicRegister::read(self)
    }

    fn write(&self, value: u64) {
        AtomicRegister::write(self, value);
    }

    fn prob_write(&self, value: u64, prob: Probability, rng: &mut dyn Rng) -> bool {
        // The Chor–Israeli–Li assumption: a local coin followed immediately
        // by a plain store, with no observable gap the OS scheduler could
        // condition on.
        let landed = rng.random_bool(prob.get());
        if landed {
            AtomicRegister::write(self, value);
        }
        landed
    }

    fn generation(&self) -> u64 {
        self.generation
    }

    fn retire_to(&mut self, generation: u64) {
        debug_assert!(
            generation > self.generation,
            "generation must strictly increase: {} -> {generation}",
            self.generation
        );
        // Physically clear the stale value. Masking it behind a (cell, tag)
        // pair instead would take two atomic loads per read, and a torn
        // read — old cell, tag stored by the new generation's first write —
        // would surface the retired instance's value as current. Exclusive
        // access makes the plain store safe.
        *self.cell.get_mut() = EMPTY;
        self.generation = generation;
        debug_assert_eq!(
            AtomicRegister::read(self),
            None,
            "a retired register must be indistinguishable from a fresh one"
        );
    }
}

impl Default for AtomicRegister {
    fn default() -> Self {
        AtomicRegister::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn starts_empty() {
        assert_eq!(AtomicRegister::new().read(), None);
    }

    #[test]
    fn last_write_wins() {
        let r = AtomicRegister::new();
        r.write(3);
        r.write(9);
        assert_eq!(r.read(), Some(9));
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn reserved_word_rejected() {
        AtomicRegister::new().write(u64::MAX);
    }

    #[test]
    fn concurrent_reads_see_some_write() {
        use std::sync::Arc;
        let r = Arc::new(AtomicRegister::new());
        let writers: Vec<_> = (0..4u64)
            .map(|v| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || r.write(v))
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        let v = r.read().unwrap();
        assert!(v < 4);
    }

    #[test]
    fn prob_write_extremes_are_deterministic() {
        let r = AtomicRegister::new();
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(!r.prob_write(5, Probability::ZERO, &mut rng));
        assert_eq!(r.read(), None);
        assert!(r.prob_write(5, Probability::ONE, &mut rng));
        assert_eq!(r.read(), Some(5));
    }

    #[test]
    fn prob_write_consumes_one_coin_per_attempt() {
        // The engine resolves one `random_bool` per probabilistic write; the
        // atomic register must match so lab and OS-thread runs share coin
        // streams.
        let r = AtomicMemory.alloc();
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            let landed = r.prob_write(1, Probability::new(0.5).unwrap(), &mut a);
            assert_eq!(landed, b.random_bool(0.5));
        }
    }

    #[test]
    fn retired_register_reads_as_fresh() {
        let mut r = AtomicMemory.alloc();
        r.write(7);
        assert_eq!(SharedRegister::read(&r), Some(7));
        r.retire_to(1);
        assert_eq!(r.generation(), 1);
        // The stale-generation value is invisible: an initial read.
        assert_eq!(SharedRegister::read(&r), None);
        // A post-retire write is visible under the new generation.
        r.write(9);
        assert_eq!(SharedRegister::read(&r), Some(9));
        r.retire_to(2);
        assert_eq!(SharedRegister::read(&r), None);
    }

    #[test]
    fn retire_physically_clears_the_cell() {
        // The recycled-reads-as-fresh contract must hold by physical
        // clearing, not by masking: a masked-but-present stale value could
        // leak through a torn (cell, tag) read once a new-generation write
        // races a reader. Pin the cell itself to ⊥ after retirement.
        let mut r = AtomicMemory.alloc();
        r.write(7);
        r.retire_to(1);
        assert_eq!(r.cell.load(Ordering::SeqCst), EMPTY);
    }

    #[test]
    fn alloc_in_generation_starts_fresh() {
        let r = AtomicMemory.alloc_in_generation(5);
        assert_eq!(r.generation(), 5);
        assert_eq!(SharedRegister::read(&r), None);
        r.write(3);
        assert_eq!(SharedRegister::read(&r), Some(3));
    }

    #[test]
    fn retire_generation_hook_is_a_noop_by_default() {
        // The default substrate keeps no per-generation state; the hook
        // must be callable with no observable effect on live registers.
        let r = AtomicMemory.alloc_in_generation(1);
        r.write(4);
        AtomicMemory.retire_generation(1);
        assert_eq!(SharedRegister::read(&r), Some(4));
    }

    #[test]
    fn prob_write_lands_in_current_generation() {
        let mut r = AtomicMemory.alloc();
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(r.prob_write(5, Probability::ONE, &mut rng));
        r.retire_to(1);
        assert_eq!(SharedRegister::read(&r), None);
        assert!(r.prob_write(6, Probability::ONE, &mut rng));
        assert_eq!(SharedRegister::read(&r), Some(6));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "strictly increase")]
    fn retiring_backwards_is_rejected() {
        let mut r = AtomicMemory.alloc_in_generation(3);
        r.retire_to(3);
    }
}
