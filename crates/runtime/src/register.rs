//! Atomic multiwriter registers on `AtomicU64`.

use std::sync::atomic::{AtomicU64, Ordering};

/// An atomic multiwriter register holding ⊥ or a value in `0..u64::MAX`.
///
/// ⊥ is represented by the reserved word `u64::MAX`; writing that value is
/// rejected. Loads and stores use sequentially consistent ordering — the
/// paper's model is atomic registers with interleaving semantics, and SeqCst
/// is the faithful (and simplest) mapping.
#[derive(Debug)]
pub struct AtomicRegister {
    cell: AtomicU64,
}

const EMPTY: u64 = u64::MAX;

impl AtomicRegister {
    /// Creates a register holding ⊥.
    pub fn new() -> AtomicRegister {
        AtomicRegister {
            cell: AtomicU64::new(EMPTY),
        }
    }

    /// Reads the register: `None` is ⊥.
    #[inline]
    pub fn read(&self) -> Option<u64> {
        match self.cell.load(Ordering::SeqCst) {
            EMPTY => None,
            v => Some(v),
        }
    }

    /// Writes `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value == u64::MAX` (reserved for ⊥).
    #[inline]
    pub fn write(&self, value: u64) {
        assert_ne!(value, EMPTY, "u64::MAX is reserved for the null value");
        self.cell.store(value, Ordering::SeqCst);
    }
}

impl Default for AtomicRegister {
    fn default() -> Self {
        AtomicRegister::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty() {
        assert_eq!(AtomicRegister::new().read(), None);
    }

    #[test]
    fn last_write_wins() {
        let r = AtomicRegister::new();
        r.write(3);
        r.write(9);
        assert_eq!(r.read(), Some(9));
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn reserved_word_rejected() {
        AtomicRegister::new().write(u64::MAX);
    }

    #[test]
    fn concurrent_reads_see_some_write() {
        use std::sync::Arc;
        let r = Arc::new(AtomicRegister::new());
        let writers: Vec<_> = (0..4u64)
            .map(|v| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || r.write(v))
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        let v = r.read().unwrap();
        assert!(v < 4);
    }
}
