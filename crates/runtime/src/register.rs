//! Atomic multiwriter registers on `AtomicU64`, and the [`SharedMemory`]
//! abstraction that lets the same algorithms run on other register
//! substrates (notably `mc-lab`'s deterministically scheduled backend).

use std::sync::atomic::{AtomicU64, Ordering};

use mc_model::Probability;
use rand::{Rng, RngExt};

/// One shared multiwriter register as the runtime algorithms see it.
///
/// The paper's model (§2) has three operations: read, write, and the
/// probabilistic write of the Chor–Israeli–Li model — a coin flip bound
/// atomically to a store, which the scheduler cannot observe before
/// committing to the operation.
pub trait SharedRegister: Send + Sync {
    /// Reads the register: `None` is ⊥.
    fn read(&self) -> Option<u64>;

    /// Writes `value`.
    fn write(&self, value: u64);

    /// Probabilistic write: with probability `prob` the register takes
    /// `value`. Returns whether the write landed. The coin comes from
    /// `rng` and is resolved only as part of the operation itself.
    fn prob_write(&self, value: u64, prob: Probability, rng: &mut dyn Rng) -> bool;
}

/// A register substrate: allocates fresh shared registers.
///
/// [`AtomicMemory`] is the zero-overhead default (plain `AtomicU64`s);
/// `mc-lab` provides an instrumented backend whose every operation is a
/// scheduling yield point. Generic runtime objects take the substrate as a
/// type parameter defaulted to `AtomicMemory`, so existing call sites pay
/// nothing.
pub trait SharedMemory: Clone + Send + Sync + 'static {
    /// The register type this substrate allocates.
    type Reg: SharedRegister;

    /// Allocates one fresh register holding ⊥.
    ///
    /// Allocation order is observable to instrumented substrates (register
    /// ids are assigned sequentially), so objects must allocate in a
    /// deterministic order — the same order the model-side objects use.
    fn alloc(&self) -> Self::Reg;
}

/// The default substrate: lock-free `AtomicU64` registers.
#[derive(Debug, Clone, Copy, Default)]
pub struct AtomicMemory;

impl SharedMemory for AtomicMemory {
    type Reg = AtomicRegister;

    fn alloc(&self) -> AtomicRegister {
        AtomicRegister::new()
    }
}

/// An atomic multiwriter register holding ⊥ or a value in `0..u64::MAX`.
///
/// ⊥ is represented by the reserved word `u64::MAX`; writing that value is
/// rejected. Loads and stores use sequentially consistent ordering — the
/// paper's model is atomic registers with interleaving semantics, and SeqCst
/// is the faithful (and simplest) mapping.
#[derive(Debug)]
pub struct AtomicRegister {
    cell: AtomicU64,
}

const EMPTY: u64 = u64::MAX;

impl AtomicRegister {
    /// Creates a register holding ⊥.
    pub fn new() -> AtomicRegister {
        AtomicRegister {
            cell: AtomicU64::new(EMPTY),
        }
    }

    /// Reads the register: `None` is ⊥.
    #[inline]
    pub fn read(&self) -> Option<u64> {
        match self.cell.load(Ordering::SeqCst) {
            EMPTY => None,
            v => Some(v),
        }
    }

    /// Writes `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value == u64::MAX` (reserved for ⊥).
    #[inline]
    pub fn write(&self, value: u64) {
        assert_ne!(value, EMPTY, "u64::MAX is reserved for the null value");
        self.cell.store(value, Ordering::SeqCst);
    }
}

impl SharedRegister for AtomicRegister {
    fn read(&self) -> Option<u64> {
        AtomicRegister::read(self)
    }

    fn write(&self, value: u64) {
        AtomicRegister::write(self, value);
    }

    fn prob_write(&self, value: u64, prob: Probability, rng: &mut dyn Rng) -> bool {
        // The Chor–Israeli–Li assumption: a local coin followed immediately
        // by a plain store, with no observable gap the OS scheduler could
        // condition on.
        let landed = rng.random_bool(prob.get());
        if landed {
            AtomicRegister::write(self, value);
        }
        landed
    }
}

impl Default for AtomicRegister {
    fn default() -> Self {
        AtomicRegister::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn starts_empty() {
        assert_eq!(AtomicRegister::new().read(), None);
    }

    #[test]
    fn last_write_wins() {
        let r = AtomicRegister::new();
        r.write(3);
        r.write(9);
        assert_eq!(r.read(), Some(9));
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn reserved_word_rejected() {
        AtomicRegister::new().write(u64::MAX);
    }

    #[test]
    fn concurrent_reads_see_some_write() {
        use std::sync::Arc;
        let r = Arc::new(AtomicRegister::new());
        let writers: Vec<_> = (0..4u64)
            .map(|v| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || r.write(v))
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        let v = r.read().unwrap();
        assert!(v < 4);
    }

    #[test]
    fn prob_write_extremes_are_deterministic() {
        let r = AtomicRegister::new();
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(!r.prob_write(5, Probability::ZERO, &mut rng));
        assert_eq!(r.read(), None);
        assert!(r.prob_write(5, Probability::ONE, &mut rng));
        assert_eq!(r.read(), Some(5));
    }

    #[test]
    fn prob_write_consumes_one_coin_per_attempt() {
        // The engine resolves one `random_bool` per probabilistic write; the
        // atomic register must match so lab and OS-thread runs share coin
        // streams.
        let r = AtomicMemory.alloc();
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            let landed = r.prob_write(1, Probability::new(0.5).unwrap(), &mut a);
            assert_eq!(landed, b.random_bool(0.5));
        }
    }
}
