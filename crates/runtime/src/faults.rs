//! Register-level fault injection: a [`SharedMemory`] layer that wraps any
//! substrate and delivers seeded, deterministic memory faults.
//!
//! The paper's guarantees are proved over perfectly atomic registers.
//! [`FaultyMemory`] interposes between an algorithm and its real substrate
//! ([`AtomicMemory`](crate::AtomicMemory) or `mc-lab`'s `LabMemory`) and
//! injects four configurable fault classes:
//!
//! * **Lost probabilistic writes** — the coin fires per the
//!   `WriteSchedule`, but the store never lands (a dropped
//!   probabilistic-write in the Chor–Israeli–Li model).
//! * **Stale reads** — regular-register semantics in the sense of
//!   Hadzilacos–Hu–Toueg: a read *concurrent with a write* may return the
//!   register's previous value. Staleness is window-bounded: a write's
//!   visibility window closes as soon as the writer performs its next
//!   operation, so a write that completed before a read began is always
//!   observed — exactly the regularity condition, and the reason the
//!   ratifier's safety survives this class.
//! * **Delayed visibility** — a write commits up to `k` operations late:
//!   until the window expires (or the writer moves on), every other
//!   process still observes the previous value.
//! * **Register reset** — a crash-recovery wipe back to ⊥. By default
//!   ([`ResetScope::ConciliatorOnly`]) only registers that have received a
//!   probabilistic write (conciliator registers) are eligible: wiping a
//!   conciliator register destroys agreement *progress* (a δ/liveness
//!   hit), while wiping ratifier bookkeeping could forge agreement
//!   detection and violate coherence — [`ResetScope::AllRegisters`] exists
//!   precisely to demonstrate that negative control.
//!
//! Fault decisions come from the plan's own seeded stream and **never
//! consume the caller's rng**, so the one-coin-per-probabilistic-write
//! discipline that aligns sim/lab/runtime coin streams is preserved. With
//! an empty plan the layer is pure passthrough: one branch per operation,
//! no locks, no allocation — conformance-identical to the bare substrate.
//!
//! Under `mc-lab`, every fault decision happens in the window between two
//! of the calling thread's serialized register operations, so a lab run
//! with faults is still a pure function of (adversary, seed, plan).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::ThreadId;

use mc_model::Probability;
use mc_telemetry::FaultClass;
use rand::rngs::SmallRng;
use rand::{Rng, RngExt, SeedableRng};

use crate::register::{SharedMemory, SharedRegister};
use crate::telemetry::RuntimeTelemetry;

/// Which registers a [`FaultClass::RegisterReset`] may target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResetScope {
    /// Only registers that have received a probabilistic write — i.e.
    /// conciliator registers. Wipes then cost agreement progress (δ and
    /// round counts degrade) but cannot break ratifier safety.
    #[default]
    ConciliatorOnly,
    /// Any allocated register, including ratifier announcement pools and
    /// proposal registers. **This can violate coherence** — a wiped
    /// announcement lets two ratifier callers miss each other — and is
    /// provided as a negative control, not as part of the safe sweep.
    AllRegisters,
}

/// A seeded, deterministic fault schedule for [`FaultyMemory`].
///
/// Rates are per-operation probabilities in `[0, 1]`, drawn from the
/// plan's own `SmallRng` stream (never from the algorithm's rng). An
/// all-zero plan ([`FaultPlan::none`]) makes the layer pure passthrough.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault-decision stream.
    pub seed: u64,
    /// Probability that a probabilistic write's store is dropped.
    pub lost_prob_write: f64,
    /// Probability that a read inside a write's visibility window returns
    /// the previous value.
    pub stale_read: f64,
    /// Probability that a write's visibility is delayed.
    pub delayed_visibility: f64,
    /// Maximum lateness of a delayed write, in layer operations.
    pub delay_ops: u64,
    /// Per-operation probability of a register reset.
    pub register_reset: f64,
    /// Which registers resets may target.
    pub reset_scope: ResetScope,
}

impl FaultPlan {
    /// The empty plan: no faults, pure passthrough.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            lost_prob_write: 0.0,
            stale_read: 0.0,
            delayed_visibility: 0.0,
            delay_ops: 3,
            register_reset: 0.0,
            reset_scope: ResetScope::ConciliatorOnly,
        }
    }

    /// An empty plan carrying a decision-stream seed, ready for the
    /// builder methods below.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::none()
        }
    }

    /// Sets the lost-probabilistic-write rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    #[must_use]
    pub fn lost_prob_writes(mut self, rate: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.lost_prob_write = rate;
        self
    }

    /// Sets the stale-read rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    #[must_use]
    pub fn stale_reads(mut self, rate: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.stale_read = rate;
        self
    }

    /// Sets the delayed-visibility rate and the maximum delay in layer
    /// operations.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]` or `delay_ops` is zero.
    #[must_use]
    pub fn delayed_writes(mut self, rate: f64, delay_ops: u64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        assert!(delay_ops > 0, "a delay of zero operations is no delay");
        self.delayed_visibility = rate;
        self.delay_ops = delay_ops;
        self
    }

    /// Sets the register-reset rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    #[must_use]
    pub fn register_resets(mut self, rate: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.register_reset = rate;
        self
    }

    /// Sets which registers resets may target.
    #[must_use]
    pub fn reset_scope(mut self, scope: ResetScope) -> FaultPlan {
        self.reset_scope = scope;
        self
    }

    /// Whether this plan injects nothing (the passthrough fast path).
    pub fn is_empty(&self) -> bool {
        self.lost_prob_write == 0.0
            && self.stale_read == 0.0
            && self.delayed_visibility == 0.0
            && self.register_reset == 0.0
    }
}

/// Counts of faults delivered so far, by class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Probabilistic writes whose coin fired but whose store was dropped.
    pub lost_prob_writes: u64,
    /// Reads that returned a stale (previous) value.
    pub stale_reads: u64,
    /// Writes whose visibility was delayed.
    pub delayed_commits: u64,
    /// Registers wiped back to ⊥.
    pub register_resets: u64,
}

impl FaultCounts {
    /// Total faults delivered across all classes.
    pub fn total(&self) -> u64 {
        self.lost_prob_writes + self.stale_reads + self.delayed_commits + self.register_resets
    }
}

/// An open visibility window: the most recent write to a register whose
/// writer has not yet moved on to its next operation.
struct Window {
    writer: ThreadId,
    prev: Option<u64>,
    /// For delayed-visibility windows: the layer-operation count at which
    /// the write commits regardless of the writer's progress.
    expires_at: Option<u64>,
    /// Delayed windows hide the new value from every other process;
    /// stale windows only do so when the per-read coin fires.
    delayed: bool,
}

#[derive(Default)]
struct RegState {
    /// Mirror of the last value routed through the layer (⊥ = `None`).
    cur: Option<u64>,
    window: Option<Window>,
    /// Overridden to ⊥ until the next write (a pending crash wipe).
    reset: bool,
    /// Has this register ever received a probabilistic write?
    prob_target: bool,
}

struct FaultState {
    rng: SmallRng,
    /// Layer operation counter ("step" in fault events).
    ops: u64,
    regs: Vec<RegState>,
    /// Indices of registers with an open window (kept tiny).
    open_windows: Vec<usize>,
    /// Indices eligible for resets under [`ResetScope::ConciliatorOnly`].
    prob_targets: Vec<usize>,
}

/// State shared by a [`FaultyMemory`] and all registers it allocates.
struct FaultShared {
    plan: FaultPlan,
    state: Mutex<FaultState>,
    telemetry: OnceLock<Arc<RuntimeTelemetry>>,
    lost_prob_writes: AtomicU64,
    stale_reads: AtomicU64,
    delayed_commits: AtomicU64,
    register_resets: AtomicU64,
}

impl FaultShared {
    fn lock(&self) -> MutexGuard<'_, FaultState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Records one delivered fault: local counters always, telemetry when
    /// attached. Called outside the state lock.
    fn deliver(&self, class: FaultClass, register: u64, step: u64) {
        let counter = match class {
            FaultClass::LostProbWrite => &self.lost_prob_writes,
            FaultClass::StaleRead => &self.stale_reads,
            FaultClass::DelayedVisibility => &self.delayed_commits,
            FaultClass::RegisterReset => &self.register_resets,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        if let Some(telemetry) = self.telemetry.get() {
            telemetry.on_fault_injected(class, register, step);
        }
    }
}

impl FaultState {
    /// Advances the layer clock and closes every window owned by the
    /// calling thread (its write has completed: it moved on) or past its
    /// delay bound.
    fn tick(&mut self, me: ThreadId) -> u64 {
        self.ops += 1;
        let now = self.ops;
        let regs = &mut self.regs;
        self.open_windows.retain(|&ri| {
            let close = match &regs[ri].window {
                Some(w) => w.writer == me || w.expires_at.is_some_and(|e| now >= e),
                None => true,
            };
            if close {
                regs[ri].window = None;
            }
            !close
        });
        now
    }

    /// Draws the per-operation reset decision; returns the wiped register
    /// index if a reset fired.
    fn maybe_reset(&mut self, plan: &FaultPlan) -> Option<usize> {
        if plan.register_reset == 0.0 || !self.rng.random_bool(plan.register_reset) {
            return None;
        }
        let victim = match plan.reset_scope {
            ResetScope::ConciliatorOnly => {
                if self.prob_targets.is_empty() {
                    return None;
                }
                self.prob_targets[(self.rng.next_u64() % self.prob_targets.len() as u64) as usize]
            }
            ResetScope::AllRegisters => {
                if self.regs.is_empty() {
                    return None;
                }
                (self.rng.next_u64() % self.regs.len() as u64) as usize
            }
        };
        let reg = &mut self.regs[victim];
        if reg.cur.is_none() && !reg.reset {
            // Wiping an empty register is a no-op; don't count it.
            return None;
        }
        reg.reset = true;
        reg.cur = None;
        if reg.window.is_some() {
            reg.window = None;
            self.open_windows.retain(|&ri| ri != victim);
        }
        Some(victim)
    }
}

/// A fault-injecting [`SharedMemory`] layer over any substrate.
///
/// Composes over [`AtomicMemory`](crate::AtomicMemory) and `mc-lab`'s
/// `LabMemory` alike; pass it to any runtime object's `*_in` constructor.
/// See [`FaultPlan`] for the fault model and DESIGN.md §7 for its safety
/// reasoning.
pub struct FaultyMemory<M: SharedMemory> {
    inner: M,
    shared: Option<Arc<FaultShared>>,
}

impl<M: SharedMemory> Clone for FaultyMemory<M> {
    fn clone(&self) -> Self {
        FaultyMemory {
            inner: self.inner.clone(),
            shared: self.shared.clone(),
        }
    }
}

impl<M: SharedMemory> std::fmt::Debug for FaultyMemory<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyMemory")
            .field("plan", &self.plan())
            .field("counts", &self.fault_counts())
            .finish()
    }
}

impl<M: SharedMemory> FaultyMemory<M> {
    /// Wraps `inner` under `plan`. An empty plan compiles down to pure
    /// passthrough (no shared state is even allocated).
    pub fn new(inner: M, plan: FaultPlan) -> FaultyMemory<M> {
        let shared = (!plan.is_empty()).then(|| {
            Arc::new(FaultShared {
                plan,
                state: Mutex::new(FaultState {
                    rng: SmallRng::seed_from_u64(plan.seed),
                    ops: 0,
                    regs: Vec::new(),
                    open_windows: Vec::new(),
                    prob_targets: Vec::new(),
                }),
                telemetry: OnceLock::new(),
                lost_prob_writes: AtomicU64::new(0),
                stale_reads: AtomicU64::new(0),
                delayed_commits: AtomicU64::new(0),
                register_resets: AtomicU64::new(0),
            })
        });
        FaultyMemory { inner, shared }
    }

    /// Reports every delivered fault to `telemetry` (the `fault_injected`
    /// event stream plus the fault counters in its snapshot). May be set
    /// once; later calls are ignored.
    #[must_use]
    pub fn observed_by(self, telemetry: Arc<RuntimeTelemetry>) -> FaultyMemory<M> {
        if let Some(shared) = &self.shared {
            let _ = shared.telemetry.set(telemetry);
        }
        self
    }

    /// The active plan.
    pub fn plan(&self) -> FaultPlan {
        match &self.shared {
            Some(shared) => shared.plan,
            None => FaultPlan::none(),
        }
    }

    /// Faults delivered so far, by class. Shared across clones.
    pub fn fault_counts(&self) -> FaultCounts {
        match &self.shared {
            Some(s) => FaultCounts {
                lost_prob_writes: s.lost_prob_writes.load(Ordering::Relaxed),
                stale_reads: s.stale_reads.load(Ordering::Relaxed),
                delayed_commits: s.delayed_commits.load(Ordering::Relaxed),
                register_resets: s.register_resets.load(Ordering::Relaxed),
            },
            None => FaultCounts::default(),
        }
    }

    /// Total faults delivered so far.
    pub fn faults_injected(&self) -> u64 {
        self.fault_counts().total()
    }
}

impl<M: SharedMemory> SharedMemory for FaultyMemory<M> {
    type Reg = FaultyRegister<M::Reg>;

    fn alloc_in_generation(&self, generation: u64) -> FaultyRegister<M::Reg> {
        let index = match &self.shared {
            Some(shared) => {
                let mut state = shared.lock();
                state.regs.push(RegState::default());
                state.regs.len() - 1
            }
            None => 0,
        };
        FaultyRegister {
            inner: self.inner.alloc_in_generation(generation),
            shared: self.shared.clone(),
            index,
        }
    }

    fn retire_generation(&self, generation: u64) {
        self.inner.retire_generation(generation);
    }
}

/// One register of a [`FaultyMemory`]: passthrough to the wrapped
/// substrate's register, with fault decisions drawn from the shared plan
/// stream around each operation.
pub struct FaultyRegister<R: SharedRegister> {
    inner: R,
    shared: Option<Arc<FaultShared>>,
    index: usize,
}

impl<R: SharedRegister> std::fmt::Debug for FaultyRegister<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyRegister")
            .field("index", &self.index)
            .field("faulty", &self.shared.is_some())
            .finish()
    }
}

impl<R: SharedRegister> SharedRegister for FaultyRegister<R> {
    fn generation(&self) -> u64 {
        self.inner.generation()
    }

    fn retire_to(&mut self, generation: u64) {
        // The fault layer's mirror state must forget the retired instance
        // too, or a recycled register could observe pre-retirement windows,
        // pending wipes, or reset eligibility a fresh register never has.
        if let Some(shared) = &self.shared {
            let mut state = shared.lock();
            let reg = &mut state.regs[self.index];
            reg.cur = None;
            reg.reset = false;
            if reg.window.is_some() {
                reg.window = None;
                let index = self.index;
                state.open_windows.retain(|&ri| ri != index);
            }
            if state.regs[self.index].prob_target {
                state.regs[self.index].prob_target = false;
                let index = self.index;
                state.prob_targets.retain(|&ri| ri != index);
            }
        }
        self.inner.retire_to(generation);
    }

    fn read(&self) -> Option<u64> {
        let Some(shared) = &self.shared else {
            return self.inner.read();
        };
        let me = std::thread::current().id();
        // Decide the observation before the substrate operation; under the
        // lab the decision then falls in this thread's exclusive window, so
        // faulted runs stay deterministic.
        let mut faults: Vec<(FaultClass, u64)> = Vec::new();
        let (override_value, step): (Option<Option<u64>>, u64) = {
            let mut state = shared.lock();
            let now = state.tick(me);
            if let Some(victim) = state.maybe_reset(&shared.plan) {
                faults.push((FaultClass::RegisterReset, victim as u64));
            }
            let plan_stale = shared.plan.stale_read;
            let reg = &state.regs[self.index];
            let over = if reg.reset {
                Some(None)
            } else {
                match &reg.window {
                    Some(w) if w.writer != me && w.delayed => Some(w.prev),
                    Some(w) if w.writer != me && plan_stale > 0.0 => {
                        let prev = w.prev;
                        if state.rng.random_bool(plan_stale) {
                            faults.push((FaultClass::StaleRead, self.index as u64));
                            Some(prev)
                        } else {
                            None
                        }
                    }
                    _ => None,
                }
            };
            (over, now)
        };
        for (class, register) in faults {
            shared.deliver(class, register, step);
        }
        let observed = self.inner.read();
        match override_value {
            Some(v) => v,
            None => observed,
        }
    }

    fn write(&self, value: u64) {
        let Some(shared) = &self.shared else {
            return self.inner.write(value);
        };
        let me = std::thread::current().id();
        let mut faults: Vec<(FaultClass, u64)> = Vec::new();
        let step = {
            let mut state = shared.lock();
            let now = state.tick(me);
            if let Some(victim) = state.maybe_reset(&shared.plan) {
                faults.push((FaultClass::RegisterReset, victim as u64));
            }
            let plan = shared.plan;
            let delayed =
                plan.delayed_visibility > 0.0 && state.rng.random_bool(plan.delayed_visibility);
            let reg = &mut state.regs[self.index];
            reg.reset = false;
            let prev = reg.cur;
            let had_window = reg.window.is_some();
            reg.window = None;
            if delayed || plan.stale_read > 0.0 {
                reg.window = Some(Window {
                    writer: me,
                    prev,
                    expires_at: delayed.then_some(now + plan.delay_ops),
                    delayed,
                });
            }
            reg.cur = Some(value);
            let open = reg.window.is_some();
            match (had_window, open) {
                (false, true) => state.open_windows.push(self.index),
                (true, false) => state.open_windows.retain(|&ri| ri != self.index),
                _ => {}
            }
            if delayed {
                faults.push((FaultClass::DelayedVisibility, self.index as u64));
            }
            now
        };
        for (class, register) in faults {
            shared.deliver(class, register, step);
        }
        self.inner.write(value);
    }

    fn prob_write(&self, value: u64, prob: Probability, rng: &mut dyn Rng) -> bool {
        let Some(shared) = &self.shared else {
            return self.inner.prob_write(value, prob, rng);
        };
        let me = std::thread::current().id();
        let mut faults: Vec<(FaultClass, u64)> = Vec::new();
        let (step, lose) = {
            let mut state = shared.lock();
            let now = state.tick(me);
            if let Some(victim) = state.maybe_reset(&shared.plan) {
                faults.push((FaultClass::RegisterReset, victim as u64));
            }
            let plan = shared.plan;
            if !state.regs[self.index].prob_target {
                state.regs[self.index].prob_target = true;
                state.prob_targets.push(self.index);
            }
            let lose = plan.lost_prob_write > 0.0 && state.rng.random_bool(plan.lost_prob_write);
            (now, lose)
        };
        if lose {
            // The write fires per the schedule — one coin from the caller's
            // rng, exactly as the substrate would draw — but never lands.
            let fired = rng.random_bool(prob.get());
            if fired {
                faults.push((FaultClass::LostProbWrite, self.index as u64));
            }
            for (class, register) in faults {
                shared.deliver(class, register, step);
            }
            return fired;
        }
        let landed = self.inner.prob_write(value, prob, rng);
        if landed {
            // A landed probabilistic write is a write: supersede the
            // register's window and open a fresh one.
            let mut state = shared.lock();
            let now = state.ops;
            let plan = shared.plan;
            let delayed =
                plan.delayed_visibility > 0.0 && state.rng.random_bool(plan.delayed_visibility);
            let reg = &mut state.regs[self.index];
            reg.reset = false;
            let prev = reg.cur;
            let had_window = reg.window.is_some();
            reg.window = None;
            if delayed || plan.stale_read > 0.0 {
                reg.window = Some(Window {
                    writer: me,
                    prev,
                    expires_at: delayed.then_some(now + plan.delay_ops),
                    delayed,
                });
            }
            reg.cur = Some(value);
            let open = reg.window.is_some();
            match (had_window, open) {
                (false, true) => state.open_windows.push(self.index),
                (true, false) => state.open_windows.retain(|&ri| ri != self.index),
                _ => {}
            }
            if delayed {
                faults.push((FaultClass::DelayedVisibility, self.index as u64));
            }
        }
        for (class, register) in faults {
            shared.deliver(class, register, step);
        }
        landed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::register::AtomicMemory;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    #[test]
    fn empty_plan_is_pure_passthrough() {
        let mem = FaultyMemory::new(AtomicMemory, FaultPlan::none());
        let reg = mem.alloc();
        assert_eq!(reg.read(), None);
        reg.write(7);
        assert_eq!(reg.read(), Some(7));
        let mut a = SmallRng::seed_from_u64(3);
        let mut b = SmallRng::seed_from_u64(3);
        let bare = AtomicMemory.alloc();
        for _ in 0..50 {
            assert_eq!(
                reg.prob_write(9, p(0.5), &mut a),
                bare.prob_write(9, p(0.5), &mut b),
                "coin streams must stay aligned"
            );
        }
        assert_eq!(mem.faults_injected(), 0);
        assert_eq!(mem.fault_counts(), FaultCounts::default());
    }

    #[test]
    fn lost_prob_write_fires_but_never_lands() {
        let mem = FaultyMemory::new(AtomicMemory, FaultPlan::seeded(1).lost_prob_writes(1.0));
        let reg = mem.alloc();
        let mut rng = SmallRng::seed_from_u64(0);
        let fired = reg.prob_write(5, p(1.0), &mut rng);
        assert!(fired, "the schedule's coin fired");
        assert_eq!(reg.read(), None, "but the store was dropped");
        assert_eq!(mem.fault_counts().lost_prob_writes, 1);
    }

    #[test]
    fn lost_prob_write_consumes_exactly_one_coin() {
        let mem = FaultyMemory::new(AtomicMemory, FaultPlan::seeded(1).lost_prob_writes(1.0));
        let reg = mem.alloc();
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            let fired = reg.prob_write(1, p(0.5), &mut a);
            assert_eq!(fired, b.random_bool(0.5));
        }
        assert_eq!(reg.read(), None);
    }

    #[test]
    fn writer_always_observes_its_own_write() {
        let mem = FaultyMemory::new(AtomicMemory, FaultPlan::seeded(2).stale_reads(1.0));
        let reg = mem.alloc();
        reg.write(4);
        // Same thread: the window belongs to this writer, so its next
        // operation closes it — never stale to itself.
        assert_eq!(reg.read(), Some(4));
        assert_eq!(mem.fault_counts().stale_reads, 0);
    }

    #[test]
    fn stale_read_returns_previous_value_inside_the_window() {
        let mem = FaultyMemory::new(AtomicMemory, FaultPlan::seeded(2).stale_reads(1.0));
        let mem2 = mem.clone();
        let reg = Arc::new(mem.alloc());
        let reg2 = Arc::clone(&reg);
        // Write from another thread that performs no further operation:
        // its visibility window stays open.
        std::thread::spawn(move || {
            let _keep_alive = mem2;
            reg2.write(11);
        })
        .join()
        .unwrap();
        assert_eq!(reg.read(), None, "stale read sees the pre-write ⊥");
        assert_eq!(mem.fault_counts().stale_reads, 1);
    }

    #[test]
    fn delayed_write_commits_after_the_window_expires() {
        let plan = FaultPlan::seeded(3).delayed_writes(1.0, 2);
        let mem = FaultyMemory::new(AtomicMemory, plan);
        let mem2 = mem.clone();
        let reg = Arc::new(mem.alloc());
        let reg2 = Arc::clone(&reg);
        std::thread::spawn(move || {
            let _keep_alive = mem2;
            reg2.write(8);
        })
        .join()
        .unwrap();
        // The write is op 1; its window expires at op 1 + 2 = 3.
        assert_eq!(reg.read(), None, "op 2: still hidden");
        assert_eq!(reg.read(), Some(8), "op 3: committed");
        assert_eq!(mem.fault_counts().delayed_commits, 1);
    }

    #[test]
    fn reset_targets_only_prob_written_registers_by_default() {
        let mem = FaultyMemory::new(AtomicMemory, FaultPlan::seeded(4).register_resets(1.0));
        let plain = mem.alloc();
        let conciliator = mem.alloc();
        plain.write(1);
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(conciliator.prob_write(6, p(1.0), &mut rng));
        assert_eq!(conciliator.read(), None, "wiped back to ⊥");
        assert!(mem.fault_counts().register_resets >= 1);
        // The plain register was never eligible.
        assert_eq!(plain.read(), Some(1));
        // A fresh write revives the wiped register.
        conciliator.write(9);
        let after_write = conciliator.read();
        // (The read may race another reset tick; either ⊥ or the new value,
        // never the pre-wipe 6.)
        assert_ne!(after_write, Some(6));
    }

    #[test]
    fn fault_stream_is_deterministic() {
        let run = || {
            let mem = FaultyMemory::new(
                AtomicMemory,
                FaultPlan::seeded(7)
                    .lost_prob_writes(0.3)
                    .stale_reads(0.3)
                    .delayed_writes(0.2, 2)
                    .register_resets(0.1),
            );
            let reg = mem.alloc();
            let mut rng = SmallRng::seed_from_u64(5);
            let mut observations = Vec::new();
            for i in 0..200u64 {
                match i % 3 {
                    0 => reg.write(i + 1),
                    1 => observations.push(reg.prob_write(i, p(0.5), &mut rng)),
                    _ => observations.push(reg.read().is_some()),
                }
            }
            (observations, mem.fault_counts())
        };
        let (obs_a, counts_a) = run();
        let (obs_b, counts_b) = run();
        assert_eq!(obs_a, obs_b);
        assert_eq!(counts_a, counts_b);
        assert!(counts_a.total() > 0, "the plan actually injected faults");
    }

    #[test]
    #[should_panic(expected = "rate must be in [0, 1]")]
    fn out_of_range_rate_rejected() {
        let _ = FaultPlan::seeded(0).stale_reads(1.5);
    }

    #[test]
    fn retired_faulty_register_reads_as_fresh() {
        let mem = FaultyMemory::new(AtomicMemory, FaultPlan::seeded(2).stale_reads(1.0));
        let mem2 = mem.clone();
        let mut reg = mem.alloc();
        reg.write(11);
        let mut conc = mem2.alloc();
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(conc.prob_write(6, p(1.0), &mut rng));
        reg.retire_to(1);
        conc.retire_to(1);
        // Both the substrate value and the fault layer's mirror (windows,
        // reset eligibility) are gone: the recycled registers are fresh.
        assert_eq!(reg.read(), None);
        assert_eq!(conc.read(), None);
        reg.write(3);
        assert_eq!(
            reg.read(),
            Some(3),
            "writer sees its own post-recycle write"
        );
    }
}
