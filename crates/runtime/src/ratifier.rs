//! The quorum ratifier on real atomics.

use std::sync::Arc;

use mc_model::Decision;
use mc_quorums::{BinaryScheme, BinomialScheme, BitVectorScheme, QuorumScheme};

use crate::register::{AtomicMemory, SharedMemory, SharedRegister};

/// Procedure Ratifier (§6.1) as a thread-safe object: an announcement pool
/// of registers plus a proposal register, over any [`QuorumScheme`].
///
/// [`ratify`](AtomicRatifier::ratify) returns the paper's annotated output
/// `(d, v)`: `(1, v)` means agreement on `v` was detected and the caller
/// must decide it; `(0, v)` means adopt `v` and continue (e.g. to the next
/// conciliator). Deterministic, wait-free, at most
/// `|W| + |R| + 2` register operations.
///
/// The announcement pool allocates before the proposal register and slots
/// write the sentinel `1`, exactly like the model-side `Ratifier`, so an
/// instrumented [`SharedMemory`] substrate observes identical operation
/// streams across substrates.
pub struct AtomicRatifier<M: SharedMemory = AtomicMemory> {
    pool: Vec<M::Reg>,
    proposal: M::Reg,
    scheme: Arc<dyn QuorumScheme>,
}

impl<M: SharedMemory> std::fmt::Debug for AtomicRatifier<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicRatifier")
            .field("scheme", &self.scheme.name())
            .field("pool_size", &self.pool.len())
            .finish()
    }
}

impl AtomicRatifier {
    /// Builds a ratifier over an arbitrary quorum scheme.
    pub fn with_scheme(scheme: Arc<dyn QuorumScheme>) -> AtomicRatifier {
        AtomicRatifier::with_scheme_in(&AtomicMemory, scheme)
    }

    /// The 2-valued ratifier (3 registers, ≤ 4 operations).
    pub fn binary() -> AtomicRatifier {
        AtomicRatifier::with_scheme(Arc::new(BinaryScheme::new()))
    }

    /// The optimal `m`-valued ratifier (binomial quorums).
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn binomial(m: u64) -> AtomicRatifier {
        AtomicRatifier::with_scheme(Arc::new(
            BinomialScheme::for_capacity(m).expect("m must be positive"),
        ))
    }

    /// The bit-vector `m`-valued ratifier.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn bitvector(m: u64) -> AtomicRatifier {
        AtomicRatifier::with_scheme(Arc::new(
            BitVectorScheme::for_capacity(m).expect("m must be positive"),
        ))
    }
}

impl<M: SharedMemory> AtomicRatifier<M> {
    /// Builds a ratifier over an arbitrary quorum scheme whose registers
    /// live in `memory`.
    ///
    /// Allocation order — pool slots in slot order, then the proposal
    /// register — matches the model object and must not change.
    pub fn with_scheme_in(memory: &M, scheme: Arc<dyn QuorumScheme>) -> AtomicRatifier<M> {
        let pool = (0..scheme.pool_size()).map(|_| memory.alloc()).collect();
        AtomicRatifier {
            pool,
            proposal: memory.alloc(),
            scheme,
        }
    }

    /// Number of values supported.
    pub fn capacity(&self) -> u64 {
        self.scheme.capacity()
    }

    /// Recycles this one-shot object for a fresh instance: every pool slot
    /// and the proposal register are retired into the next generation, after
    /// which the object is indistinguishable from a freshly built ratifier
    /// over the same scheme (stale-generation reads are initial reads).
    ///
    /// Exclusive access (`&mut`) guarantees no `ratify` call is in flight.
    pub fn reset(&mut self) {
        let next = self.proposal.generation() + 1;
        for slot in &mut self.pool {
            slot.retire_to(next);
        }
        self.proposal.retire_to(next);
    }

    /// Runs the ratifier with proposal `value`.
    ///
    /// One-shot semantics: each thread calls this at most once per object.
    ///
    /// # Panics
    ///
    /// Panics if `value ≥ capacity()`.
    pub fn ratify(&self, value: u64) -> Decision {
        assert!(
            value < self.scheme.capacity(),
            "value {value} exceeds ratifier capacity {}",
            self.scheme.capacity()
        );
        // Announce.
        for slot in self.scheme.write_quorum(value) {
            self.pool[slot as usize].write(1);
        }
        // Propose or adopt.
        let preference = match self.proposal.read() {
            Some(u) => u,
            None => {
                self.proposal.write(value);
                value
            }
        };
        // Scan for conflicting announcements.
        for slot in self.scheme.read_quorum(preference) {
            if self.pool[slot as usize].read().is_some() {
                return Decision::continue_with(preference);
            }
        }
        Decision::decide(preference)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unanimous_callers_all_decide() {
        for maker in [AtomicRatifier::binary as fn() -> AtomicRatifier] {
            let r = Arc::new(maker());
            let handles: Vec<_> = (0..6)
                .map(|_| {
                    let r = Arc::clone(&r);
                    std::thread::spawn(move || r.ratify(1))
                })
                .collect();
            for h in handles {
                let d = h.join().unwrap();
                assert!(d.is_decided());
                assert_eq!(d.value(), 1);
            }
        }
    }

    #[test]
    fn coherence_under_concurrent_conflict() {
        for trial in 0..200 {
            let r = Arc::new(AtomicRatifier::binomial(8));
            let handles: Vec<_> = (0..4u64)
                .map(|t| {
                    let r = Arc::clone(&r);
                    std::thread::spawn(move || r.ratify((trial + t) % 8))
                })
                .collect();
            let outs: Vec<Decision> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            mc_model::properties::check_coherence(&outs)
                .unwrap_or_else(|e| panic!("trial {trial}: {e}"));
        }
    }

    #[test]
    fn sequential_conflict_is_detected() {
        let r = AtomicRatifier::binary();
        let first = r.ratify(0);
        // First caller ran alone: decides 0.
        assert_eq!(first, Decision::decide(0));
        // Second caller with the other value must *not* decide 1; coherence
        // forces it onto 0.
        let second = r.ratify(1);
        assert_eq!(second.value(), 0);
        assert!(!second.is_decided() || second.value() == 0);
    }

    #[test]
    fn capacities_match_schemes() {
        assert_eq!(AtomicRatifier::binary().capacity(), 2);
        assert!(AtomicRatifier::binomial(100).capacity() >= 100);
        assert!(AtomicRatifier::bitvector(100).capacity() >= 100);
    }

    #[test]
    #[should_panic(expected = "exceeds ratifier capacity")]
    fn oversized_value_rejected() {
        AtomicRatifier::binary().ratify(7);
    }

    #[test]
    fn reset_ratifier_behaves_like_fresh() {
        let mut r = AtomicRatifier::binary();
        assert_eq!(r.ratify(0), Decision::decide(0));
        // Without a reset, a conflicting second caller is forced onto 0.
        assert_eq!(r.ratify(1).value(), 0);
        r.reset();
        // After the reset the old announcements and proposal are invisible:
        // the recycled ratifier decides the new instance's value.
        assert_eq!(r.ratify(1), Decision::decide(1));
    }
}
