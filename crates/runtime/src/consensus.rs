//! The full consensus object on real threads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use mc_core::conciliator::WriteSchedule;
use mc_quorums::{BinomialScheme, QuorumScheme};
use mc_telemetry::{ConciliatorKind, StageKind};
use parking_lot::RwLock;
use rand::Rng;

use crate::coin::{CoinConciliator, CoinKind, LocalCoin, VotingCoin};
use crate::conciliator::{AdaptiveOptions, Conciliator, ConciliatorChoice, ImpatientConciliator};
use crate::ratifier::AtomicRatifier;
use crate::register::{AtomicMemory, SharedMemory};
use crate::telemetry::RuntimeTelemetry;

/// Configuration for a thread-runtime [`Consensus`] object.
#[derive(Clone)]
pub struct ConsensusOptions {
    /// Maximum number of participating threads.
    pub n: usize,
    /// Quorum scheme for the ratifiers (determines the value capacity).
    pub scheme: Arc<dyn QuorumScheme>,
    /// Write-probability schedule for the conciliators.
    pub schedule: WriteSchedule,
    /// Whether to run the `R₋₁; R₀` fast path before the first conciliator.
    pub fast_path: bool,
    /// Bound `f` on conciliator stages for
    /// [`BoundedConsensus`](crate::BoundedConsensus) (§4.1.2 / Theorem 5).
    /// `None` means unbounded: [`Consensus::decide`] always ignores this
    /// field, and `BoundedConsensus` substitutes its default bound.
    pub max_conciliator_rounds: Option<u32>,
    /// Which conciliator implementation the `C₁; C₂; …` stages instantiate
    /// (§5.1 / §5.2 / Theorem 6). Non-impatient choices are binary only.
    pub conciliator: ConciliatorChoice,
}

impl std::fmt::Debug for ConsensusOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConsensusOptions")
            .field("n", &self.n)
            .field("scheme", &self.scheme.name())
            .field("schedule", &self.schedule)
            .field("fast_path", &self.fast_path)
            .field("max_conciliator_rounds", &self.max_conciliator_rounds)
            .field("conciliator", &self.conciliator)
            .finish()
    }
}

/// The conciliator implementation a [`Consensus`] instance settled on for
/// its current generation — a fixed choice resolved once, or the adaptive
/// policy's per-instance verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ActiveConciliator {
    Impatient,
    Coin(CoinKind),
}

impl ActiveConciliator {
    fn kind(self) -> ConciliatorKind {
        match self {
            ActiveConciliator::Impatient => ConciliatorKind::Impatient,
            ActiveConciliator::Coin(_) => ConciliatorKind::Coin,
        }
    }
}

pub(crate) enum Stage<M: SharedMemory> {
    Ratifier(AtomicRatifier<M>),
    Conciliator(Box<dyn Conciliator<M>>),
}

impl<M: SharedMemory> Stage<M> {
    /// Retires the stage's registers into their next generation.
    fn reset(&mut self) {
        match self {
            Stage::Ratifier(r) => r.reset(),
            Stage::Conciliator(c) => c.reset(),
        }
    }
}

/// A one-shot randomized consensus object for up to `n` threads: the
/// unbounded construction `R₋₁; R₀; C₁; R₁; C₂; R₂; …` of §4.1.1, with
/// stages materialized lazily as threads reach them.
///
/// Each thread calls [`decide`](Consensus::decide) exactly once with its
/// proposal; all calls return the same value, equal to some thread's
/// proposal, with probability 1 in finite expected time (`O(log n)` expected
/// register operations per thread, `O(n log m)` total).
///
/// Stage materialization takes a short [`parking_lot::RwLock`] write lock;
/// everything on the hot path is lock-free loads/stores. Strictly speaking
/// this makes the implementation lock-based at stage boundaries — the price
/// of unbounded lazily-allocated stages in a practical runtime.
///
/// The register substrate is the type parameter `M`, defaulted to
/// [`AtomicMemory`] (plain `AtomicU64`s, zero overhead). `mc-lab`
/// substitutes an instrumented substrate to run the *same* object under a
/// deterministic scheduler. Stages materialize in index order and each
/// stage allocates its registers in a fixed order, so register ids are
/// identical across substrates under identical interleavings.
pub struct Consensus<M: SharedMemory = AtomicMemory> {
    /// Shared, not cloned: a pooling engine (or [`ReplicatedLog`]) hands
    /// every instance the same validated options, so per-instance setup is
    /// a pointer bump — no quorum-scheme re-validation.
    ///
    /// [`ReplicatedLog`]: crate::ReplicatedLog
    options: Arc<ConsensusOptions>,
    memory: M,
    stages: RwLock<Vec<Arc<Stage<M>>>>,
    /// How many times this object has been recycled via
    /// [`reset`](Consensus::reset); fresh objects are in generation 0.
    generation: u64,
    /// The conciliator implementation this instance's `C` stages use —
    /// resolved from `options.conciliator` at construction and re-resolved
    /// on every [`reset`](Consensus::reset) (where the adaptive policy gets
    /// to change its mind between instances).
    active: ActiveConciliator,
    /// Hands each plain [`decide`](Consensus::decide) caller a distinct
    /// thread slot; under one-shot semantics (≤ `n` calls per instance) the
    /// slots are unique, which is what per-thread coin registers require.
    ticket: AtomicUsize,
    telemetry: Arc<RuntimeTelemetry>,
}

impl Consensus {
    /// Starts building a consensus object: the single documented
    /// construction path.
    ///
    /// ```
    /// use mc_runtime::Consensus;
    /// let c = Consensus::builder().n(4).values(100).build();
    /// // Binomial quorums round the capacity up to the next C(k, k/2).
    /// assert!(c.capacity() >= 100);
    /// ```
    pub fn builder() -> crate::ConsensusBuilder {
        crate::ConsensusBuilder::new()
    }

    pub(crate) fn multivalued_options(n: usize, m: u64) -> ConsensusOptions {
        assert!(m >= 2, "consensus needs at least 2 values");
        ConsensusOptions {
            n,
            scheme: Arc::new(BinomialScheme::for_capacity(m).expect("m ≥ 2")),
            schedule: WriteSchedule::impatient(),
            fast_path: true,
            max_conciliator_rounds: None,
            conciliator: ConciliatorChoice::Impatient,
        }
    }

    /// Consensus with explicit options.
    ///
    /// # Panics
    ///
    /// Panics if `options.n == 0`.
    pub fn with_options(options: ConsensusOptions) -> Consensus {
        Consensus::with_shared_options_in(AtomicMemory, Arc::new(options))
    }
}

impl<M: SharedMemory> Consensus<M> {
    /// Consensus whose options are *shared by reference*: repeated instance
    /// setup (a pooling engine, one [`ReplicatedLog`](crate::ReplicatedLog)
    /// slot per append) clones only the `Arc`, so the quorum scheme inside
    /// is validated exactly once, at options construction.
    ///
    /// # Panics
    ///
    /// Panics if `options.n == 0`.
    pub fn with_shared_options_in(memory: M, options: Arc<ConsensusOptions>) -> Consensus<M> {
        let telemetry = Arc::new(RuntimeTelemetry::noop(options.n));
        Consensus::with_telemetry_in(memory, options, telemetry)
    }

    pub(crate) fn with_telemetry_in(
        memory: M,
        options: Arc<ConsensusOptions>,
        telemetry: Arc<RuntimeTelemetry>,
    ) -> Consensus<M> {
        assert!(options.n > 0, "need at least one thread");
        assert!(
            matches!(options.conciliator, ConciliatorChoice::Impatient)
                || options.scheme.capacity() <= 2,
            "coin conciliators are binary: capacity {} exceeds 2",
            options.scheme.capacity()
        );
        let active = Consensus::<M>::resolve_choice(&options.conciliator, 0, &telemetry);
        Consensus {
            options,
            memory,
            stages: RwLock::new(Vec::new()),
            generation: 0,
            active,
            ticket: AtomicUsize::new(0),
            telemetry,
        }
    }

    /// Resolves the portfolio choice for the instance entering `generation`.
    ///
    /// Fixed choices are immediate. The adaptive policy consults the
    /// telemetry window's δ̂ estimate: with enough samples and an estimate
    /// below the threshold it selects the coin conciliator; otherwise (in
    /// particular on an empty or thin window) it stays impatient. Adaptive
    /// resolutions are announced via the `conciliator_selected` event.
    fn resolve_choice(
        choice: &ConciliatorChoice,
        generation: u64,
        telemetry: &RuntimeTelemetry,
    ) -> ActiveConciliator {
        match choice {
            ConciliatorChoice::Impatient => ActiveConciliator::Impatient,
            ConciliatorChoice::Coin(kind) => ActiveConciliator::Coin(*kind),
            ConciliatorChoice::Adaptive(opts) => {
                let AdaptiveOptions {
                    window,
                    min_samples,
                    delta_threshold,
                    coin,
                } = *opts;
                let estimate = telemetry.delta_hat_over(window, min_samples);
                let samples = telemetry.delta_samples().min(window as u64);
                let active = match estimate {
                    Some(d) if d < delta_threshold => ActiveConciliator::Coin(coin),
                    _ => ActiveConciliator::Impatient,
                };
                telemetry.on_conciliator_selected(generation, active.kind(), estimate, samples);
                active
            }
        }
    }

    /// Live metrics for this object: decide calls, fast-path hit rate,
    /// rounds-to-decide and latency histograms, probabilistic-write counts.
    pub fn telemetry(&self) -> &RuntimeTelemetry {
        &self.telemetry
    }

    /// Number of distinct proposal values supported.
    pub fn capacity(&self) -> u64 {
        self.options.scheme.capacity()
    }

    /// Number of stages materialized so far (diagnostics).
    pub fn stages_used(&self) -> usize {
        self.stages.read().len()
    }

    /// How many times this object has been recycled via
    /// [`reset`](Consensus::reset). Fresh objects report 0.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    pub(crate) fn options(&self) -> &ConsensusOptions {
        &self.options
    }

    /// The shared options handle; instances built from the same `Arc`
    /// report `Arc::ptr_eq` — the per-slot setup cost is a pointer bump.
    pub fn options_handle(&self) -> &Arc<ConsensusOptions> {
        &self.options
    }

    /// Recycles this one-shot object for a fresh instance.
    ///
    /// Every materialized stage keeps its registers but retires them into
    /// the next generation, so each reads as ⊥ again: by the stale-read-as-
    /// initial contract ([`SharedRegister::retire_to`]) the recycled object
    /// is indistinguishable from a freshly constructed one — the lab
    /// conformance suite proves a recycled run is decision-, trace-, and
    /// work-identical to a fresh run at the same (adversary, seed).
    ///
    /// Stages stay materialized (that is the point: no reallocation), and
    /// cumulative telemetry is deliberately preserved across instances.
    ///
    /// Under [`ConciliatorChoice::Adaptive`] the portfolio choice is
    /// re-resolved for the next instance; if the verdict flips, the old
    /// conciliator stages cannot be reused and the stage vector is cleared
    /// instead (the next instance re-materializes lazily) — an accepted
    /// deviation from the no-reallocation contract, taken only on an actual
    /// regime change.
    ///
    /// [`SharedRegister::retire_to`]: crate::SharedRegister::retire_to
    ///
    /// # Panics
    ///
    /// Panics if any `decide` call is still in flight (a stage handle is
    /// still borrowed); recycling is only legal between instances.
    pub fn reset(&mut self) {
        let next_generation = self.generation + 1;
        let next = Consensus::<M>::resolve_choice(
            &self.options.conciliator,
            next_generation,
            &self.telemetry,
        );
        let stages = self.stages.get_mut();
        if next == self.active {
            for stage in stages.iter_mut() {
                Arc::get_mut(stage)
                    .expect("reset with a decide call in flight")
                    .reset();
            }
        } else {
            assert!(
                stages.iter_mut().all(|stage| Arc::get_mut(stage).is_some()),
                "reset with a decide call in flight"
            );
            stages.clear();
            self.active = next;
        }
        self.generation = next_generation;
        self.ticket.store(0, Ordering::Relaxed);
    }

    /// Which conciliator implementation the current instance's `C` stages
    /// use: the fixed choice, or — under
    /// [`ConciliatorChoice::Adaptive`] — the verdict resolved at the last
    /// construction/[`reset`](Consensus::reset).
    pub fn selected_conciliator(&self) -> ConciliatorKind {
        self.active.kind()
    }

    /// Shared handle to this object's telemetry, for wiring observers that
    /// outlive individual calls — e.g.
    /// [`FaultyMemory::observed_by`](crate::FaultyMemory::observed_by).
    pub fn telemetry_handle(&self) -> &Arc<RuntimeTelemetry> {
        &self.telemetry
    }

    pub(crate) fn stage(&self, ix: usize) -> Arc<Stage<M>> {
        if let Some(stage) = self.stages.read().get(ix) {
            return Arc::clone(stage);
        }
        let mut stages = self.stages.write();
        while stages.len() <= ix {
            let next = stages.len();
            stages.push(Arc::new(self.make_stage(next)));
        }
        Arc::clone(&stages[ix])
    }

    fn make_stage(&self, ix: usize) -> Stage<M> {
        let prefix = if self.options.fast_path { 2 } else { 0 };
        let is_ratifier = ix < prefix || (ix - prefix) % 2 == 1;
        if is_ratifier {
            Stage::Ratifier(AtomicRatifier::with_scheme_in(
                &self.memory,
                Arc::clone(&self.options.scheme),
            ))
        } else {
            let conciliator: Box<dyn Conciliator<M>> = match self.active {
                ActiveConciliator::Impatient => Box::new(
                    ImpatientConciliator::with_schedule_in(
                        &self.memory,
                        self.options.n,
                        self.options.schedule,
                    )
                    .observed_by(Arc::clone(&self.telemetry)),
                ),
                ActiveConciliator::Coin(CoinKind::Local) => Box::new(
                    CoinConciliator::with_coin_in(&self.memory, |_| LocalCoin::new())
                        .observed_by(Arc::clone(&self.telemetry)),
                ),
                ActiveConciliator::Coin(CoinKind::Voting { quorum_factor }) => Box::new(
                    CoinConciliator::with_coin_in(&self.memory, |memory| {
                        VotingCoin::with_quorum_factor_in(memory, self.options.n, quorum_factor)
                            .observed_by(Arc::clone(&self.telemetry))
                    })
                    .observed_by(Arc::clone(&self.telemetry)),
                ),
            };
            Stage::Conciliator(conciliator)
        }
    }

    /// Proposes `value` and returns the agreed decision.
    ///
    /// One-shot semantics: each thread calls this at most once per object.
    /// The call is assigned the next free thread slot (unique while the
    /// one-shot contract of ≤ `n` calls per instance holds); for explicit
    /// slot control (lab harnesses pinning process ids) use
    /// [`decide_as`](Consensus::decide_as).
    ///
    /// # Panics
    ///
    /// Panics if `value ≥ capacity()`.
    pub fn decide(&self, value: u64, rng: &mut dyn Rng) -> u64 {
        let pid = self.ticket.fetch_add(1, Ordering::Relaxed);
        self.decide_as(pid % self.options.n, value, rng)
    }

    /// Proposes `value` as thread `pid` and returns the agreed decision.
    ///
    /// One-shot semantics: each thread calls this at most once per object,
    /// and each `pid < n` must be used by at most one caller per instance —
    /// conciliators with per-thread shared state (the voting coin's tally
    /// registers) require it. The impatient conciliator ignores `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid ≥ n` or `value ≥ capacity()`.
    pub fn decide_as(&self, pid: usize, value: u64, rng: &mut dyn Rng) -> u64 {
        assert!(
            pid < self.options.n,
            "pid {pid} out of range for {} threads",
            self.options.n
        );
        assert!(
            value < self.capacity(),
            "value {value} exceeds consensus capacity {}",
            self.capacity()
        );
        self.telemetry.on_decide_start();
        let start = Instant::now();
        let fast_prefix = if self.options.fast_path { 2 } else { 0 };
        let mut current = value;
        let mut conciliator_stages = 0u64;
        let mut ix = 0;
        loop {
            match &*self.stage(ix) {
                Stage::Ratifier(r) => {
                    self.telemetry
                        .on_stage_entered(ix as u64, StageKind::Ratifier);
                    let d = r.ratify(current);
                    self.telemetry
                        .on_ratifier_verdict(ix as u64, d.is_decided(), d.value());
                    if d.is_decided() {
                        let latency_ns =
                            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        self.telemetry.on_conciliator_stages(conciliator_stages);
                        self.telemetry.on_decided(
                            d.value(),
                            ix as u64,
                            ix < fast_prefix,
                            latency_ns,
                        );
                        return d.value();
                    }
                    current = d.value();
                }
                Stage::Conciliator(c) => {
                    self.telemetry
                        .on_stage_entered(ix as u64, StageKind::Conciliator);
                    conciliator_stages += 1;
                    current = c.propose(pid, current, rng);
                }
            }
            ix += 1;
        }
    }
}

impl<M: SharedMemory> std::fmt::Debug for Consensus<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Consensus")
            .field("options", &self.options)
            .field("stages_used", &self.stages_used())
            .finish()
    }
}

/// A [`Consensus`] object under [`ConciliatorChoice::Adaptive`], with the
/// selection state surfaced: which portfolio member the current instance
/// runs and what δ̂ the telemetry window reads.
///
/// The wrapper is thin — every consensus operation delegates to the inner
/// object, and [`reset`](AdaptiveConsensus::reset) is where the policy gets
/// to switch: each recycle re-reads the sliding window and falls back from
/// the impatient conciliator to the configured coin when measured δ̂ has
/// degraded past the threshold (and back, when it recovers).
pub struct AdaptiveConsensus<M: SharedMemory = AtomicMemory> {
    inner: Consensus<M>,
    adaptive: AdaptiveOptions,
}

impl AdaptiveConsensus {
    /// Binary adaptive consensus for up to `n` threads with the given
    /// policy tuning.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, options: AdaptiveOptions) -> AdaptiveConsensus {
        AdaptiveConsensus::from_consensus(
            Consensus::builder()
                .n(n)
                .conciliator(ConciliatorChoice::Adaptive(options))
                .build(),
        )
    }
}

impl<M: SharedMemory> AdaptiveConsensus<M> {
    /// Wraps an already-built consensus object (any substrate, any
    /// recorder), surfacing its adaptive selection state.
    ///
    /// # Panics
    ///
    /// Panics if `inner` was not built with [`ConciliatorChoice::Adaptive`].
    pub fn from_consensus(inner: Consensus<M>) -> AdaptiveConsensus<M> {
        let ConciliatorChoice::Adaptive(adaptive) = inner.options().conciliator else {
            panic!("AdaptiveConsensus requires ConciliatorChoice::Adaptive");
        };
        AdaptiveConsensus { inner, adaptive }
    }

    /// The policy tuning this object adapts under.
    pub fn adaptive_options(&self) -> AdaptiveOptions {
        self.adaptive
    }

    /// Which portfolio member the current instance selected.
    pub fn selected(&self) -> ConciliatorKind {
        self.inner.selected_conciliator()
    }

    /// The sliding-window δ̂ estimate the *next* selection would see, or
    /// `None` while the window holds fewer than `min_samples` decides.
    pub fn delta_hat(&self) -> Option<f64> {
        self.inner
            .telemetry
            .delta_hat_over(self.adaptive.window, self.adaptive.min_samples)
    }

    /// Proposes `value`; see [`Consensus::decide`].
    pub fn decide(&self, value: u64, rng: &mut dyn Rng) -> u64 {
        self.inner.decide(value, rng)
    }

    /// Proposes `value` as thread `pid`; see [`Consensus::decide_as`].
    pub fn decide_as(&self, pid: usize, value: u64, rng: &mut dyn Rng) -> u64 {
        self.inner.decide_as(pid, value, rng)
    }

    /// Recycles for a fresh instance, re-running the adaptive selection;
    /// see [`Consensus::reset`].
    pub fn reset(&mut self) {
        self.inner.reset();
    }

    /// Live metrics; see [`Consensus::telemetry`].
    pub fn telemetry(&self) -> &RuntimeTelemetry {
        self.inner.telemetry()
    }

    /// Recycle count; see [`Consensus::generation`].
    pub fn generation(&self) -> u64 {
        self.inner.generation()
    }

    /// The wrapped consensus object.
    pub fn inner(&self) -> &Consensus<M> {
        &self.inner
    }

    /// Unwraps back into the plain consensus object.
    pub fn into_inner(self) -> Consensus<M> {
        self.inner
    }
}

impl<M: SharedMemory> std::fmt::Debug for AdaptiveConsensus<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveConsensus")
            .field("selected", &self.selected().as_str())
            .field("adaptive", &self.adaptive)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn run_consensus(consensus: Arc<Consensus>, proposals: Vec<u64>, seed: u64) -> Vec<u64> {
        let handles: Vec<_> = proposals
            .into_iter()
            .enumerate()
            .map(|(t, v)| {
                let c = Arc::clone(&consensus);
                std::thread::spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(seed * 1000 + t as u64);
                    c.decide(v, &mut rng)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn binary_agreement_and_validity() {
        for trial in 0..100 {
            let c = Arc::new(Consensus::builder().n(6).build());
            let proposals: Vec<u64> = (0..6).map(|t| (t as u64 + trial) % 2).collect();
            let results = run_consensus(c, proposals.clone(), trial);
            let first = results[0];
            assert!(
                results.iter().all(|&r| r == first),
                "trial {trial}: {results:?}"
            );
            assert!(proposals.contains(&first), "trial {trial}: invalid {first}");
        }
    }

    #[test]
    fn multivalued_agreement_and_validity() {
        for trial in 0..50 {
            let m = 20;
            let c = Arc::new(Consensus::builder().n(8).values(m).build());
            let proposals: Vec<u64> = (0..8).map(|t| (t as u64 * 3 + trial) % m).collect();
            let results = run_consensus(c, proposals.clone(), trial);
            let first = results[0];
            assert!(
                results.iter().all(|&r| r == first),
                "trial {trial}: {results:?}"
            );
            assert!(proposals.contains(&first));
        }
    }

    #[test]
    fn unanimous_proposals_use_only_the_fast_path() {
        let c = Arc::new(Consensus::builder().n(8).build());
        let results = run_consensus(Arc::clone(&c), vec![1; 8], 0);
        assert!(results.iter().all(|&r| r == 1));
        // Fast path: at most the two prefix ratifiers materialized.
        assert!(c.stages_used() <= 2, "{} stages", c.stages_used());
    }

    #[test]
    fn single_thread_decides_its_own_value() {
        let c = Consensus::builder().n(1).values(16).build();
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(c.decide(11, &mut rng), 11);
    }

    #[test]
    fn stages_are_reported() {
        let c = Consensus::builder().n(2).build();
        assert_eq!(c.stages_used(), 0);
        let mut rng = SmallRng::seed_from_u64(0);
        c.decide(0, &mut rng);
        assert!(c.stages_used() >= 1);
    }

    #[test]
    #[should_panic(expected = "exceeds consensus capacity")]
    fn oversized_proposal_rejected() {
        let c = Consensus::builder().n(2).build();
        let mut rng = SmallRng::seed_from_u64(0);
        c.decide(9, &mut rng);
    }

    #[test]
    #[should_panic(expected = "at least 2 values")]
    fn tiny_capacity_rejected() {
        Consensus::builder().n(2).values(1).build();
    }

    #[test]
    fn reset_consensus_decides_fresh_values() {
        let mut c = Consensus::builder().n(1).values(16).build();
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(c.decide(11, &mut rng), 11);
        assert_eq!(c.generation(), 0);
        let stages_before = c.stages_used();
        c.reset();
        assert_eq!(c.generation(), 1);
        // Stages are kept (no reallocation) but the old decision is gone.
        assert_eq!(c.stages_used(), stages_before);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(c.decide(4, &mut rng), 4);
    }

    #[test]
    fn recycled_object_matches_fresh_across_threads() {
        for trial in 0..20 {
            // Run a fresh object, then a recycled one, with identical seeds:
            // both must satisfy agreement/validity independently.
            let mut c = Consensus::builder().n(4).build();
            let proposals: Vec<u64> = (0..4).map(|t| (t as u64 + trial) % 2).collect();
            let shared = Arc::new(c);
            let first = run_consensus(Arc::clone(&shared), proposals.clone(), trial);
            assert!(first.iter().all(|&r| r == first[0]));
            c = Arc::try_unwrap(shared).unwrap_or_else(|_| panic!("in-flight handles"));
            c.reset();
            let results = run_consensus(Arc::new(c), proposals.clone(), trial);
            assert!(
                results.iter().all(|&r| r == results[0]),
                "trial {trial}: {results:?}"
            );
            assert!(proposals.contains(&results[0]));
        }
    }

    #[test]
    fn coin_choice_agreement_and_validity() {
        for (kind, trials) in [
            (CoinKind::Voting { quorum_factor: 1 }, 20u64),
            (CoinKind::Local, 20u64),
        ] {
            for trial in 0..trials {
                let c = Arc::new(
                    Consensus::builder()
                        .n(3)
                        .conciliator(ConciliatorChoice::Coin(kind))
                        .build(),
                );
                assert_eq!(c.selected_conciliator(), ConciliatorKind::Coin);
                let proposals: Vec<u64> = (0..3).map(|t| (t as u64 + trial) % 2).collect();
                let results = run_consensus(c, proposals.clone(), trial);
                assert!(
                    results.iter().all(|&r| r == results[0]),
                    "{kind:?} trial {trial}: {results:?}"
                );
                assert!(proposals.contains(&results[0]));
            }
        }
    }

    #[test]
    fn coin_choice_survives_reset() {
        let mut c = Consensus::builder()
            .n(1)
            .conciliator(ConciliatorChoice::Coin(CoinKind::voting()))
            .build();
        let mut rng = SmallRng::seed_from_u64(9);
        assert_eq!(c.decide(1, &mut rng), 1);
        c.reset();
        assert_eq!(c.selected_conciliator(), ConciliatorKind::Coin);
        let mut rng = SmallRng::seed_from_u64(9);
        assert_eq!(c.decide(0, &mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "binary")]
    fn coin_choice_rejects_multivalued_capacity() {
        Consensus::builder()
            .n(2)
            .values(8)
            .conciliator(ConciliatorChoice::Coin(CoinKind::Local))
            .build();
    }

    #[test]
    fn ticketed_decide_assigns_distinct_pids() {
        // n=2 with a per-thread-register coin: two plain decide() calls must
        // land on distinct tally registers (distinct tickets) and agree.
        let c = Arc::new(
            Consensus::builder()
                .n(2)
                .conciliator(ConciliatorChoice::Coin(CoinKind::Voting {
                    quorum_factor: 1,
                }))
                .build(),
        );
        let results = run_consensus(Arc::clone(&c), vec![0, 1], 11);
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn adaptive_starts_impatient_on_empty_window() {
        let a = AdaptiveConsensus::new(2, AdaptiveOptions::default());
        assert_eq!(a.selected(), ConciliatorKind::Impatient);
        assert_eq!(a.delta_hat(), None, "no samples, no estimate");
        // The selection itself was announced (counted), but never as a coin.
        assert_eq!(a.telemetry().conciliator_selections(), 1);
        assert_eq!(a.telemetry().coin_selections(), 0);
    }

    #[test]
    fn adaptive_never_switches_on_empty_window() {
        let mut a = AdaptiveConsensus::new(2, AdaptiveOptions::default());
        for _ in 0..5 {
            a.reset();
            assert_eq!(a.selected(), ConciliatorKind::Impatient);
        }
        assert_eq!(a.telemetry().coin_selections(), 0);
    }

    #[test]
    fn adaptive_switches_when_measured_delta_degrades() {
        let mut a = AdaptiveConsensus::new(
            2,
            AdaptiveOptions {
                window: 8,
                min_samples: 4,
                delta_threshold: 0.5,
                ..AdaptiveOptions::default()
            },
        );
        // Simulate a hostile regime: decides burning 10 conciliator stages
        // each (δ̂ = 0.1, far below the 0.5 threshold).
        for _ in 0..4 {
            a.inner().telemetry.on_conciliator_stages(10);
        }
        let d = a.delta_hat().unwrap();
        assert!((d - 0.1).abs() < 1e-9, "δ̂ {d}");
        a.reset();
        assert_eq!(a.selected(), ConciliatorKind::Coin);
        assert_eq!(a.telemetry().coin_selections(), 1);
        // The impatient stages could not be recycled across the flip.
        assert_eq!(a.inner().stages_used(), 0);
        // A decide on the switched instance still works end to end.
        let mut rng = SmallRng::seed_from_u64(12);
        assert!(a.decide(1, &mut rng) <= 1);
    }

    #[test]
    fn adaptive_recovers_back_to_impatient() {
        let mut a = AdaptiveConsensus::new(
            2,
            AdaptiveOptions {
                window: 4,
                min_samples: 2,
                delta_threshold: 0.5,
                ..AdaptiveOptions::default()
            },
        );
        for _ in 0..4 {
            a.inner().telemetry.on_conciliator_stages(10);
        }
        a.reset();
        assert_eq!(a.selected(), ConciliatorKind::Coin);
        // Healthy regime: decides resolving in one conciliator stage.
        for _ in 0..4 {
            a.inner().telemetry.on_conciliator_stages(1);
        }
        a.reset();
        assert_eq!(a.selected(), ConciliatorKind::Impatient);
    }

    #[test]
    #[should_panic(expected = "requires ConciliatorChoice::Adaptive")]
    fn adaptive_wrapper_rejects_fixed_choice() {
        AdaptiveConsensus::from_consensus(Consensus::builder().n(2).build());
    }

    #[test]
    fn shared_options_are_not_recloned_per_instance() {
        let options = Arc::new(Consensus::multivalued_options(2, 8));
        let a = Consensus::with_shared_options_in(AtomicMemory, Arc::clone(&options));
        let b = Consensus::with_shared_options_in(AtomicMemory, Arc::clone(&options));
        assert!(Arc::ptr_eq(a.options_handle(), b.options_handle()));
        assert!(Arc::ptr_eq(
            &a.options_handle().scheme,
            &b.options_handle().scheme
        ));
    }
}
