//! Telemetry for the thread runtime: one shared handle per consensus
//! object (or per replicated log, covering all its slots).
//!
//! Counters and histograms are always on — they are relaxed atomics, cheap
//! next to real register contention — while structured [`TelemetryEvent`]
//! emission is gated on the attached [`Recorder`]: with the default
//! [`NoopRecorder`] the `events_on` flag is `false` and no event is ever
//! constructed.
//!
//! The batching service additionally *amortizes* recorder traffic: while a
//! `ConsensusService` drives an engine, per-decide events (`StageEntered`,
//! `Decided`, …) are suppressed on that engine's telemetry and the recorder
//! instead receives one `BatchDrained` summary per drained batch. Counters
//! and histograms keep their per-operation fidelity either way.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mc_telemetry::{
    thread_shard, CircuitState, ConciliatorKind, Counter, FaultClass, Gauge, Histogram,
    NoopRecorder, Recorder, ShardedCounter, Snapshot, StageKind, TelemetryEvent,
};

/// Hard cap on the δ̂ sliding window: samples older than this many decides
/// are discarded regardless of the window a caller asks for.
const DELTA_WINDOW_CAP: usize = 256;

/// Fixed-point scale for the `observed_delta_hat` gauge (δ̂ in millionths).
const DELTA_HAT_SCALE: f64 = 1_000_000.0;

/// Aggregated metrics plus an event sink for runtime consensus objects.
///
/// Obtain one from [`Consensus::telemetry`](crate::Consensus::telemetry) or
/// [`ReplicatedLog::telemetry`](crate::ReplicatedLog::telemetry); attach a
/// real recorder with the `with_recorder` constructors.
pub struct RuntimeTelemetry {
    recorder: Arc<dyn Recorder>,
    events_on: bool,
    /// Services currently amortizing this telemetry's recorder traffic;
    /// per-decide events flow only while this is zero.
    decide_event_amortizers: AtomicU64,
    decide_calls: Counter,
    decisions: Counter,
    fast_path_hits: Counter,
    stage_entries: ShardedCounter,
    rounds_to_decide: Histogram,
    decide_latency_ns: Histogram,
    conciliator_rounds: Histogram,
    max_conciliator_round: Gauge,
    coin_rounds: Histogram,
    conciliator_selections: Counter,
    coin_selections: Counter,
    observed_delta_hat: Gauge,
    /// Conciliator stages entered per completed decide, newest at the back.
    /// Feeds the sliding-window δ̂ estimate for adaptive selection.
    delta_window: Mutex<VecDeque<u64>>,
    prob_writes_attempted: ShardedCounter,
    prob_writes_performed: ShardedCounter,
    appends: Counter,
    slot_conflicts: Counter,
    pool_hits: Counter,
    pool_misses: Counter,
    instances_retired: Counter,
    faults_injected: Counter,
    lost_prob_writes: Counter,
    stale_reads: Counter,
    delayed_commits: Counter,
    register_resets: Counter,
    fallbacks_taken: Counter,
    proposals_enqueued: Counter,
    proposals_rejected: Counter,
    proposals_shed: Counter,
    batches_drained: Counter,
    queue_depth: Gauge,
    service_wait_ns: Histogram,
    worker_restarts: Counter,
    resubmitted_cells: Counter,
    circuit_state: Gauge,
    worker_recovery_ns: Histogram,
    applied_index: Gauge,
    commands_applied: Counter,
    sessions_created: Counter,
    duplicates_served: Counter,
    stale_commands: Counter,
    lease_grants: Counter,
    fast_reads: Counter,
    store_snapshots: Counter,
}

impl std::fmt::Debug for RuntimeTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuntimeTelemetry")
            .field("events_on", &self.events_on)
            .field("decide_calls", &self.decide_calls.get())
            .field("decisions", &self.decisions.get())
            .finish_non_exhaustive()
    }
}

impl RuntimeTelemetry {
    /// Telemetry for up to `n` processes, emitting events to `recorder`.
    pub fn new(n: usize, recorder: Arc<dyn Recorder>) -> RuntimeTelemetry {
        let events_on = recorder.enabled();
        RuntimeTelemetry {
            recorder,
            events_on,
            decide_event_amortizers: AtomicU64::new(0),
            decide_calls: Counter::new(),
            decisions: Counter::new(),
            fast_path_hits: Counter::new(),
            stage_entries: ShardedCounter::new(n),
            rounds_to_decide: Histogram::new(),
            decide_latency_ns: Histogram::new(),
            conciliator_rounds: Histogram::new(),
            max_conciliator_round: Gauge::new(),
            coin_rounds: Histogram::new(),
            conciliator_selections: Counter::new(),
            coin_selections: Counter::new(),
            observed_delta_hat: Gauge::new(),
            delta_window: Mutex::new(VecDeque::new()),
            prob_writes_attempted: ShardedCounter::new(n),
            prob_writes_performed: ShardedCounter::new(n),
            appends: Counter::new(),
            slot_conflicts: Counter::new(),
            pool_hits: Counter::new(),
            pool_misses: Counter::new(),
            instances_retired: Counter::new(),
            faults_injected: Counter::new(),
            lost_prob_writes: Counter::new(),
            stale_reads: Counter::new(),
            delayed_commits: Counter::new(),
            register_resets: Counter::new(),
            fallbacks_taken: Counter::new(),
            proposals_enqueued: Counter::new(),
            proposals_rejected: Counter::new(),
            proposals_shed: Counter::new(),
            batches_drained: Counter::new(),
            queue_depth: Gauge::new(),
            service_wait_ns: Histogram::new(),
            worker_restarts: Counter::new(),
            resubmitted_cells: Counter::new(),
            circuit_state: Gauge::new(),
            worker_recovery_ns: Histogram::new(),
            applied_index: Gauge::new(),
            commands_applied: Counter::new(),
            sessions_created: Counter::new(),
            duplicates_served: Counter::new(),
            stale_commands: Counter::new(),
            lease_grants: Counter::new(),
            fast_reads: Counter::new(),
            store_snapshots: Counter::new(),
        }
    }

    /// Telemetry with the do-nothing recorder (counters still live).
    pub fn noop(n: usize) -> RuntimeTelemetry {
        RuntimeTelemetry::new(n, Arc::new(NoopRecorder))
    }

    /// Whether structured events are being recorded.
    pub fn events_on(&self) -> bool {
        self.events_on
    }

    /// Whether per-decide events (`StageEntered`, `Decided`, …) reach the
    /// recorder. `false` either when no recorder is attached or while a
    /// batching service has this telemetry in amortized mode, where the
    /// recorder sees one `BatchDrained` summary per batch instead.
    pub fn decide_events_on(&self) -> bool {
        self.events_on && self.decide_event_amortizers.load(Ordering::Relaxed) == 0
    }

    /// Switches to amortized recorder traffic: per-decide events are
    /// suppressed; batch-level events and every counter/histogram stay
    /// live. Called by `ConsensusService` when it takes over an engine —
    /// paying a recorder serialization per operation on the worker's hot
    /// path would forfeit exactly the per-call overhead the service
    /// exists to amortize. Reference-counted: each call must be paired
    /// with one [`restore_decide_events`](Self::restore_decide_events),
    /// and per-decide events resume once every amortizer is gone.
    pub(crate) fn amortize_decide_events(&self) {
        self.decide_event_amortizers.fetch_add(1, Ordering::Relaxed);
    }

    /// Undoes one [`amortize_decide_events`](Self::amortize_decide_events)
    /// (the service calls this on shutdown); per-decide events flow again
    /// when no amortizer remains. Saturates at zero.
    pub(crate) fn restore_decide_events(&self) {
        let _ =
            self.decide_event_amortizers
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
    }

    /// The attached recorder.
    pub fn recorder(&self) -> &Arc<dyn Recorder> {
        &self.recorder
    }

    /// Flushes the attached recorder.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the recorder's sink.
    pub fn flush(&self) -> std::io::Result<()> {
        self.recorder.flush()
    }

    #[inline]
    fn pid() -> u64 {
        thread_shard() as u64
    }

    // --- emission hooks (crate-internal) ---

    #[inline]
    pub(crate) fn on_decide_start(&self) {
        self.decide_calls.incr();
    }

    #[inline]
    pub(crate) fn on_stage_entered(&self, stage: u64, kind: StageKind) {
        self.stage_entries.add_local(1);
        if self.decide_events_on() {
            self.recorder.record(&TelemetryEvent::StageEntered {
                pid: Self::pid(),
                stage,
                kind,
            });
        }
    }

    #[inline]
    pub(crate) fn on_ratifier_verdict(&self, stage: u64, decided: bool, value: u64) {
        if self.decide_events_on() {
            self.recorder.record(&TelemetryEvent::RatifierVerdict {
                pid: Self::pid(),
                stage,
                decided,
                value,
            });
        }
    }

    #[inline]
    pub(crate) fn on_decided(&self, value: u64, stage: u64, fast_path: bool, latency_ns: u64) {
        self.decisions.incr();
        self.rounds_to_decide.record(stage);
        self.decide_latency_ns.record(latency_ns);
        if fast_path {
            self.fast_path_hits.incr();
        }
        if self.decide_events_on() {
            let pid = Self::pid();
            if fast_path {
                self.recorder
                    .record(&TelemetryEvent::FastPathHit { pid, stage });
            }
            self.recorder.record(&TelemetryEvent::Decided {
                pid,
                value,
                stage,
                latency_ns,
            });
        }
    }

    #[inline]
    pub(crate) fn on_conciliator_round(&self, round: u64, probability: f64) {
        self.max_conciliator_round.record_max(round);
        if self.decide_events_on() {
            self.recorder.record(&TelemetryEvent::ConciliatorRound {
                pid: Self::pid(),
                round,
                probability,
            });
        }
    }

    #[inline]
    pub(crate) fn on_prob_write(&self, performed: bool, probability: f64) {
        self.prob_writes_attempted.add_local(1);
        if performed {
            self.prob_writes_performed.add_local(1);
        }
        if self.decide_events_on() {
            self.recorder.record(&TelemetryEvent::ProbWrite {
                pid: Self::pid(),
                performed,
                probability,
            });
        }
    }

    #[inline]
    pub(crate) fn on_propose_done(&self, rounds: u64) {
        self.conciliator_rounds.record(rounds);
    }

    /// A shared-coin flip completed after `rounds` voting rounds (0 for the
    /// local coin, which touches no shared registers).
    #[inline]
    pub(crate) fn on_coin_rounds(&self, rounds: u64) {
        self.coin_rounds.record(rounds);
    }

    /// A decide completed after entering `stages` conciliator stages; feeds
    /// the sliding window behind [`delta_hat_over`](Self::delta_hat_over).
    pub(crate) fn on_conciliator_stages(&self, stages: u64) {
        let mut window = self.delta_window.lock().expect("delta window poisoned");
        if window.len() == DELTA_WINDOW_CAP {
            window.pop_front();
        }
        window.push_back(stages);
    }

    /// A consensus instance resolved its conciliator portfolio choice.
    /// Emitted only on the adaptive path — fixed choices are not news.
    pub(crate) fn on_conciliator_selected(
        &self,
        generation: u64,
        choice: ConciliatorKind,
        delta_hat: Option<f64>,
        samples: u64,
    ) {
        self.conciliator_selections.incr();
        if choice == ConciliatorKind::Coin {
            self.coin_selections.incr();
        }
        if let Some(d) = delta_hat {
            self.observed_delta_hat
                .set((d.clamp(0.0, 1.0) * DELTA_HAT_SCALE) as u64);
        }
        if self.events_on {
            self.recorder.record(&TelemetryEvent::ConciliatorSelected {
                generation,
                choice,
                delta_hat,
                samples,
            });
        }
    }

    #[inline]
    pub(crate) fn on_fault_injected(&self, class: FaultClass, register: u64, step: u64) {
        self.faults_injected.incr();
        match class {
            FaultClass::LostProbWrite => self.lost_prob_writes.incr(),
            FaultClass::StaleRead => self.stale_reads.incr(),
            FaultClass::DelayedVisibility => self.delayed_commits.incr(),
            FaultClass::RegisterReset => self.register_resets.incr(),
        }
        if self.decide_events_on() {
            self.recorder.record(&TelemetryEvent::FaultInjected {
                class,
                register,
                step,
            });
        }
    }

    #[inline]
    pub(crate) fn on_fallback_taken(&self, conciliator_stages: u64) {
        self.fallbacks_taken.incr();
        if self.decide_events_on() {
            self.recorder.record(&TelemetryEvent::FallbackTaken {
                pid: Self::pid(),
                conciliator_stages,
            });
        }
    }

    // --- service hooks ---
    //
    // The batching service calls these from producers (enqueue/reject/shed)
    // and workers (batch drained, per-item wait). Everything here is a
    // relaxed-atomic counter or histogram bump except `on_batch_drained`,
    // which is the *one* structured event per batch — that is the telemetry
    // amortization: per-proposal costs stay O(1) stores, recorder traffic
    // is O(batches).

    /// A proposal was accepted into an intake ring. The queue-depth gauge
    /// is an aggregate over all rings, maintained by add/sub so producers
    /// and workers on different rings compose instead of overwriting each
    /// other.
    #[inline]
    pub(crate) fn on_proposal_enqueued(&self) {
        self.proposals_enqueued.incr();
        self.queue_depth.add(1);
    }

    /// `count` proposals left the intake rings — drained into a worker's
    /// batch, or cleared (and poisoned) by shutdown or a dying worker.
    #[inline]
    pub(crate) fn on_proposals_dequeued(&self, count: u64) {
        self.queue_depth.sub(count);
    }

    /// A proposal was refused at admission under `BackpressurePolicy::Reject`.
    #[inline]
    pub(crate) fn on_proposal_rejected(&self) {
        self.proposals_rejected.incr();
    }

    /// A proposal was dropped at admission under `BackpressurePolicy::Shed`.
    #[inline]
    pub(crate) fn on_proposal_shed(&self) {
        self.proposals_shed.incr();
    }

    /// A shard worker drained one batch of `batch` proposals; `queue_depth`
    /// is the depth it left behind in its ring (carried on the event — the
    /// gauge itself was already adjusted at drain time by
    /// [`on_proposals_dequeued`](Self::on_proposals_dequeued)).
    #[inline]
    pub(crate) fn on_batch_drained(&self, shard: u64, batch: u64, queue_depth: u64) {
        self.batches_drained.incr();
        if self.events_on {
            self.recorder.record(&TelemetryEvent::BatchDrained {
                shard,
                batch,
                queue_depth,
            });
        }
    }

    /// One proposal's submit→decision wall-clock wait, nanoseconds.
    #[inline]
    pub(crate) fn on_service_wait(&self, wait_ns: u64) {
        self.service_wait_ns.record(wait_ns);
    }

    /// `count` re-admitted proposals went back into an intake ring after a
    /// worker panic. The queue-depth gauge climbs back by `count` (the
    /// drain that preceded the panic already subtracted them);
    /// `proposals_enqueued` is *not* re-incremented — a re-admission is the
    /// same submission, so the enqueued ≡ decided + poisoned ledger holds.
    #[inline]
    pub(crate) fn on_proposals_requeued(&self, count: u64) {
        self.resubmitted_cells.add(count);
        self.queue_depth.add(count);
    }

    /// A supervised worker recovered from a panic and restarted its drain
    /// loop. Like `on_batch_drained`, this is a batch-level event: it flows
    /// to the recorder whenever events are on, amortized mode included.
    #[inline]
    pub(crate) fn on_worker_restart(&self, ring: u64, attempt: u64, resubmitted: u64, ns: u64) {
        self.worker_restarts.incr();
        self.worker_recovery_ns.record(ns);
        if self.events_on {
            self.recorder.record(&TelemetryEvent::WorkerRestarted {
                ring,
                attempt,
                resubmitted,
                recovery_ns: ns,
            });
        }
    }

    /// A service circuit breaker entered `state`.
    #[inline]
    pub(crate) fn on_circuit_transition(&self, state: CircuitState) {
        self.circuit_state.set(state.as_u64());
        if self.events_on {
            self.recorder
                .record(&TelemetryEvent::CircuitTransition { state });
        }
    }

    /// A consensus instance was served from the recycle pool.
    #[inline]
    pub(crate) fn on_pool_hit(&self) {
        self.pool_hits.incr();
    }

    /// A consensus instance had to be freshly constructed (empty pool).
    #[inline]
    pub(crate) fn on_pool_miss(&self) {
        self.pool_misses.incr();
    }

    /// A decided instance was reset and returned to the recycle pool.
    #[inline]
    pub(crate) fn on_instance_retired(&self) {
        self.instances_retired.incr();
    }

    #[inline]
    pub(crate) fn on_append(&self, slots_walked: u64) {
        self.appends.incr();
        // Every slot beyond the first means some other replica's command won
        // the slot this one was racing for.
        self.slot_conflicts.add(slots_walked.saturating_sub(1));
    }

    // --- store-layer hooks (public: `mc-store` is a separate crate) ---

    /// The store's apply worker applied `count` commands, leaving the
    /// contiguous applied prefix at `applied_index` entries.
    #[inline]
    pub fn on_commands_applied(&self, count: u64, applied_index: u64) {
        self.commands_applied.add(count);
        self.applied_index.set(applied_index);
    }

    /// A store session table admitted a client id it had not seen.
    #[inline]
    pub fn on_session_created(&self) {
        self.sessions_created.incr();
    }

    /// A duplicate command (same client, same sequence number) was
    /// answered from the session table's cached response without
    /// re-applying.
    #[inline]
    pub fn on_duplicate_served(&self) {
        self.duplicates_served.incr();
    }

    /// A command arrived with a sequence number *below* the session's
    /// last applied one — too stale for even the cached response.
    #[inline]
    pub fn on_stale_command(&self) {
        self.stale_commands.incr();
    }

    /// A client session was granted (or re-granted) a read lease valid
    /// for `ttl_ns`; `renewed` is false for the session's first lease.
    #[inline]
    pub fn on_lease_granted(&self, client: u64, renewed: bool, ttl_ns: u64) {
        self.lease_grants.incr();
        if self.events_on {
            self.recorder.record(&TelemetryEvent::ReadLease {
                client,
                renewed,
                ttl_ns,
            });
        }
    }

    /// A read was served from the applied state under a live lease,
    /// without occupying a log slot.
    #[inline]
    pub fn on_fast_read(&self) {
        self.fast_reads.incr();
    }

    /// The store captured a state-machine snapshot and compacted the log
    /// below the applied index.
    #[inline]
    pub fn on_store_snapshot(&self) {
        self.store_snapshots.incr();
    }

    // --- accessors ---

    /// `decide` calls started.
    pub fn decide_calls(&self) -> u64 {
        self.decide_calls.get()
    }

    /// `decide` calls completed.
    pub fn decisions(&self) -> u64 {
        self.decisions.get()
    }

    /// Decisions that never left the leading ratifier pair.
    pub fn fast_path_hits(&self) -> u64 {
        self.fast_path_hits.get()
    }

    /// Fraction of decisions that used only the fast path (0 when none).
    pub fn fast_path_rate(&self) -> f64 {
        let decided = self.decisions();
        if decided == 0 {
            0.0
        } else {
            self.fast_path_hits() as f64 / decided as f64
        }
    }

    /// Total stage entries across all threads.
    pub fn stage_entries(&self) -> u64 {
        self.stage_entries.total()
    }

    /// Distribution of the stage index at which calls decided.
    pub fn rounds_to_decide(&self) -> &Histogram {
        &self.rounds_to_decide
    }

    /// Distribution of wall-clock `decide` latency in nanoseconds.
    pub fn decide_latency_ns(&self) -> &Histogram {
        &self.decide_latency_ns
    }

    /// Distribution of probability-doubling rounds per conciliator call.
    pub fn conciliator_rounds(&self) -> &Histogram {
        &self.conciliator_rounds
    }

    /// Largest probability-doubling round index any call reached.
    pub fn max_conciliator_round(&self) -> u64 {
        self.max_conciliator_round.max()
    }

    /// Distribution of voting rounds per shared-coin flip.
    pub fn coin_rounds(&self) -> &Histogram {
        &self.coin_rounds
    }

    /// Adaptive conciliator selections resolved (any outcome).
    pub fn conciliator_selections(&self) -> u64 {
        self.conciliator_selections.get()
    }

    /// Adaptive selections that chose the coin conciliator.
    pub fn coin_selections(&self) -> u64 {
        self.coin_selections.get()
    }

    /// Latest δ̂ published by an adaptive selection, or `None` before any
    /// selection had enough samples to estimate one.
    pub fn observed_delta_hat(&self) -> Option<f64> {
        match self.observed_delta_hat.get() {
            0 => None,
            ppm => Some(ppm as f64 / DELTA_HAT_SCALE),
        }
    }

    /// Number of per-decide samples currently in the δ̂ sliding window.
    pub fn delta_samples(&self) -> u64 {
        self.delta_window
            .lock()
            .expect("delta window poisoned")
            .len() as u64
    }

    /// Sliding-window estimate of the per-stage agreement probability δ̂
    /// over the most recent `window` decides.
    ///
    /// Each decide that entered `k ≥ 1` conciliator stages is a geometric
    /// sample with success probability δ, so the maximum-likelihood
    /// estimate over the window is `#decides / Σ stages`. Returns `None`
    /// when fewer than `max(min_samples, 1)` decides have been observed —
    /// an empty or thin window never produces an estimate (and therefore
    /// never triggers an adaptive switch). Decides that never entered a
    /// conciliator (pure fast path) contribute zero stages; a window of
    /// only those yields `Some(1.0)`.
    pub fn delta_hat_over(&self, window: usize, min_samples: usize) -> Option<f64> {
        let guard = self.delta_window.lock().expect("delta window poisoned");
        let take = window.min(guard.len());
        if take < min_samples.max(1) {
            return None;
        }
        let total: u64 = guard.iter().rev().take(take).sum();
        if total == 0 {
            return Some(1.0);
        }
        Some(take as f64 / total as f64)
    }

    /// Probabilistic writes attempted (coin flips).
    pub fn prob_writes_attempted(&self) -> u64 {
        self.prob_writes_attempted.total()
    }

    /// Probabilistic writes whose coin landed.
    pub fn prob_writes_performed(&self) -> u64 {
        self.prob_writes_performed.total()
    }

    /// Replicated-log appends completed.
    pub fn appends(&self) -> u64 {
        self.appends.get()
    }

    /// Slots lost to another replica's command before an append landed.
    pub fn slot_conflicts(&self) -> u64 {
        self.slot_conflicts.get()
    }

    /// Consensus instances served from the recycle pool.
    pub fn pool_hits(&self) -> u64 {
        self.pool_hits.get()
    }

    /// Consensus instances constructed because the pool was empty.
    pub fn pool_misses(&self) -> u64 {
        self.pool_misses.get()
    }

    /// Fraction of instance activations served from the pool (0 when no
    /// instance was ever activated).
    pub fn pool_hit_rate(&self) -> f64 {
        let total = self.pool_hits() + self.pool_misses();
        if total == 0 {
            0.0
        } else {
            self.pool_hits() as f64 / total as f64
        }
    }

    /// Decided instances reset and returned to the recycle pool.
    pub fn instances_retired(&self) -> u64 {
        self.instances_retired.get()
    }

    /// Instances currently live (activated but not yet retired). Every
    /// activation is a pool hit or a pool miss, so live = hits + misses −
    /// retired.
    pub fn live_instances(&self) -> u64 {
        (self.pool_hits() + self.pool_misses()).saturating_sub(self.instances_retired())
    }

    /// Upper bound on the median wall-clock `decide` latency, nanoseconds.
    pub fn decide_latency_p50_ns(&self) -> u64 {
        self.decide_latency_ns.quantile_upper(0.50)
    }

    /// Upper bound on the 99th-percentile `decide` latency, nanoseconds.
    pub fn decide_latency_p99_ns(&self) -> u64 {
        self.decide_latency_ns.quantile_upper(0.99)
    }

    /// Memory faults delivered by an attached `FaultyMemory`, all classes.
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected.get()
    }

    /// Probabilistic writes whose coin fired but whose store was dropped.
    pub fn lost_prob_writes(&self) -> u64 {
        self.lost_prob_writes.get()
    }

    /// Reads served a stale (previous) value.
    pub fn stale_reads(&self) -> u64 {
        self.stale_reads.get()
    }

    /// Writes whose visibility was delayed.
    pub fn delayed_commits(&self) -> u64 {
        self.delayed_commits.get()
    }

    /// Registers wiped back to ⊥.
    pub fn register_resets(&self) -> u64 {
        self.register_resets.get()
    }

    /// Bounded-consensus calls that exhausted every conciliator stage and
    /// fell back to the backup protocol `K`.
    pub fn fallbacks_taken(&self) -> u64 {
        self.fallbacks_taken.get()
    }

    /// Proposals accepted into a service intake ring.
    pub fn proposals_enqueued(&self) -> u64 {
        self.proposals_enqueued.get()
    }

    /// Proposals refused at admission (`BackpressurePolicy::Reject`).
    pub fn proposals_rejected(&self) -> u64 {
        self.proposals_rejected.get()
    }

    /// Proposals dropped at admission (`BackpressurePolicy::Shed`).
    pub fn proposals_shed(&self) -> u64 {
        self.proposals_shed.get()
    }

    /// Batches drained by service shard workers.
    pub fn batches_drained(&self) -> u64 {
        self.batches_drained.get()
    }

    /// Proposals currently enqueued across *all* intake rings (aggregate,
    /// not any single ring's depth).
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.get()
    }

    /// Largest aggregate intake-ring depth ever observed.
    pub fn max_queue_depth_seen(&self) -> u64 {
        self.queue_depth.max()
    }

    /// Distribution of submit→decision wall-clock waits through the
    /// service, nanoseconds.
    pub fn service_wait_ns(&self) -> &Histogram {
        &self.service_wait_ns
    }

    /// Upper bound on the median submit→decision wait, nanoseconds.
    pub fn service_wait_p50_ns(&self) -> u64 {
        self.service_wait_ns.quantile_upper(0.50)
    }

    /// Upper bound on the 99th-percentile submit→decision wait, nanoseconds.
    pub fn service_wait_p99_ns(&self) -> u64 {
        self.service_wait_ns.quantile_upper(0.99)
    }

    /// Worker panics a supervisor recovered from (drain loop restarted).
    pub fn worker_restarts(&self) -> u64 {
        self.worker_restarts.get()
    }

    /// Queued-but-unsubmitted cells re-admitted after worker panics.
    pub fn resubmitted_cells(&self) -> u64 {
        self.resubmitted_cells.get()
    }

    /// Current circuit-breaker state (numeric: closed 0, open 1, half-open
    /// 2; see [`mc_telemetry::CircuitState::as_u64`]).
    pub fn circuit_state(&self) -> u64 {
        self.circuit_state.get()
    }

    /// Distribution of panic-catch → drain-loop-reentry recovery latency,
    /// nanoseconds.
    pub fn worker_recovery_ns(&self) -> &Histogram {
        &self.worker_recovery_ns
    }

    /// Length of the store's contiguous applied prefix (entries applied to
    /// the state machine).
    pub fn applied_index(&self) -> u64 {
        self.applied_index.get()
    }

    /// Commands applied to the store's state machine (duplicates excluded).
    pub fn commands_applied(&self) -> u64 {
        self.commands_applied.get()
    }

    /// Distinct client sessions the store's session table has admitted.
    pub fn sessions_created(&self) -> u64 {
        self.sessions_created.get()
    }

    /// Duplicate commands answered from the session table's cached
    /// response instead of re-applying.
    pub fn duplicates_served(&self) -> u64 {
        self.duplicates_served.get()
    }

    /// Commands refused because their sequence number predates the
    /// session's cached response.
    pub fn stale_commands(&self) -> u64 {
        self.stale_commands.get()
    }

    /// Read leases granted or renewed.
    pub fn lease_grants(&self) -> u64 {
        self.lease_grants.get()
    }

    /// Reads served from the applied state under a live lease (no log
    /// slot consumed).
    pub fn fast_reads(&self) -> u64 {
        self.fast_reads.get()
    }

    /// State-machine snapshots captured (each rides a `compact_below`).
    pub fn store_snapshots(&self) -> u64 {
        self.store_snapshots.get()
    }

    /// Upper bound on the median worker recovery latency, nanoseconds.
    pub fn worker_recovery_p50_ns(&self) -> u64 {
        self.worker_recovery_ns.quantile_upper(0.50)
    }

    /// Upper bound on the 99th-percentile worker recovery latency,
    /// nanoseconds.
    pub fn worker_recovery_p99_ns(&self) -> u64 {
        self.worker_recovery_ns.quantile_upper(0.99)
    }

    /// A frozen copy of every metric, ready for text/JSON/Prometheus
    /// export.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::new();
        snap.counter("decide_calls", self.decide_calls())
            .counter("decisions", self.decisions())
            .counter("fast_path_hits", self.fast_path_hits())
            .counter("stage_entries", self.stage_entries())
            .counter("prob_writes_attempted", self.prob_writes_attempted())
            .counter("prob_writes_performed", self.prob_writes_performed())
            .counter("appends", self.appends())
            .counter("slot_conflicts", self.slot_conflicts())
            .counter("pool_hits", self.pool_hits())
            .counter("pool_misses", self.pool_misses())
            .counter("instances_retired", self.instances_retired())
            .counter("faults_injected", self.faults_injected())
            .counter("faults_lost_prob_writes", self.lost_prob_writes())
            .counter("faults_stale_reads", self.stale_reads())
            .counter("faults_delayed_commits", self.delayed_commits())
            .counter("faults_register_resets", self.register_resets())
            .counter("fallbacks_taken", self.fallbacks_taken())
            .counter("conciliator_selections", self.conciliator_selections())
            .counter("coin_selections", self.coin_selections())
            .counter("proposals_enqueued", self.proposals_enqueued())
            .counter("proposals_rejected", self.proposals_rejected())
            .counter("proposals_shed", self.proposals_shed())
            .counter("batches_drained", self.batches_drained())
            .counter("worker_restarts", self.worker_restarts())
            .counter("resubmitted_cells", self.resubmitted_cells())
            .counter("commands_applied", self.commands_applied())
            .counter("sessions_created", self.sessions_created())
            .counter("duplicates_served", self.duplicates_served())
            .counter("stale_commands", self.stale_commands())
            .counter("lease_grants", self.lease_grants())
            .counter("fast_reads", self.fast_reads())
            .counter("store_snapshots", self.store_snapshots())
            .gauge(
                "applied_index",
                self.applied_index(),
                self.applied_index.max(),
            )
            .gauge(
                "circuit_state",
                self.circuit_state(),
                self.circuit_state.max(),
            )
            .gauge(
                "max_conciliator_round",
                self.max_conciliator_round.get(),
                self.max_conciliator_round(),
            )
            .gauge(
                "observed_delta_hat_ppm",
                self.observed_delta_hat.get(),
                self.observed_delta_hat.max(),
            )
            .gauge(
                "live_instances",
                self.live_instances(),
                self.live_instances(),
            )
            .gauge(
                "queue_depth",
                self.queue_depth(),
                self.max_queue_depth_seen(),
            )
            .histogram("rounds_to_decide", self.rounds_to_decide.snapshot())
            .histogram("decide_latency_ns", self.decide_latency_ns.snapshot())
            .histogram("conciliator_rounds", self.conciliator_rounds.snapshot())
            .histogram("coin_rounds", self.coin_rounds.snapshot())
            .histogram("service_wait_ns", self.service_wait_ns.snapshot())
            .histogram("worker_recovery_ns", self.worker_recovery_ns.snapshot());
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_telemetry::AggregatingRecorder;

    #[test]
    fn noop_telemetry_still_counts() {
        let t = RuntimeTelemetry::noop(4);
        assert!(!t.events_on());
        t.on_decide_start();
        t.on_stage_entered(0, StageKind::Ratifier);
        t.on_prob_write(true, 0.5);
        t.on_decided(1, 2, false, 500);
        assert_eq!(t.decide_calls(), 1);
        assert_eq!(t.decisions(), 1);
        assert_eq!(t.stage_entries(), 1);
        assert_eq!(t.prob_writes_attempted(), 1);
        assert_eq!(t.prob_writes_performed(), 1);
        assert_eq!(t.fast_path_hits(), 0);
        assert_eq!(t.rounds_to_decide().max(), 2);
    }

    #[test]
    fn events_flow_to_recorder() {
        let agg = Arc::new(AggregatingRecorder::new());
        let t = RuntimeTelemetry::new(2, Arc::clone(&agg) as Arc<dyn Recorder>);
        assert!(t.events_on());
        t.on_stage_entered(0, StageKind::Conciliator);
        t.on_conciliator_round(3, 0.25);
        t.on_prob_write(false, 0.25);
        t.on_decided(0, 4, true, 1_000);
        assert_eq!(agg.stage_entries(), 1);
        assert_eq!(agg.conciliator_rounds(), 1);
        assert_eq!(agg.max_round(), 3);
        assert_eq!(agg.prob_writes_attempted(), 1);
        assert_eq!(agg.prob_writes_performed(), 0);
        assert_eq!(agg.fast_path_hits(), 1);
        assert_eq!(agg.decisions(), 1);
    }

    #[test]
    fn amortized_mode_suppresses_decide_events_but_not_counters() {
        let agg = Arc::new(AggregatingRecorder::new());
        let t = RuntimeTelemetry::new(2, Arc::clone(&agg) as Arc<dyn Recorder>);
        assert!(t.decide_events_on());
        t.amortize_decide_events();
        assert!(t.events_on(), "batch-level events stay live");
        assert!(!t.decide_events_on());
        t.on_decide_start();
        t.on_stage_entered(0, StageKind::Ratifier);
        t.on_decided(1, 2, false, 500);
        // Recorder saw nothing per-decide; batch summaries still flow.
        assert_eq!(agg.stage_entries(), 0);
        assert_eq!(agg.decisions(), 0);
        t.on_batch_drained(0, 7, 12);
        assert_eq!(agg.batches_drained(), 1);
        assert_eq!(agg.batched_proposals(), 7);
        // Counters and histograms never switch off.
        assert_eq!(t.decisions(), 1);
        assert_eq!(t.stage_entries(), 1);
        // Restoring hands per-decide events back to the recorder.
        t.restore_decide_events();
        assert!(t.decide_events_on());
        t.on_decided(1, 2, false, 500);
        assert_eq!(agg.decisions(), 1);
    }

    #[test]
    fn amortization_is_refcounted_and_saturates() {
        let agg = Arc::new(AggregatingRecorder::new());
        let t = RuntimeTelemetry::new(2, Arc::clone(&agg) as Arc<dyn Recorder>);
        t.amortize_decide_events();
        t.amortize_decide_events();
        t.restore_decide_events();
        assert!(
            !t.decide_events_on(),
            "one amortizer left: still suppressed"
        );
        t.restore_decide_events();
        assert!(t.decide_events_on());
        // Over-restoring saturates at zero rather than wrapping.
        t.restore_decide_events();
        assert!(t.decide_events_on());
        t.amortize_decide_events();
        assert!(!t.decide_events_on());
    }

    #[test]
    fn fault_and_fallback_hooks_count_and_emit() {
        let agg = Arc::new(AggregatingRecorder::new());
        let t = RuntimeTelemetry::new(2, Arc::clone(&agg) as Arc<dyn Recorder>);
        t.on_fault_injected(FaultClass::LostProbWrite, 3, 10);
        t.on_fault_injected(FaultClass::StaleRead, 1, 11);
        t.on_fault_injected(FaultClass::StaleRead, 1, 12);
        t.on_fallback_taken(6);
        assert_eq!(t.faults_injected(), 3);
        assert_eq!(t.lost_prob_writes(), 1);
        assert_eq!(t.stale_reads(), 2);
        assert_eq!(t.delayed_commits(), 0);
        assert_eq!(t.register_resets(), 0);
        assert_eq!(t.fallbacks_taken(), 1);
        assert_eq!(agg.faults_injected(), 3);
        assert_eq!(agg.fallbacks_taken(), 1);
        let snap = t.snapshot();
        assert_eq!(snap.counter_value("faults_injected"), Some(3));
        assert_eq!(snap.counter_value("faults_stale_reads"), Some(2));
        assert_eq!(snap.counter_value("fallbacks_taken"), Some(1));
    }

    #[test]
    fn append_tracking_counts_conflicts() {
        let t = RuntimeTelemetry::noop(2);
        t.on_append(1);
        t.on_append(3);
        assert_eq!(t.appends(), 2);
        assert_eq!(t.slot_conflicts(), 2);
    }

    #[test]
    fn pool_counters_track_hit_rate_and_live_instances() {
        let t = RuntimeTelemetry::noop(2);
        t.on_pool_miss();
        t.on_pool_hit();
        t.on_pool_hit();
        t.on_instance_retired();
        assert_eq!(t.pool_hits(), 2);
        assert_eq!(t.pool_misses(), 1);
        assert!((t.pool_hit_rate() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(t.instances_retired(), 1);
        assert_eq!(t.live_instances(), 2);
        let snap = t.snapshot();
        assert_eq!(snap.counter_value("pool_hits"), Some(2));
        assert_eq!(snap.counter_value("pool_misses"), Some(1));
        assert_eq!(snap.counter_value("instances_retired"), Some(1));
    }

    #[test]
    fn service_hooks_count_and_emit_batch_events() {
        let agg = Arc::new(AggregatingRecorder::new());
        let t = RuntimeTelemetry::new(2, Arc::clone(&agg) as Arc<dyn Recorder>);
        t.on_proposal_enqueued();
        t.on_proposal_enqueued();
        t.on_proposal_rejected();
        t.on_proposal_shed();
        t.on_proposals_dequeued(2);
        t.on_batch_drained(0, 2, 0);
        t.on_service_wait(5_000);
        t.on_service_wait(9_000);
        assert_eq!(t.proposals_enqueued(), 2);
        assert_eq!(t.proposals_rejected(), 1);
        assert_eq!(t.proposals_shed(), 1);
        assert_eq!(t.batches_drained(), 1);
        assert_eq!(t.queue_depth(), 0);
        assert_eq!(t.max_queue_depth_seen(), 2);
        assert_eq!(t.service_wait_ns().count(), 2);
        assert_eq!(agg.batches_drained(), 1);
        let snap = t.snapshot();
        assert_eq!(snap.counter_value("proposals_enqueued"), Some(2));
        assert_eq!(snap.counter_value("batches_drained"), Some(1));
        assert_eq!(snap.histogram_value("service_wait_ns").unwrap().count, 2);
        mc_telemetry::json::validate(&snap.to_json()).unwrap();
    }

    #[test]
    fn supervision_hooks_count_emit_and_snapshot() {
        let agg = Arc::new(AggregatingRecorder::new());
        let t = RuntimeTelemetry::new(2, Arc::clone(&agg) as Arc<dyn Recorder>);
        // Requeue puts depth back without touching proposals_enqueued.
        t.on_proposal_enqueued();
        t.on_proposals_dequeued(1);
        t.on_proposals_requeued(1);
        assert_eq!(t.proposals_enqueued(), 1);
        assert_eq!(t.queue_depth(), 1);
        assert_eq!(t.resubmitted_cells(), 1);
        t.on_worker_restart(0, 1, 1, 5_000);
        t.on_circuit_transition(CircuitState::Open);
        t.on_circuit_transition(CircuitState::HalfOpen);
        t.on_circuit_transition(CircuitState::Closed);
        assert_eq!(t.worker_restarts(), 1);
        assert_eq!(t.worker_recovery_ns().count(), 1);
        assert!(t.worker_recovery_p99_ns() >= 5_000);
        assert_eq!(t.circuit_state(), 0);
        assert_eq!(agg.worker_restarts(), 1);
        assert_eq!(agg.resubmitted_cells(), 1);
        assert_eq!(agg.circuit_transitions(), 3);
        let snap = t.snapshot();
        assert_eq!(snap.counter_value("worker_restarts"), Some(1));
        assert_eq!(snap.counter_value("resubmitted_cells"), Some(1));
        assert_eq!(snap.histogram_value("worker_recovery_ns").unwrap().count, 1);
        mc_telemetry::json::validate(&snap.to_json()).unwrap();
    }

    #[test]
    fn restart_events_flow_even_in_amortized_mode() {
        let agg = Arc::new(AggregatingRecorder::new());
        let t = RuntimeTelemetry::new(2, Arc::clone(&agg) as Arc<dyn Recorder>);
        t.amortize_decide_events();
        t.on_worker_restart(1, 1, 4, 800);
        t.on_circuit_transition(CircuitState::Open);
        // Like batch_drained, supervision events are batch-level: they are
        // exactly what the amortized mode exists to keep.
        assert_eq!(agg.worker_restarts(), 1);
        assert_eq!(agg.circuit_transitions(), 1);
        t.restore_decide_events();
    }

    #[test]
    fn decide_latency_percentiles_are_exposed() {
        let t = RuntimeTelemetry::noop(2);
        for latency in [100, 200, 400, 800, 100_000] {
            t.on_decided(1, 1, false, latency);
        }
        let p50 = t.decide_latency_p50_ns();
        let p99 = t.decide_latency_p99_ns();
        assert!(p50 >= 200, "p50 {p50}");
        assert!(p99 >= 100_000, "p99 {p99}");
        assert!(p50 <= p99);
    }

    #[test]
    fn delta_window_estimates_and_guards_thin_samples() {
        let t = RuntimeTelemetry::noop(2);
        // Empty window: never an estimate, regardless of min_samples.
        assert_eq!(t.delta_hat_over(32, 0), None);
        assert_eq!(t.delta_samples(), 0);
        // Four decides taking 2 stages each: δ̂ = 4 / 8 = 0.5.
        for _ in 0..4 {
            t.on_conciliator_stages(2);
        }
        assert_eq!(t.delta_samples(), 4);
        assert_eq!(t.delta_hat_over(32, 8), None, "below min_samples");
        let d = t.delta_hat_over(32, 4).unwrap();
        assert!((d - 0.5).abs() < 1e-9, "δ̂ {d}");
        // A narrower window only sees the most recent samples.
        t.on_conciliator_stages(10);
        let recent = t.delta_hat_over(1, 1).unwrap();
        assert!((recent - 0.1).abs() < 1e-9, "δ̂ {recent}");
        // All-fast-path windows read as perfect agreement.
        let t2 = RuntimeTelemetry::noop(2);
        t2.on_conciliator_stages(0);
        assert_eq!(t2.delta_hat_over(8, 1), Some(1.0));
    }

    #[test]
    fn delta_window_is_bounded() {
        let t = RuntimeTelemetry::noop(2);
        for _ in 0..(super::DELTA_WINDOW_CAP + 10) {
            t.on_conciliator_stages(1);
        }
        assert_eq!(t.delta_samples(), super::DELTA_WINDOW_CAP as u64);
    }

    #[test]
    fn conciliator_selection_counts_emits_and_gauges() {
        let agg = Arc::new(AggregatingRecorder::new());
        let t = RuntimeTelemetry::new(2, Arc::clone(&agg) as Arc<dyn Recorder>);
        assert_eq!(t.observed_delta_hat(), None);
        t.on_conciliator_selected(1, ConciliatorKind::Impatient, None, 0);
        t.on_conciliator_selected(2, ConciliatorKind::Coin, Some(0.125), 16);
        assert_eq!(t.conciliator_selections(), 2);
        assert_eq!(t.coin_selections(), 1);
        let d = t.observed_delta_hat().unwrap();
        assert!((d - 0.125).abs() < 1e-6, "δ̂ {d}");
        assert_eq!(agg.conciliator_selections(), 2);
        assert_eq!(agg.coin_selections(), 1);
        let snap = t.snapshot();
        assert_eq!(snap.counter_value("conciliator_selections"), Some(2));
        assert_eq!(snap.counter_value("coin_selections"), Some(1));
        mc_telemetry::json::validate(&snap.to_json()).unwrap();
    }

    #[test]
    fn coin_rounds_histogram_records() {
        let t = RuntimeTelemetry::noop(2);
        t.on_coin_rounds(9);
        t.on_coin_rounds(12);
        assert_eq!(t.coin_rounds().count(), 2);
        assert!(t.coin_rounds().max() >= 12);
    }

    #[test]
    fn snapshot_covers_the_metric_set() {
        let t = RuntimeTelemetry::noop(2);
        t.on_decide_start();
        t.on_decided(1, 1, true, 100);
        let snap = t.snapshot();
        assert_eq!(snap.counter_value("decide_calls"), Some(1));
        assert_eq!(snap.counter_value("fast_path_hits"), Some(1));
        assert_eq!(snap.histogram_value("rounds_to_decide").unwrap().count, 1);
        mc_telemetry::json::validate(&snap.to_json()).unwrap();
    }
}
