//! Weak shared coins on real atomics, and the Theorem 6 conciliator
//! built from them (§5.1).
//!
//! A *weak shared coin* with agreement parameter `δ > 0` is a protocol in
//! which each thread obtains a bit such that, against any adversary, the
//! probability that all threads obtain 0 and the probability that all obtain
//! 1 are each at least `δ`. [`CoinConciliator`] wraps any
//! [`WeakSharedCoin`] into a binary conciliator at a cost of exactly two
//! extra registers and two extra operations (Theorem 6).
//!
//! Two coins ship with the runtime:
//!
//! * [`LocalCoin`] — every thread flips its own fair coin. Free, but the
//!   agreement parameter is only `2^{1-n}` and holds only against
//!   adversaries that cannot react to the flips; it is the baseline the
//!   shared coins are measured against.
//! * [`VotingCoin`] — majority voting over per-thread tally registers in
//!   the style of Aspnes–Herlihy, the runtime twin of `mc-core`'s
//!   `VotingSharedCoin`. Constant `δ` against the *adaptive* adversary at
//!   `Θ(n³)` total work.
//!
//! The shared-memory objects mirror their model-side specs operation for
//! operation and coin-draw for coin-draw, so lab runs on an instrumented
//! [`SharedMemory`] substrate are directly comparable to simulator and
//! model-checker executions (see `mc-lab`'s `check_coin_conformance`).

use std::sync::Arc;

use rand::{Rng, RngExt};

use crate::conciliator::Conciliator;
use crate::register::{AtomicMemory, SharedMemory, SharedRegister};
use crate::telemetry::RuntimeTelemetry;

/// A weak shared coin as a thread-safe runtime object.
///
/// One-shot semantics: each thread calls [`flip`](WeakSharedCoin::flip) at
/// most once per object instance; [`reset`](WeakSharedCoin::reset) recycles
/// the instance under exclusive access.
pub trait WeakSharedCoin<M: SharedMemory>: Send + Sync {
    /// Runs the coin as thread `pid` and returns a bit.
    ///
    /// Coins with per-thread shared state (e.g. [`VotingCoin`]'s tally
    /// registers) require `pid` to be unique per calling thread and below
    /// the configured thread count; coins without it ignore `pid`.
    fn flip(&self, pid: usize, rng: &mut dyn Rng) -> u64;

    /// Recycles this one-shot object for a fresh instance.
    ///
    /// Exclusive access (`&mut`) guarantees no `flip` call is in flight.
    fn reset(&mut self);

    /// Number of shared registers this coin touches.
    fn register_count(&self) -> u64;

    /// Stable display name for telemetry and diagnostics.
    fn name(&self) -> &'static str;
}

/// Which weak shared coin a [`ConciliatorChoice`](crate::ConciliatorChoice)
/// plugs into the Theorem 6 wrapper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoinKind {
    /// [`LocalCoin`]: free, weak-adversary only.
    Local,
    /// [`VotingCoin`] with quorum `quorum_factor · n²`: adaptive-adversary
    /// robust at `Θ(n³)` total work.
    Voting {
        /// Vote quorum as a multiple of `n²`. Must be positive.
        quorum_factor: u32,
    },
}

impl CoinKind {
    /// The default voting coin (quorum `4·n²`), matching
    /// `VotingSharedCoin::new()` on the model side.
    pub fn voting() -> CoinKind {
        CoinKind::Voting { quorum_factor: 4 }
    }

    /// Stable display name for telemetry and bench reports.
    pub fn name(&self) -> &'static str {
        match self {
            CoinKind::Local => "local-coin",
            CoinKind::Voting { .. } => "voting-coin",
        }
    }
}

/// The trivial coin: every thread flips its own fair local coin.
///
/// No shared state at all, so the "agreement" is pure luck: all `n` threads
/// agree with probability `2^{1-n}`, and only against adversaries that
/// cannot observe the flips (a weak, oblivious scheduler). Useful as the
/// zero-cost baseline in the coin portfolio and for tests that need a coin
/// with no register footprint.
#[derive(Debug, Default, Clone, Copy)]
pub struct LocalCoin;

impl LocalCoin {
    /// Creates the local coin.
    pub fn new() -> LocalCoin {
        LocalCoin
    }
}

impl<M: SharedMemory> WeakSharedCoin<M> for LocalCoin {
    fn flip(&self, _pid: usize, rng: &mut dyn Rng) -> u64 {
        u64::from(rng.random_bool(0.5))
    }

    fn reset(&mut self) {}

    fn register_count(&self) -> u64 {
        0
    }

    fn name(&self) -> &'static str {
        "local-coin"
    }
}

const SUM_OFFSET: i64 = 1 << 31;

/// Packs a (vote count, tally sum) pair into one register word.
///
/// Must match `mc-core`'s `VotingSharedCoin` packing exactly: the lab
/// conformance harness compares written values word for word.
fn pack(count: u32, sum: i64) -> u64 {
    debug_assert!(sum.unsigned_abs() < (1 << 31));
    ((count as u64) << 32) | ((sum + SUM_OFFSET) as u64 & 0xFFFF_FFFF)
}

/// Inverse of [`pack`].
fn unpack(word: u64) -> (u32, i64) {
    let count = (word >> 32) as u32;
    let sum = (word & 0xFFFF_FFFF) as i64 - SUM_OFFSET;
    (count, sum)
}

/// A weak shared coin by majority voting over per-thread tally registers,
/// in the style of Aspnes–Herlihy — the runtime twin of `mc-core`'s
/// `VotingSharedCoin`.
///
/// Each thread repeatedly flips a local ±1 vote, adds it to a running tally
/// in its own register, and collects all tallies; once the total number of
/// votes reaches the quorum `T = factor·n²`, it returns the sign of the
/// total sum. Views of the sum differ by at most `n` (one unwritten vote
/// per thread), and the sum of `T` fair votes lands outside `[−n, n]` with
/// constant probability, so all threads see the same sign with constant
/// `δ` — even against the adaptive adversary.
pub struct VotingCoin<M: SharedMemory = AtomicMemory> {
    tallies: Vec<M::Reg>,
    quorum: u64,
    quorum_factor: u32,
    telemetry: Option<Arc<RuntimeTelemetry>>,
}

impl VotingCoin {
    /// Creates a voting coin for `n` threads with the default quorum
    /// `4·n²`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> VotingCoin {
        VotingCoin::with_quorum_factor_in(&AtomicMemory, n, 4)
    }
}

impl<M: SharedMemory> VotingCoin<M> {
    /// Creates a voting coin for `n` threads with quorum `factor·n²`,
    /// allocating its `n` tally registers in `memory`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `factor == 0`.
    pub fn with_quorum_factor_in(memory: &M, n: usize, factor: u32) -> VotingCoin<M> {
        assert!(n > 0, "need at least one thread");
        assert!(factor > 0, "quorum factor must be positive");
        VotingCoin {
            tallies: (0..n).map(|_| memory.alloc()).collect(),
            quorum: (factor as u64) * (n as u64) * (n as u64),
            quorum_factor: factor,
            telemetry: None,
        }
    }

    /// Reports per-flip vote counts to `telemetry`'s coin-round histogram.
    #[must_use]
    pub fn observed_by(mut self, telemetry: Arc<RuntimeTelemetry>) -> VotingCoin<M> {
        self.telemetry = Some(telemetry);
        self
    }

    /// The configured quorum factor.
    pub fn quorum_factor(&self) -> u32 {
        self.quorum_factor
    }
}

impl<M: SharedMemory> WeakSharedCoin<M> for VotingCoin<M> {
    /// One vote is 1 write + `n` reads, exactly as the model session: flip
    /// the ±1 vote, publish the running `(count, sum)` tally, scan every
    /// tally register from index 0, and return the sign of the total once
    /// the quorum of votes is visible.
    fn flip(&self, pid: usize, rng: &mut dyn Rng) -> u64 {
        let n = self.tallies.len();
        assert!(pid < n, "pid {pid} out of range for {n} threads");
        let mut my_count: u32 = 0;
        let mut my_sum: i64 = 0;
        loop {
            let vote: i64 = if rng.random_bool(0.5) { 1 } else { -1 };
            my_count += 1;
            my_sum += vote;
            self.tallies[pid].write(pack(my_count, my_sum));
            let mut seen_count = 0u64;
            let mut seen_sum = 0i64;
            for reg in &self.tallies {
                if let Some(word) = reg.read() {
                    let (count, sum) = unpack(word);
                    seen_count += u64::from(count);
                    seen_sum += sum;
                }
            }
            if seen_count >= self.quorum {
                if let Some(t) = &self.telemetry {
                    t.on_coin_rounds(u64::from(my_count));
                }
                return u64::from(seen_sum >= 0);
            }
        }
    }

    fn reset(&mut self) {
        for reg in &mut self.tallies {
            let next = reg.generation() + 1;
            reg.retire_to(next);
        }
    }

    fn register_count(&self) -> u64 {
        self.tallies.len() as u64
    }

    fn name(&self) -> &'static str {
        "voting-coin"
    }
}

impl<M: SharedMemory> std::fmt::Debug for VotingCoin<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VotingCoin")
            .field("n", &self.tallies.len())
            .field("quorum", &self.quorum)
            .finish()
    }
}

/// Procedure CoinConciliator (§5.1) as a thread-safe runtime object:
///
/// ```text
/// shared data: binary registers r₀, r₁ initially ⊥; weak shared coin SharedCoin
/// r_v ← 1
/// if r_v̄ = 1 then return SharedCoin() else return v
/// ```
///
/// A thread announces its own value, then checks whether the *opposite*
/// value was announced; if not it keeps its value, otherwise it defers to
/// the shared coin. Theorem 6: given a coin with agreement parameter `δ`,
/// this is a binary conciliator with probabilistic agreement at least `δ`,
/// at a cost of exactly **+2 registers and +2 operations** over the coin.
///
/// The runtime twin of `mc-core`'s `CoinConciliator`, operation for
/// operation (announce write, opposite-value read, then the coin).
pub struct CoinConciliator<C, M: SharedMemory = AtomicMemory>
where
    C: WeakSharedCoin<M>,
{
    /// `announce[v]` is the binary register `r_v`.
    announce: [M::Reg; 2],
    coin: C,
    telemetry: Option<Arc<RuntimeTelemetry>>,
}

impl<C: WeakSharedCoin<AtomicMemory>> CoinConciliator<C> {
    /// Builds the conciliator over `coin` on the default atomic substrate.
    pub fn new(coin: C) -> CoinConciliator<C> {
        CoinConciliator {
            announce: [AtomicMemory.alloc(), AtomicMemory.alloc()],
            coin,
            telemetry: None,
        }
    }
}

impl<C, M: SharedMemory> CoinConciliator<C, M>
where
    C: WeakSharedCoin<M>,
{
    /// Builds the conciliator in `memory`, allocating the two announce
    /// registers *before* constructing the coin via `make_coin`.
    ///
    /// The allocation order matters on instrumented substrates: the
    /// model-side spec allocates its announce block first and its coin's
    /// registers second, and lab conformance compares register ids.
    pub fn with_coin_in(memory: &M, make_coin: impl FnOnce(&M) -> C) -> CoinConciliator<C, M> {
        let announce = [memory.alloc(), memory.alloc()];
        CoinConciliator {
            announce,
            coin: make_coin(memory),
            telemetry: None,
        }
    }

    /// Reports propose completions to `telemetry`.
    #[must_use]
    pub fn observed_by(mut self, telemetry: Arc<RuntimeTelemetry>) -> CoinConciliator<C, M> {
        self.telemetry = Some(telemetry);
        self
    }

    /// The wrapped coin.
    pub fn coin(&self) -> &C {
        &self.coin
    }
}

impl<C, M: SharedMemory> Conciliator<M> for CoinConciliator<C, M>
where
    C: WeakSharedCoin<M>,
{
    /// One-shot semantics: each thread calls this at most once per object,
    /// with a `pid` unique to the thread (required by coins with per-thread
    /// registers).
    ///
    /// # Panics
    ///
    /// Panics if `value > 1` — the §5.1 construction is binary only.
    fn propose(&self, pid: usize, value: u64, rng: &mut dyn Rng) -> u64 {
        assert!(value <= 1, "CoinConciliator is binary; got input {value}");
        self.announce[value as usize].write(1);
        let deferred = self.announce[1 - value as usize].read().is_some();
        let out = if deferred {
            self.coin.flip(pid, rng)
        } else {
            value
        };
        if let Some(t) = &self.telemetry {
            // The wrapper itself is round-free: 0 extra rounds when the
            // opposite camp is empty, 1 coin invocation otherwise.
            t.on_propose_done(u64::from(deferred));
        }
        out
    }

    fn reset(&mut self) {
        for reg in &mut self.announce {
            let next = reg.generation() + 1;
            reg.retire_to(next);
        }
        self.coin.reset();
    }

    fn register_count(&self) -> u64 {
        2 + self.coin.register_count()
    }

    fn name(&self) -> &'static str {
        "coin-conciliator"
    }
}

impl<C, M: SharedMemory> std::fmt::Debug for CoinConciliator<C, M>
where
    C: WeakSharedCoin<M>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoinConciliator")
            .field("coin", &self.coin.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn local_coin_returns_bits() {
        let coin = LocalCoin::new();
        let mut rng = SmallRng::seed_from_u64(0);
        let mut seen = [false, false];
        for _ in 0..64 {
            let b = WeakSharedCoin::<AtomicMemory>::flip(&coin, 0, &mut rng);
            assert!(b <= 1);
            seen[b as usize] = true;
        }
        assert!(seen[0] && seen[1], "a fair coin must show both faces");
    }

    #[test]
    fn voting_coin_single_thread_reaches_quorum_alone() {
        let coin = VotingCoin::with_quorum_factor_in(&AtomicMemory, 1, 4);
        let mut rng = SmallRng::seed_from_u64(1);
        let b = WeakSharedCoin::flip(&coin, 0, &mut rng);
        assert!(b <= 1);
    }

    #[test]
    fn voting_coin_threads_agree_often() {
        // δ per side is constant; under a benign OS scheduler the observed
        // agreement rate should be far above the adversarial floor.
        let mut agreements = 0;
        let trials = 40;
        for trial in 0..trials {
            let coin = Arc::new(VotingCoin::new(4));
            let handles: Vec<_> = (0..4usize)
                .map(|pid| {
                    let coin = Arc::clone(&coin);
                    std::thread::spawn(move || {
                        let mut rng = SmallRng::seed_from_u64(trial * 10 + pid as u64);
                        WeakSharedCoin::flip(&*coin, pid, &mut rng)
                    })
                })
                .collect();
            let bits: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            if bits.windows(2).all(|w| w[0] == w[1]) {
                agreements += 1;
            }
        }
        assert!(agreements * 4 >= trials, "{agreements}/{trials} agreements");
    }

    #[test]
    fn pack_unpack_roundtrip() {
        for (count, sum) in [(0u32, 0i64), (1, 1), (7, -3), (1000, 999)] {
            assert_eq!(unpack(pack(count, sum)), (count, sum));
        }
    }

    #[test]
    fn conciliator_keeps_value_when_unopposed() {
        let c = CoinConciliator::new(LocalCoin::new());
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(c.propose(0, 1, &mut rng), 1);
    }

    #[test]
    fn conciliator_defers_to_coin_when_opposed() {
        let c = CoinConciliator::new(LocalCoin::new());
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(c.propose(0, 0, &mut rng), 0);
        // The second caller sees the opposite announcement and flips.
        let b = c.propose(1, 1, &mut rng);
        assert!(b <= 1);
    }

    #[test]
    fn conciliator_output_is_valid_with_voting_coin() {
        for trial in 0..20u64 {
            let c = Arc::new(CoinConciliator::with_coin_in(&AtomicMemory, |m| {
                VotingCoin::with_quorum_factor_in(m, 3, 1)
            }));
            let handles: Vec<_> = (0..3usize)
                .map(|pid| {
                    let c = Arc::clone(&c);
                    std::thread::spawn(move || {
                        let mut rng = SmallRng::seed_from_u64(trial * 7 + pid as u64);
                        c.propose(pid, (pid % 2) as u64, &mut rng)
                    })
                })
                .collect();
            for h in handles {
                let v = h.join().unwrap();
                assert!(v <= 1, "invalid value {v}");
            }
        }
    }

    #[test]
    fn theorem6_register_accounting() {
        let c = CoinConciliator::new(LocalCoin::new());
        assert_eq!(Conciliator::<AtomicMemory>::register_count(&c), 2);
        let c = CoinConciliator::with_coin_in(&AtomicMemory, |m| {
            VotingCoin::with_quorum_factor_in(m, 5, 4)
        });
        assert_eq!(c.register_count(), 2 + 5);
    }

    #[test]
    fn reset_conciliator_behaves_like_fresh() {
        let mut c = CoinConciliator::new(LocalCoin::new());
        let mut rng = SmallRng::seed_from_u64(4);
        assert_eq!(c.propose(0, 0, &mut rng), 0);
        Conciliator::reset(&mut c);
        // The stale announcement is gone: an unopposed 1 keeps its value.
        assert_eq!(c.propose(1, 1, &mut rng), 1);
    }

    #[test]
    #[should_panic(expected = "binary")]
    fn non_binary_input_rejected() {
        let c = CoinConciliator::new(LocalCoin::new());
        let mut rng = SmallRng::seed_from_u64(5);
        c.propose(0, 2, &mut rng);
    }

    #[test]
    #[should_panic(expected = "quorum factor")]
    fn zero_quorum_factor_rejected() {
        VotingCoin::with_quorum_factor_in(&AtomicMemory, 3, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_pid_rejected() {
        let coin = VotingCoin::new(2);
        let mut rng = SmallRng::seed_from_u64(6);
        WeakSharedCoin::flip(&coin, 2, &mut rng);
    }
}
