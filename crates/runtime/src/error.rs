//! The one error type for the engine/service submission surface.
//!
//! PR 4's `SubmitError` covered exactly one failure (`Saturated`); the
//! batching service layer adds admission-control refusals (`Rejected`,
//! `Shed`), handle-wait timeouts, and worker-death poisoning. Rather than
//! grow a zoo of per-layer error enums, every way a proposal can fail to
//! produce a decision is one variant of [`EngineError`], hand-rolled over
//! `std` only.

use std::error::Error;
use std::fmt;

/// Why a proposal submitted to a [`ConsensusEngine`] or
/// [`ConsensusService`] did not (or will not) produce a decision.
///
/// [`ConsensusEngine`]: crate::ConsensusEngine
/// [`ConsensusService`]: crate::ConsensusService
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// The instance's engine shard is at its `max_live_per_shard` bound;
    /// retry after some instance retires, or use the blocking
    /// [`submit`](crate::ConsensusEngine::submit).
    Saturated,
    /// The service's intake ring is at capacity under
    /// [`BackpressurePolicy::Reject`](crate::BackpressurePolicy::Reject);
    /// the proposal was never enqueued.
    Rejected,
    /// The service's queue depth reached the configured shedding bound
    /// under [`BackpressurePolicy::Shed`](crate::BackpressurePolicy::Shed);
    /// the proposal was dropped at admission.
    Shed {
        /// The depth bound that was hit.
        max_queue_depth: usize,
    },
    /// A [`DecisionHandle::wait_timeout`](crate::DecisionHandle::wait_timeout)
    /// elapsed before the decision arrived. The proposal is still in
    /// flight: waiting again can succeed.
    Timeout,
    /// The proposal was accepted but its shard worker died before
    /// completing it (worker panic or service teardown with the proposal
    /// unprocessed). The decision will never arrive.
    Poisoned,
    /// The deadline carried by a
    /// [`SubmitOptions`](crate::SubmitOptions) budget expired — at
    /// admission (no retry attempt left time to try again) or while
    /// waiting on a [`DecisionHandle`](crate::DecisionHandle) whose
    /// deadline was set. Unlike [`Timeout`](EngineError::Timeout), the
    /// budget is spent: retrying requires a new deadline.
    DeadlineExceeded,
    /// The service's circuit breaker is open after sustained overload;
    /// admission fast-fails without touching the rings. Retry after the
    /// breaker's cooldown, when a probe can half-open it.
    CircuitOpen,
    /// Every retry the [`RetryPolicy`](crate::RetryPolicy) allowed was
    /// refused at admission (`Rejected`/`Shed` each time).
    RetriesExhausted {
        /// Admission attempts made (initial try plus retries).
        attempts: u32,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Saturated => write!(f, "shard is at its live-instance bound"),
            EngineError::Rejected => write!(f, "intake ring is at capacity"),
            EngineError::Shed { max_queue_depth } => {
                write!(
                    f,
                    "queue depth reached the shedding bound {max_queue_depth}"
                )
            }
            EngineError::Timeout => write!(f, "timed out waiting for the decision"),
            EngineError::Poisoned => write!(f, "the shard worker died before deciding"),
            EngineError::DeadlineExceeded => write!(f, "the submission deadline expired"),
            EngineError::CircuitOpen => write!(f, "the circuit breaker is open"),
            EngineError::RetriesExhausted { attempts } => {
                write!(f, "admission refused all {attempts} attempts")
            }
        }
    }
}

impl Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every variant, kept in sync with the enum: the round-trip test
    /// below uses the Debug rendering to prove each variant formats, each
    /// `Display` string is distinct, and `Error::description` (via
    /// `to_string`) survives boxing. A new variant that is not added here
    /// fails the distinct-count assertion.
    fn every_variant() -> Vec<EngineError> {
        vec![
            EngineError::Saturated,
            EngineError::Rejected,
            EngineError::Shed {
                max_queue_depth: 64,
            },
            EngineError::Timeout,
            EngineError::Poisoned,
            EngineError::DeadlineExceeded,
            EngineError::CircuitOpen,
            EngineError::RetriesExhausted { attempts: 3 },
        ]
    }

    #[test]
    fn every_variant_displays_and_is_an_error() {
        let variants = every_variant();
        let mut renderings = std::collections::BTreeSet::new();
        for e in &variants {
            let boxed: Box<dyn Error> = Box::new(*e);
            let display = boxed.to_string();
            assert!(!display.is_empty(), "{e:?}");
            // Display must round-trip through the Error object unchanged.
            assert_eq!(display, e.to_string(), "{e:?}");
            assert!(boxed.source().is_none(), "{e:?} is a leaf error");
            renderings.insert(display);
        }
        assert_eq!(
            renderings.len(),
            variants.len(),
            "every variant renders a distinct message"
        );
        assert_eq!(
            EngineError::Shed {
                max_queue_depth: 64
            }
            .to_string(),
            "queue depth reached the shedding bound 64"
        );
        assert_eq!(
            EngineError::RetriesExhausted { attempts: 3 }.to_string(),
            "admission refused all 3 attempts"
        );
    }
}
