//! The one error type for the engine/service submission surface.
//!
//! PR 4's `SubmitError` covered exactly one failure (`Saturated`); the
//! batching service layer adds admission-control refusals (`Rejected`,
//! `Shed`), handle-wait timeouts, and worker-death poisoning. Rather than
//! grow a zoo of per-layer error enums, every way a proposal can fail to
//! produce a decision is one variant of [`EngineError`], hand-rolled over
//! `std` only.

use std::error::Error;
use std::fmt;

/// Why a proposal submitted to a [`ConsensusEngine`] or
/// [`ConsensusService`] did not (or will not) produce a decision.
///
/// [`ConsensusEngine`]: crate::ConsensusEngine
/// [`ConsensusService`]: crate::ConsensusService
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// The instance's engine shard is at its `max_live_per_shard` bound;
    /// retry after some instance retires, or use the blocking
    /// [`submit`](crate::ConsensusEngine::submit).
    Saturated,
    /// The service's intake ring is at capacity under
    /// [`BackpressurePolicy::Reject`](crate::BackpressurePolicy::Reject);
    /// the proposal was never enqueued.
    Rejected,
    /// The service's queue depth reached the configured shedding bound
    /// under [`BackpressurePolicy::Shed`](crate::BackpressurePolicy::Shed);
    /// the proposal was dropped at admission.
    Shed {
        /// The depth bound that was hit.
        max_queue_depth: usize,
    },
    /// A [`DecisionHandle::wait_timeout`](crate::DecisionHandle::wait_timeout)
    /// elapsed before the decision arrived. The proposal is still in
    /// flight: waiting again can succeed.
    Timeout,
    /// The proposal was accepted but its shard worker died before
    /// completing it (worker panic or service teardown with the proposal
    /// unprocessed). The decision will never arrive.
    Poisoned,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Saturated => write!(f, "shard is at its live-instance bound"),
            EngineError::Rejected => write!(f, "intake ring is at capacity"),
            EngineError::Shed { max_queue_depth } => {
                write!(
                    f,
                    "queue depth reached the shedding bound {max_queue_depth}"
                )
            }
            EngineError::Timeout => write!(f, "timed out waiting for the decision"),
            EngineError::Poisoned => write!(f, "the shard worker died before deciding"),
        }
    }
}

impl Error for EngineError {}

/// The pre-service name for [`EngineError`].
#[deprecated(note = "use `EngineError`; the service layer folded every submission failure into it")]
pub type SubmitError = EngineError;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_displays_and_is_an_error() {
        let variants: Vec<Box<dyn Error>> = vec![
            Box::new(EngineError::Saturated),
            Box::new(EngineError::Rejected),
            Box::new(EngineError::Shed {
                max_queue_depth: 64,
            }),
            Box::new(EngineError::Timeout),
            Box::new(EngineError::Poisoned),
        ];
        for e in variants {
            assert!(!e.to_string().is_empty());
        }
        assert_eq!(
            EngineError::Shed {
                max_queue_depth: 64
            }
            .to_string(),
            "queue depth reached the shedding bound 64"
        );
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_alias_still_names_the_same_type() {
        let e: SubmitError = EngineError::Saturated;
        assert_eq!(e, EngineError::Saturated);
    }
}
