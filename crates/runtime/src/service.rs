//! A pipelined batching frontend over the [`ConsensusEngine`].
//!
//! `ConsensusEngine::submit` is a blocking per-call path: every caller
//! crosses the shard mutex twice, pays per-operation telemetry, and parks
//! on a condvar under backpressure — so at high request rates throughput is
//! bounded by caller-side contention, not by the paper's `O(n log m)`
//! total-work bound. [`ConsensusService`] decouples the two sides:
//!
//! ```text
//!  producers ──submit──▶ per-worker intake rings ──batch──▶ workers
//!      │                  (std MPSC, Mutex+Condvar)            │
//!      ╰◀─── DecisionHandle (poll / wait / wait_timeout) ◀─────╯
//! ```
//!
//! Producers enqueue `(instance_id, proposal)` and immediately receive a
//! [`DecisionHandle`]; dedicated worker threads drain each ring in batches,
//! run the decisions against the engine's pooled instances, and complete
//! the handles. Telemetry is amortized to one structured
//! [`batch_drained`](mc_telemetry::TelemetryEvent::BatchDrained) event per
//! batch, and admission control is a configurable [`BackpressurePolicy`].
//!
//! Routing uses the same Fibonacci hash as the engine's shards, so every
//! submission for one `instance_id` lands in the same ring and is decided
//! serially by one worker — concurrent proposals for the same instance
//! still agree, exactly as with direct `submit`.
//!
//! # Failure handling
//!
//! Workers are *supervised*: a panicking worker is caught, its
//! queued-but-unsubmitted proposals are re-admitted exactly once per
//! death, and the drain loop restarts under a bounded
//! [`SupervisorOptions::restart_budget`] with exponential backoff; only an
//! exhausted budget degrades the ring to the terminal
//! [`RingHealth::Poisoned`] state. Producers get deadline/retry machinery
//! through [`SubmitOptions`] ([`submit_with`](ConsensusService::submit_with))
//! and an optional [`CircuitOptions`] breaker that fast-fails admission
//! under sustained overload. A seeded [`ChaosPlan`] injects worker panics
//! and stalls at drain boundaries so all of this is testable
//! deterministically — the mc-lab chaos conformance leg and the
//! `chaos_campaign` bench run on it.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mc_telemetry::CircuitState;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::engine::ConsensusEngine;
use crate::error::EngineError;
use crate::faults::FaultPlan;
use crate::register::{AtomicMemory, SharedMemory};
use crate::telemetry::RuntimeTelemetry;

/// SplitMix64 finalizer: decorrelates `(seed, stream)` pairs so chaos
/// phases, retry jitter, and per-restart coin streams are deterministic
/// per seed yet independent across streams (same construction as
/// `mc_sim::mix_seed`, local to keep the dependency graph flat).
fn mix(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What [`ConsensusService::submit`] does when an intake ring is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Block the producer until the worker drains room. No proposal is
    /// ever lost; producers absorb the overload.
    Block,
    /// Refuse with [`EngineError::Rejected`]; the proposal is never
    /// enqueued and the caller retries (or not) on its own schedule.
    Reject,
    /// Drop with [`EngineError::Shed`] once the ring holds
    /// `max_queue_depth` proposals — load shedding with an explicit bound,
    /// independent of the ring's configured capacity.
    Shed {
        /// Queue depth at which admission starts shedding.
        max_queue_depth: usize,
    },
}

/// Seeded-jitter exponential backoff for admission retries.
///
/// [`ConsensusService::submit_with`] retries `Rejected`/`Shed` admissions
/// on this schedule: the delay before retry `k` (zero-based) is
/// `min(base_delay · 2^k, max_delay)` plus a deterministic jitter of up to
/// `jitter` times that raw delay, re-capped at `max_delay`. Because the
/// jitter for retry `k` is a pure function of `(seed, k)`, a policy's
/// schedule is reproducible — and because the jitter fraction is at most
/// 1, the schedule is monotone non-decreasing (each raw delay at least
/// doubles until the cap, outgrowing any jitter the previous step added),
/// properties the `service_properties` proptest suite pins.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Admission retries after the initial attempt (0 = fail fast).
    pub max_retries: u32,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Hard cap on any single delay, jitter included.
    pub max_delay: Duration,
    /// Fraction of the raw delay added as seeded jitter, in `[0, 1]`.
    pub jitter: f64,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl RetryPolicy {
    /// No retries: admission failures surface immediately.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            jitter: 0.0,
            seed: 0,
        }
    }

    /// A sensible default schedule: 4 retries from 100µs doubling to a
    /// 10ms cap with half-delay jitter, derandomized by `seed`.
    pub fn seeded(seed: u64) -> RetryPolicy {
        RetryPolicy {
            max_retries: 4,
            base_delay: Duration::from_micros(100),
            max_delay: Duration::from_millis(10),
            jitter: 0.5,
            seed,
        }
    }

    /// The delay before zero-based retry `retry`: capped exponential plus
    /// seeded jitter (see the type docs for the monotonicity argument).
    ///
    /// # Panics
    ///
    /// Panics if `jitter` is outside `[0, 1]`.
    pub fn delay_for(&self, retry: u32) -> Duration {
        assert!(
            (0.0..=1.0).contains(&self.jitter),
            "jitter fraction {} out of [0, 1]",
            self.jitter
        );
        let base_ns = self.base_delay.as_nanos();
        let max_ns = self.max_delay.as_nanos();
        let raw_ns = if retry >= 64 {
            max_ns
        } else {
            (base_ns << retry).min(max_ns)
        };
        // Jitter fraction in [0, 1): a pure function of (seed, retry), so
        // the schedule never depends on when or how often it is sampled.
        let unit = (mix(self.seed, u64::from(retry) + 1) >> 11) as f64 / (1u64 << 53) as f64;
        let jitter_ns = (raw_ns as f64 * self.jitter * unit) as u128;
        let capped = (raw_ns + jitter_ns).min(max_ns);
        Duration::from_nanos(u64::try_from(capped).unwrap_or(u64::MAX))
    }

    /// The full backoff schedule, one delay per allowed retry.
    pub fn schedule(&self) -> Vec<Duration> {
        (0..self.max_retries).map(|k| self.delay_for(k)).collect()
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::none()
    }
}

/// Per-submission budget for [`ConsensusService::submit_with`]: an
/// optional absolute deadline plus a [`RetryPolicy`] applied to
/// `Rejected`/`Shed` admissions.
///
/// The deadline spans the *whole* submission: admission retries stop at
/// it ([`EngineError::DeadlineExceeded`]), and the returned
/// [`DecisionHandle`] carries it, so
/// [`wait`](DecisionHandle::wait) also gives up when the budget expires.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SubmitOptions {
    /// Absolute point past which the submission (admission *and* wait) is
    /// abandoned. `None` means no budget.
    pub deadline: Option<Instant>,
    /// Backoff schedule for admission retries.
    pub retry: RetryPolicy,
}

impl SubmitOptions {
    /// No deadline, no retries — the behavior of plain
    /// [`submit`](ConsensusService::submit).
    pub fn new() -> SubmitOptions {
        SubmitOptions::default()
    }

    /// Sets an absolute deadline.
    #[must_use]
    pub fn deadline(mut self, deadline: Instant) -> SubmitOptions {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the deadline `budget` from now, via the shared
    /// [`clock`](crate::clock) helper — the same computation
    /// [`DecisionHandle::wait_timeout`] uses, so an admission deadline and
    /// the wait deadline derived from the same budget cannot drift.
    #[must_use]
    pub fn within(self, budget: Duration) -> SubmitOptions {
        self.deadline(crate::clock::deadline_within(budget))
    }

    /// Sets the admission retry policy.
    #[must_use]
    pub fn retry(mut self, retry: RetryPolicy) -> SubmitOptions {
        self.retry = retry;
        self
    }
}

/// Worker supervision knobs: how many panics a ring's worker survives and
/// how its restarts are paced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorOptions {
    /// Panics a worker recovers from before its ring degrades to the
    /// terminal [`RingHealth::Poisoned`] state. `0` disables recovery:
    /// the first panic poisons the ring, the pre-supervision behavior.
    pub restart_budget: u32,
    /// Backoff before the first restart; doubles per consecutive restart.
    pub base_backoff: Duration,
    /// Cap on the restart backoff.
    pub max_backoff: Duration,
}

impl Default for SupervisorOptions {
    fn default() -> SupervisorOptions {
        SupervisorOptions {
            restart_budget: 4,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(250),
        }
    }
}

/// A seeded service-level chaos plan: deterministic worker panics and
/// stalls at drain boundaries, plus a register-level [`FaultPlan`] for the
/// harness layers to wire under the engine.
///
/// Panics and stalls fire when a worker *takes a batch* (after the batch
/// has moved to the ring's in-flight stash, before any decide), so an
/// injected panic exercises the supervisor's re-admission path without
/// abandoning a mid-decide instance: within the restart budget, every
/// admitted proposal still gets exactly one decision. The `seed` phases
/// each worker's injection points independently (worker `i` panics at
/// drain counts ≡ `mix(seed, i) mod panic_every`), so multi-worker
/// services do not lose every worker at once.
///
/// The embedded `faults` plan is *not* applied by the service itself —
/// the service is generic over an already-built memory. The chaos
/// harnesses (`mc_lab::check_chaos_conformance`, the `chaos_campaign`
/// bench) layer it via `FaultyMemory` when building the engine, keeping
/// register faults and service faults on one seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPlan {
    /// Seed phasing the per-worker injection points.
    pub seed: u64,
    /// Inject a worker panic every `panic_every` drains (0 = never).
    pub panic_every: u64,
    /// Cap on injected panics per worker (keeps a plan within a restart
    /// budget).
    pub max_panics: u32,
    /// Inject a stall every `stall_every` drains (0 = never).
    pub stall_every: u64,
    /// Duration of each injected stall.
    pub stall_for: Duration,
    /// Register-level fault plan for the harness to layer via
    /// `FaultyMemory` (see the type docs).
    pub faults: FaultPlan,
}

impl ChaosPlan {
    /// The empty plan: no panics, no stalls, no register faults.
    pub fn none() -> ChaosPlan {
        ChaosPlan {
            seed: 0,
            panic_every: 0,
            max_panics: 0,
            stall_every: 0,
            stall_for: Duration::ZERO,
            faults: FaultPlan::none(),
        }
    }

    /// An empty plan carrying `seed`; add injections with the builder
    /// methods.
    pub fn seeded(seed: u64) -> ChaosPlan {
        ChaosPlan {
            seed,
            ..ChaosPlan::none()
        }
    }

    /// Panic every `every` drains, at most `max_panics` times per worker.
    #[must_use]
    pub fn panic_every(mut self, every: u64, max_panics: u32) -> ChaosPlan {
        self.panic_every = every;
        self.max_panics = max_panics;
        self
    }

    /// Stall for `dur` every `every` drains.
    #[must_use]
    pub fn stall_every(mut self, every: u64, dur: Duration) -> ChaosPlan {
        self.stall_every = every;
        self.stall_for = dur;
        self
    }

    /// Attach a register-level fault plan for the harness layers.
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> ChaosPlan {
        self.faults = plan;
        self
    }

    /// Whether the plan injects nothing at the service layer and carries
    /// no register faults.
    pub fn is_empty(&self) -> bool {
        self.panic_every == 0 && self.stall_every == 0 && self.faults.is_empty()
    }
}

impl Default for ChaosPlan {
    fn default() -> ChaosPlan {
        ChaosPlan::none()
    }
}

/// Circuit-breaker thresholds for service admission.
///
/// The breaker watches admission outcomes: every `Rejected`/`Shed` — and
/// every admission that lands while the aggregate queue depth is at or
/// above `trip_queue_depth` — counts as one overload signal; a successful
/// admission below the depth threshold resets the count. After
/// `overload_threshold` *consecutive* signals the breaker opens and
/// admission fast-fails with [`EngineError::CircuitOpen`] without touching
/// the rings. Once `cooldown` elapses, the next submission is let through
/// as a half-open probe: if it admits cleanly the breaker closes, if it is
/// refused the breaker re-opens for another cooldown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitOptions {
    /// Consecutive overload signals that open the breaker (0 = disabled).
    pub overload_threshold: u64,
    /// Aggregate queue depth at which even a successful admission counts
    /// as an overload signal (0 = depth is ignored).
    pub trip_queue_depth: usize,
    /// How long the breaker stays open before half-opening on a probe.
    pub cooldown: Duration,
}

impl CircuitOptions {
    /// No breaker: admission is never fast-failed.
    pub fn disabled() -> CircuitOptions {
        CircuitOptions {
            overload_threshold: 0,
            trip_queue_depth: 0,
            cooldown: Duration::ZERO,
        }
    }
}

impl Default for CircuitOptions {
    fn default() -> CircuitOptions {
        CircuitOptions::disabled()
    }
}

/// Lifecycle state of one intake ring under supervision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingHealth {
    /// The worker is draining normally.
    Healthy,
    /// The worker panicked and is between re-admission and its backoff
    /// expiry; queued proposals are preserved.
    Restarting,
    /// The restart budget is exhausted (or a panic escaped recovery): the
    /// ring is closed, its queue poisoned, and admission answers
    /// [`EngineError::Rejected`]. Terminal.
    Poisoned,
}

/// Tuning for a [`ConsensusService`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceOptions {
    /// Admission control when a ring is full (default
    /// [`BackpressurePolicy::Block`]).
    pub policy: BackpressurePolicy,
    /// Proposals a ring holds before [`BackpressurePolicy::Block`] blocks
    /// or [`BackpressurePolicy::Reject`] refuses (default 1024). Ignored
    /// by [`BackpressurePolicy::Shed`], which carries its own bound.
    pub ring_capacity: usize,
    /// Most proposals a worker takes per drain (default 256). Larger
    /// batches amortize ring locking and telemetry further but hold
    /// decisions back longer under light load.
    pub batch_max: usize,
    /// Worker threads / intake rings. `0` (default) means one per engine
    /// shard.
    pub workers: usize,
    /// Base seed for the workers' deterministic RNGs; worker `i` runs on
    /// `seed + i`. Identical seeds and submission order reproduce
    /// identical coin flips.
    pub seed: u64,
    /// Worker supervision: restart budget and backoff pacing (default
    /// [`SupervisorOptions::default`], 4 restarts).
    pub supervisor: SupervisorOptions,
    /// Seeded fault injection at drain boundaries (default
    /// [`ChaosPlan::none`]).
    pub chaos: ChaosPlan,
    /// Admission circuit breaker (default [`CircuitOptions::disabled`]).
    pub circuit: CircuitOptions,
}

impl Default for ServiceOptions {
    fn default() -> ServiceOptions {
        ServiceOptions {
            policy: BackpressurePolicy::Block,
            ring_capacity: 1024,
            batch_max: 256,
            workers: 0,
            seed: 0x5EED,
            supervisor: SupervisorOptions::default(),
            chaos: ChaosPlan::none(),
            circuit: CircuitOptions::disabled(),
        }
    }
}

/// Completion states of one submitted proposal.
#[derive(Clone, Copy, PartialEq, Eq)]
enum CellState {
    /// Enqueued, not yet decided.
    Waiting,
    /// Decided.
    Done(u64),
    /// The worker died (panic or teardown) before deciding it.
    Poisoned,
}

const CELL_WAITING: u8 = 0;
const CELL_DONE: u8 = 1;
const CELL_POISONED: u8 = 2;

/// The completion cell a [`DecisionHandle`] waits on.
///
/// The common case — worker fills, producer polls an already-done cell —
/// is two atomics with no lock: `value` is stored relaxed, then `state` is
/// published with a release store, and readers load `state` acquire. The
/// condvar path only engages when a producer actually sleeps: waiters
/// register under `waiters` before parking, and the filler takes that lock
/// (pairing with the waiter's registered-then-recheck) and broadcasts only
/// when somebody is parked.
struct Cell {
    state: AtomicU8,
    value: AtomicU64,
    waiters: Mutex<usize>,
    cv: Condvar,
}

impl Cell {
    fn new() -> Arc<Cell> {
        Arc::new(Cell {
            state: AtomicU8::new(CELL_WAITING),
            value: AtomicU64::new(0),
            waiters: Mutex::new(0),
            cv: Condvar::new(),
        })
    }

    fn read(&self) -> CellState {
        match self.state.load(Ordering::Acquire) {
            CELL_WAITING => CellState::Waiting,
            CELL_DONE => CellState::Done(self.value.load(Ordering::Relaxed)),
            _ => CellState::Poisoned,
        }
    }

    /// First fill wins: `Waiting → Done(v)` or `Waiting → Poisoned`; a cell
    /// already filled is left alone (a completed `Pending` is dropped right
    /// after, and its poison pass must not overwrite the decision).
    fn fill(&self, state: CellState) {
        let next = match state {
            CellState::Waiting => return,
            CellState::Done(v) => {
                self.value.store(v, Ordering::Relaxed);
                CELL_DONE
            }
            CellState::Poisoned => CELL_POISONED,
        };
        if self
            .state
            .compare_exchange(CELL_WAITING, next, Ordering::Release, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        // Taking the lock (even when nobody waits) orders this fill against
        // a waiter's register-then-recheck, so no wakeup is ever missed.
        let parked = *self.waiters.lock().unwrap_or_else(PoisonError::into_inner);
        if parked > 0 {
            self.cv.notify_all();
        }
    }
}

/// The producer's receipt for one submitted proposal: poll or wait for the
/// decision.
///
/// Cloning yields another handle on the same decision. Dropping every
/// handle is fine — the proposal still runs; only the result goes
/// unobserved.
#[derive(Clone)]
pub struct DecisionHandle {
    cell: Arc<Cell>,
    /// Absolute budget carried over from [`SubmitOptions::deadline`]:
    /// [`wait`](DecisionHandle::wait) gives up at this point with
    /// [`EngineError::DeadlineExceeded`].
    deadline: Option<Instant>,
}

impl DecisionHandle {
    /// The decision if it has arrived: `None` while in flight,
    /// `Some(Err(`[`EngineError::Poisoned`]`))` if its worker died first.
    /// Lock-free.
    pub fn poll(&self) -> Option<Result<u64, EngineError>> {
        match self.cell.read() {
            CellState::Waiting => None,
            CellState::Done(v) => Some(Ok(v)),
            CellState::Poisoned => Some(Err(EngineError::Poisoned)),
        }
    }

    /// Attaches (or tightens) an absolute deadline:
    /// [`wait`](DecisionHandle::wait) on the returned handle gives up at
    /// that point with [`EngineError::DeadlineExceeded`].
    /// [`submit_with`](ConsensusService::submit_with) attaches its
    /// [`SubmitOptions::deadline`] automatically.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> DecisionHandle {
        self.deadline = Some(match self.deadline {
            Some(existing) => existing.min(deadline),
            None => deadline,
        });
        self
    }

    /// The deadline this handle carries, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The one wait loop behind [`wait`](DecisionHandle::wait) and
    /// [`wait_timeout`](DecisionHandle::wait_timeout): park until the cell
    /// fills or `deadline` (if any) passes, answering `expired` then.
    ///
    /// The deadline check re-reads the cell before reporting expiry: a
    /// decision (or poison) that raced the clock — filled between the
    /// loop-top read and the expiry check, or while the condvar wait timed
    /// out — is reported as itself, never as `expired`. A `Poisoned` cell
    /// in particular must not surface as `Timeout`, which would invite a
    /// retry loop against a proposal that can never complete.
    fn wait_core(
        &self,
        deadline: Option<Instant>,
        expired: EngineError,
    ) -> Result<u64, EngineError> {
        loop {
            match self.cell.read() {
                CellState::Waiting => {}
                CellState::Done(v) => return Ok(v),
                CellState::Poisoned => return Err(EngineError::Poisoned),
            }
            if let Some(deadline) = deadline {
                let now = crate::clock::now();
                if now >= deadline {
                    return match self.cell.read() {
                        CellState::Done(v) => Ok(v),
                        CellState::Poisoned => Err(EngineError::Poisoned),
                        CellState::Waiting => Err(expired),
                    };
                }
                let mut parked = self
                    .cell
                    .waiters
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                // Recheck under the lock: a fill between the lock-free read
                // and the registration is ordered by the filler's own lock
                // take.
                if self.cell.read() != CellState::Waiting {
                    continue;
                }
                *parked += 1;
                let (mut parked, _) = self
                    .cell
                    .cv
                    .wait_timeout(parked, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                *parked -= 1;
            } else {
                let mut parked = self
                    .cell
                    .waiters
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                if self.cell.read() != CellState::Waiting {
                    continue;
                }
                *parked += 1;
                let mut parked = self
                    .cell
                    .cv
                    .wait(parked)
                    .unwrap_or_else(PoisonError::into_inner);
                *parked -= 1;
            }
        }
    }

    /// Blocks until the decision arrives. A decision that already landed
    /// returns without taking any lock.
    ///
    /// # Errors
    ///
    /// [`EngineError::Poisoned`] if the proposal's worker died before
    /// deciding it; [`EngineError::DeadlineExceeded`] if the handle
    /// carries a [deadline](DecisionHandle::with_deadline) and it passes
    /// first.
    pub fn wait(&self) -> Result<u64, EngineError> {
        self.wait_core(self.deadline, EngineError::DeadlineExceeded)
    }

    /// Blocks until the decision arrives or `timeout` elapses.
    ///
    /// # Errors
    ///
    /// [`EngineError::Timeout`] when the wait elapsed — the proposal is
    /// still in flight and waiting again can succeed;
    /// [`EngineError::DeadlineExceeded`] instead when the handle's own
    /// [deadline](DecisionHandle::with_deadline) is the earlier bound (the
    /// budget is spent; retrying needs a new deadline);
    /// [`EngineError::Poisoned`] as [`wait`](DecisionHandle::wait) — a
    /// poison that races the timeout reports `Poisoned`, not `Timeout`.
    pub fn wait_timeout(&self, timeout: Duration) -> Result<u64, EngineError> {
        let candidate = crate::clock::deadline_within(timeout);
        match self.deadline {
            Some(own) if own <= candidate => {
                self.wait_core(Some(own), EngineError::DeadlineExceeded)
            }
            _ => self.wait_core(Some(candidate), EngineError::Timeout),
        }
    }
}

impl std::fmt::Debug for DecisionHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = match self.poll() {
            None => "waiting",
            Some(Ok(_)) => "done",
            Some(Err(_)) => "poisoned",
        };
        f.debug_struct("DecisionHandle")
            .field("state", &state)
            .finish()
    }
}

/// One enqueued proposal. Dropping it while its cell is still `Waiting`
/// poisons the cell — this is the worker-death path: a panicking worker
/// unwinds its local batch, and service teardown drops ring leftovers, and
/// either way every orphaned handle resolves to
/// [`EngineError::Poisoned`] instead of hanging forever.
struct Pending {
    /// Service-wide admission serial, assigned under the ring lock (so it
    /// is strictly increasing within a ring). Supervision's re-admission
    /// pass uses it to assert exactly-once, in-order requeueing.
    submission_id: u64,
    instance_id: u64,
    proposal: u64,
    enqueued_at: Instant,
    cell: Arc<Cell>,
}

impl Pending {
    fn complete(&self, decided: u64) {
        self.cell.fill(CellState::Done(decided));
    }
}

impl Drop for Pending {
    fn drop(&mut self) {
        // First fill wins: a no-op after `complete`, poison otherwise.
        self.cell.fill(CellState::Poisoned);
    }
}

struct RingState {
    queue: VecDeque<Pending>,
    /// No further submissions; workers drain what is left, then exit.
    closed: bool,
    /// Workers hold off draining (tests use this to fill rings
    /// deterministically).
    paused: bool,
    /// Supervision lifecycle of this ring's worker.
    health: RingHealth,
}

/// One MPSC intake ring: producers push under the mutex, its dedicated
/// worker drains in batches.
struct Ring {
    state: Mutex<RingState>,
    /// The batch the worker is currently deciding, stashed here (not
    /// worker-locally) so the supervisor can re-admit the undecided
    /// remainder after a panic. Lock order is `state` before `inflight`;
    /// only the ring's own worker and post-join teardown touch it.
    inflight: Mutex<VecDeque<Pending>>,
    /// Signals the worker: items available, unpaused, or closed.
    to_worker: Condvar,
    /// Signals blocked producers ([`BackpressurePolicy::Block`]): room
    /// available or closed.
    to_producers: Condvar,
}

impl Ring {
    fn new() -> Ring {
        Ring {
            state: Mutex::new(RingState {
                queue: VecDeque::new(),
                closed: false,
                paused: false,
                health: RingHealth::Healthy,
            }),
            inflight: Mutex::new(VecDeque::new()),
            to_worker: Condvar::new(),
            to_producers: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, RingState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_inflight(&self) -> MutexGuard<'_, VecDeque<Pending>> {
        self.inflight.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Runtime state of the admission circuit breaker (semantics on
/// [`CircuitOptions`]). Encodes [`CircuitState`] in an `AtomicU8` using
/// `CircuitState::as_u64` values so the gate is a single acquire load on
/// the happy path.
struct Circuit {
    opts: CircuitOptions,
    /// Reference point for `opened_at`.
    epoch: Instant,
    /// `CircuitState` encoding: 0 closed, 1 open, 2 half-open.
    state: AtomicU8,
    /// Consecutive overload signals observed while closed.
    overloads: AtomicU64,
    /// When the breaker last opened, in nanos since `epoch`.
    opened_at: AtomicU64,
}

const CIRCUIT_CLOSED: u8 = 0;
const CIRCUIT_OPEN: u8 = 1;
const CIRCUIT_HALF_OPEN: u8 = 2;

impl Circuit {
    fn new(opts: CircuitOptions) -> Circuit {
        Circuit {
            opts,
            epoch: Instant::now(),
            state: AtomicU8::new(CIRCUIT_CLOSED),
            overloads: AtomicU64::new(0),
            opened_at: AtomicU64::new(0),
        }
    }

    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn open(&self, from: u8, telemetry: &RuntimeTelemetry) {
        // Stamp the open time BEFORE publishing the state: a gate that
        // acquires `state == open` must see a fresh `opened_at`, or it
        // could half-open before any cooldown elapsed. A losing racer's
        // stray stamp is harmless (both racers stamp "now").
        self.opened_at.store(self.now_ns(), Ordering::Release);
        if self
            .state
            .compare_exchange(from, CIRCUIT_OPEN, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            self.overloads.store(0, Ordering::Release);
            telemetry.on_circuit_transition(CircuitState::Open);
        }
    }

    /// The admission gate. From open, the first caller past the cooldown
    /// wins a CAS to half-open and becomes the probe; everyone else
    /// fast-fails without touching the rings.
    fn check(&self, telemetry: &RuntimeTelemetry) -> Result<(), EngineError> {
        match self.state.load(Ordering::Acquire) {
            CIRCUIT_CLOSED => Ok(()),
            CIRCUIT_OPEN => {
                let cooldown = u64::try_from(self.opts.cooldown.as_nanos()).unwrap_or(u64::MAX);
                let elapsed = self
                    .now_ns()
                    .saturating_sub(self.opened_at.load(Ordering::Acquire));
                if elapsed >= cooldown
                    && self
                        .state
                        .compare_exchange(
                            CIRCUIT_OPEN,
                            CIRCUIT_HALF_OPEN,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                {
                    telemetry.on_circuit_transition(CircuitState::HalfOpen);
                    Ok(())
                } else {
                    Err(EngineError::CircuitOpen)
                }
            }
            _ => Err(EngineError::CircuitOpen),
        }
    }

    /// A clean admission below the trip depth: reset the consecutive
    /// count, and close the breaker if this was the half-open probe.
    fn on_success(&self, telemetry: &RuntimeTelemetry) {
        self.overloads.store(0, Ordering::Release);
        if self
            .state
            .compare_exchange(
                CIRCUIT_HALF_OPEN,
                CIRCUIT_CLOSED,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
        {
            telemetry.on_circuit_transition(CircuitState::Closed);
        }
    }

    /// One overload signal: a `Rejected`/`Shed` admission, or one that
    /// succeeded with the aggregate queue at/above the trip depth. A
    /// failed half-open probe re-opens immediately; a closed breaker opens
    /// at the consecutive threshold.
    fn on_overload(&self, telemetry: &RuntimeTelemetry) {
        match self.state.load(Ordering::Acquire) {
            CIRCUIT_HALF_OPEN => self.open(CIRCUIT_HALF_OPEN, telemetry),
            CIRCUIT_CLOSED => {
                let seen = self.overloads.fetch_add(1, Ordering::AcqRel) + 1;
                if seen >= self.opts.overload_threshold {
                    self.open(CIRCUIT_CLOSED, telemetry);
                }
            }
            _ => {}
        }
    }
}

/// A pipelined batch-submission service over a [`ConsensusEngine`].
///
/// Build one with [`ConsensusService::builder`] (or wrap an existing
/// engine with [`ConsensusService::over`]). Submit with
/// [`submit`](ConsensusService::submit) /
/// [`submit_batch`](ConsensusService::submit_batch) and collect decisions
/// through the returned [`DecisionHandle`]s:
///
/// ```
/// use mc_runtime::ConsensusService;
///
/// let service = ConsensusService::builder().n(1).values(64).participants(1).build();
/// let handle = service.submit(0, 42).unwrap();
/// assert_eq!(handle.wait(), Ok(42));
/// ```
///
/// # Ordering and agreement
///
/// All submissions for one `instance_id` land in the same ring and are
/// decided serially by its worker, so they agree — the lab conformance
/// suite proves the service path decides exactly what direct
/// [`submit`](ConsensusEngine::submit) decides for the same proposals.
/// Submissions for *different* instances may complete in any order.
///
/// # Shutdown
///
/// [`shutdown`](ConsensusService::shutdown) (also run on drop) closes the
/// rings, drains every already-accepted proposal, and joins the workers.
/// Proposals a dead worker never reached resolve to
/// [`EngineError::Poisoned`] rather than hanging their handles.
pub struct ConsensusService<M: SharedMemory = AtomicMemory> {
    engine: Arc<ConsensusEngine<M>>,
    rings: Arc<Vec<Ring>>,
    workers: Vec<JoinHandle<()>>,
    options: ServiceOptions,
    capacity: u64,
    /// The admission breaker, present when
    /// [`CircuitOptions::overload_threshold`] is nonzero.
    circuit: Option<Circuit>,
    /// Service-wide admission serial for [`Pending::submission_id`].
    next_submission: AtomicU64,
    /// Whether shutdown already handed per-decide recorder events back to
    /// the engine (shutdown is idempotent; the hand-back must not be).
    events_restored: bool,
}

impl ConsensusService {
    /// Starts building a service (engine knobs plus service knobs in one
    /// fluent path).
    pub fn builder() -> ServiceBuilder {
        ServiceBuilder::new()
    }
}

impl<M: SharedMemory> ConsensusService<M> {
    /// Runs a service over an engine you already hold — the engine remains
    /// usable directly (the conformance tests exploit this to compare both
    /// paths).
    ///
    /// Taking over an engine switches its telemetry to amortized recorder
    /// traffic: per-decide events are suppressed in favor of one
    /// `batch_drained` summary per batch (counters and histograms keep
    /// their per-operation fidelity) — see
    /// [`RuntimeTelemetry::decide_events_on`]. The suppression lasts while
    /// any service is attached; [`shutdown`](ConsensusService::shutdown)
    /// (and drop) hands per-decide events back, so direct
    /// [`submit`](ConsensusEngine::submit) calls after the service is gone
    /// emit the full event stream again.
    ///
    /// # Panics
    ///
    /// Panics if `options.ring_capacity == 0`, `options.batch_max == 0`,
    /// or `options.policy` is `Shed { max_queue_depth: 0 }`.
    pub fn over(engine: Arc<ConsensusEngine<M>>, options: ServiceOptions) -> ConsensusService<M> {
        assert!(options.ring_capacity > 0, "ring capacity must be nonzero");
        assert!(options.batch_max > 0, "batch size must be nonzero");
        if let BackpressurePolicy::Shed { max_queue_depth } = options.policy {
            assert!(max_queue_depth > 0, "shedding bound must be nonzero");
        }
        engine.telemetry().amortize_decide_events();
        let worker_count = if options.workers == 0 {
            engine.shard_count()
        } else {
            options.workers
        };
        let rings = Arc::new((0..worker_count).map(|_| Ring::new()).collect::<Vec<_>>());
        let capacity = engine.options_handle().scheme.capacity();
        let workers = (0..worker_count)
            .map(|ix| {
                let engine = Arc::clone(&engine);
                let rings = Arc::clone(&rings);
                std::thread::Builder::new()
                    .name(format!("mc-service-{ix}"))
                    .spawn(move || supervised_worker_loop(&engine, &rings[ix], ix, options))
                    .expect("spawn service worker")
            })
            .collect();
        ConsensusService {
            engine,
            rings,
            workers,
            options,
            capacity,
            circuit: (options.circuit.overload_threshold > 0)
                .then(|| Circuit::new(options.circuit)),
            next_submission: AtomicU64::new(0),
            events_restored: false,
        }
    }

    /// The engine this service decides on.
    pub fn engine(&self) -> &Arc<ConsensusEngine<M>> {
        &self.engine
    }

    /// Aggregate metrics (shared with the engine): decide histograms, pool
    /// counters, plus the service's `proposals_enqueued` / `batches_drained`
    /// counters, queue-depth gauge, and submit→decision wait histogram.
    pub fn telemetry(&self) -> &RuntimeTelemetry {
        self.engine.telemetry()
    }

    /// Worker threads (= intake rings) this service runs.
    pub fn worker_count(&self) -> usize {
        self.rings.len()
    }

    /// Proposals currently enqueued across all rings.
    pub fn queue_depth(&self) -> usize {
        self.rings.iter().map(|r| r.lock().queue.len()).sum()
    }

    /// Supervision state of ring `ring` (see [`RingHealth`]).
    ///
    /// # Panics
    ///
    /// Panics if `ring >= self.worker_count()`.
    pub fn ring_health(&self, ring: usize) -> RingHealth {
        self.rings[ring].lock().health
    }

    /// The breaker's current state, when one is configured
    /// ([`CircuitOptions::overload_threshold`] nonzero).
    pub fn circuit_state(&self) -> Option<CircuitState> {
        self.circuit
            .as_ref()
            .map(|c| match c.state.load(Ordering::Acquire) {
                CIRCUIT_CLOSED => CircuitState::Closed,
                CIRCUIT_OPEN => CircuitState::Open,
                _ => CircuitState::HalfOpen,
            })
    }

    fn ring_of(&self, instance_id: u64) -> &Ring {
        // Same Fibonacci hash as the engine's shards: one instance, one
        // ring, one worker — serial decides per instance.
        let h = (instance_id.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 32;
        &self.rings[(h as usize) % self.rings.len()]
    }

    /// Applies admission control and pushes one proposal under the ring
    /// lock; threads the guard back so a batch can admit a whole run of
    /// proposals without re-locking. The caller notifies the worker.
    fn admit<'g>(
        &self,
        ring: &'g Ring,
        mut state: MutexGuard<'g, RingState>,
        instance_id: u64,
        proposal: u64,
        enqueued_at: Instant,
    ) -> (
        MutexGuard<'g, RingState>,
        Result<DecisionHandle, EngineError>,
    ) {
        let telemetry = self.engine.telemetry();
        match self.options.policy {
            BackpressurePolicy::Block => {
                while state.queue.len() >= self.options.ring_capacity && !state.closed {
                    // A full ring is a non-empty ring, but its worker may
                    // still be parked: `submit_batch` notifies only after a
                    // whole run is admitted, so when one run overfills the
                    // ring the wake-up this producer is waiting on would
                    // never be sent. Wake the worker before parking.
                    ring.to_worker.notify_one();
                    state = ring
                        .to_producers
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
            BackpressurePolicy::Reject => {
                if state.queue.len() >= self.options.ring_capacity {
                    telemetry.on_proposal_rejected();
                    self.overload_signal();
                    return (state, Err(EngineError::Rejected));
                }
            }
            BackpressurePolicy::Shed { max_queue_depth } => {
                if state.queue.len() >= max_queue_depth {
                    telemetry.on_proposal_shed();
                    self.overload_signal();
                    return (state, Err(EngineError::Shed { max_queue_depth }));
                }
            }
        }
        if state.closed {
            telemetry.on_proposal_rejected();
            return (state, Err(EngineError::Rejected));
        }
        let cell = Cell::new();
        let handle = DecisionHandle {
            cell: Arc::clone(&cell),
            deadline: None,
        };
        state.queue.push_back(Pending {
            // Under the ring lock, so ids are strictly increasing per ring.
            submission_id: self.next_submission.fetch_add(1, Ordering::Relaxed),
            instance_id,
            proposal,
            enqueued_at,
            cell,
        });
        telemetry.on_proposal_enqueued();
        if let Some(circuit) = &self.circuit {
            // A clean admission while the aggregate queue sits at/above the
            // trip depth still signals overload — depth pressure trips the
            // breaker before rejections start under `Block`.
            let deep = self.options.circuit.trip_queue_depth > 0
                && telemetry.queue_depth() >= self.options.circuit.trip_queue_depth as u64;
            if deep {
                circuit.on_overload(telemetry);
            } else {
                circuit.on_success(telemetry);
            }
        }
        (state, Ok(handle))
    }

    /// Feeds one refused admission into the breaker, if one is configured.
    fn overload_signal(&self) {
        if let Some(circuit) = &self.circuit {
            circuit.on_overload(self.engine.telemetry());
        }
    }

    /// Enqueues one proposal for `instance_id` and returns its handle
    /// immediately; the decision arrives through the handle.
    ///
    /// # Errors
    ///
    /// [`EngineError::Rejected`] / [`EngineError::Shed`] per the
    /// configured [`BackpressurePolicy`], and [`EngineError::Rejected`]
    /// after [`shutdown`](ConsensusService::shutdown).
    ///
    /// # Panics
    ///
    /// Panics if `proposal` exceeds the engine's value capacity (checked
    /// here, at admission, so an invalid proposal can never kill a
    /// worker).
    pub fn submit(&self, instance_id: u64, proposal: u64) -> Result<DecisionHandle, EngineError> {
        self.submit_with(instance_id, proposal, &SubmitOptions::new())
    }

    /// [`submit`](ConsensusService::submit) with a per-submission budget:
    /// an optional absolute deadline and a seeded-jitter [`RetryPolicy`]
    /// applied to `Rejected`/`Shed` admissions. The returned handle
    /// carries the deadline, so [`wait`](DecisionHandle::wait) honors the
    /// same budget.
    ///
    /// # Errors
    ///
    /// [`EngineError::Rejected`] / [`EngineError::Shed`] when admission
    /// refuses and the policy allows no retries;
    /// [`EngineError::RetriesExhausted`] when every allowed retry was
    /// refused; [`EngineError::DeadlineExceeded`] when the deadline passes
    /// before an admission succeeds; [`EngineError::CircuitOpen`] when the
    /// configured breaker is open (or a half-open probe is already in
    /// flight).
    ///
    /// # Panics
    ///
    /// As [`submit`](ConsensusService::submit).
    pub fn submit_with(
        &self,
        instance_id: u64,
        proposal: u64,
        opts: &SubmitOptions,
    ) -> Result<DecisionHandle, EngineError> {
        assert!(
            proposal < self.capacity,
            "value {proposal} exceeds consensus capacity {}",
            self.capacity
        );
        let mut attempts: u32 = 0;
        loop {
            if let Some(circuit) = &self.circuit {
                circuit.check(self.engine.telemetry())?;
            }
            let ring = self.ring_of(instance_id);
            let (state, result) =
                self.admit(ring, ring.lock(), instance_id, proposal, Instant::now());
            drop(state);
            attempts += 1;
            match result {
                Ok(handle) => {
                    ring.to_worker.notify_one();
                    return Ok(match opts.deadline {
                        Some(deadline) => handle.with_deadline(deadline),
                        None => handle,
                    });
                }
                Err(err @ (EngineError::Rejected | EngineError::Shed { .. })) => {
                    if attempts > opts.retry.max_retries {
                        // With no retry budget at all, surface the raw
                        // admission error (plain `submit` semantics);
                        // otherwise report the spent budget.
                        return Err(if opts.retry.max_retries == 0 {
                            err
                        } else {
                            EngineError::RetriesExhausted { attempts }
                        });
                    }
                    let delay = opts.retry.delay_for(attempts - 1);
                    match opts.deadline {
                        None => std::thread::sleep(delay),
                        Some(deadline) => {
                            let now = crate::clock::now();
                            if now >= deadline {
                                return Err(EngineError::DeadlineExceeded);
                            }
                            std::thread::sleep(delay.min(deadline - now));
                            if crate::clock::now() >= deadline {
                                return Err(EngineError::DeadlineExceeded);
                            }
                        }
                    }
                }
                Err(other) => return Err(other),
            }
        }
    }

    /// Enqueues a batch of `(instance_id, proposal)` pairs, taking each
    /// ring's lock once per batch rather than once per proposal — the
    /// producer-side half of the pipeline's amortization. Results come
    /// back in input order.
    ///
    /// Admission control applies per proposal, so one full ring rejects or
    /// sheds only its own items.
    ///
    /// # Panics
    ///
    /// As [`submit`](ConsensusService::submit).
    pub fn submit_batch(&self, items: &[(u64, u64)]) -> Vec<Result<DecisionHandle, EngineError>> {
        for &(_, proposal) in items {
            assert!(
                proposal < self.capacity,
                "value {proposal} exceeds consensus capacity {}",
                self.capacity
            );
        }
        if let Some(circuit) = &self.circuit {
            // One gate per batch: an open breaker fast-fails the whole
            // batch; a half-open breaker lets the batch through as its
            // probe (its admissions feed success/overload per proposal).
            if let Err(e) = circuit.check(self.engine.telemetry()) {
                return items.iter().map(|_| Err(e)).collect();
            }
        }
        let mut results: Vec<Option<Result<DecisionHandle, EngineError>>> =
            (0..items.len()).map(|_| None).collect();
        // Admit each contiguous run landing in the same ring under ONE
        // lock acquisition — with a single worker (or ids pre-grouped by
        // producer) that is one lock per batch.
        let mut ix = 0;
        while ix < items.len() {
            let ring = self.ring_of(items[ix].0);
            let mut end = ix + 1;
            while end < items.len() && std::ptr::eq(self.ring_of(items[end].0), ring) {
                end += 1;
            }
            let mut state = ring.lock();
            let mut admitted = false;
            // One timestamp per run: wait-latency accounting is batch-grained
            // on the enqueue side, like the drain side's telemetry flush.
            let enqueued_at = Instant::now();
            for (slot, &(instance_id, proposal)) in results[ix..end].iter_mut().zip(&items[ix..end])
            {
                let (next, result) = self.admit(ring, state, instance_id, proposal, enqueued_at);
                state = next;
                admitted |= result.is_ok();
                *slot = Some(result);
            }
            drop(state);
            if admitted {
                ring.to_worker.notify_one();
            }
            ix = end;
        }
        results.into_iter().map(|r| r.expect("filled")).collect()
    }

    /// Stops workers from draining, leaving submissions to pile up in the
    /// rings — the deterministic-saturation hook the backpressure tests
    /// use. Batches already taken finish first.
    pub fn pause(&self) {
        for ring in self.rings.iter() {
            ring.lock().paused = true;
        }
    }

    /// Resumes draining after [`pause`](ConsensusService::pause).
    pub fn resume(&self) {
        for ring in self.rings.iter() {
            ring.lock().paused = false;
            ring.to_worker.notify_all();
        }
    }

    /// Closes the rings, waits for every accepted proposal to decide, and
    /// joins the workers. Idempotent; also runs on drop. Proposals left
    /// behind by a worker that died resolve to [`EngineError::Poisoned`].
    pub fn shutdown(&mut self) {
        for ring in self.rings.iter() {
            let mut state = ring.lock();
            state.closed = true;
            // A paused, closed service must still drain: shutdown's
            // contract (Block never loses a proposal) outranks the test
            // hook.
            state.paused = false;
            drop(state);
            ring.to_worker.notify_all();
            ring.to_producers.notify_all();
        }
        for worker in self.workers.drain(..) {
            // A worker that panicked already poisoned its local batch by
            // unwinding; swallow the panic so shutdown (and drop) can
            // poison whatever is left in its ring below.
            let _ = worker.join();
        }
        for ring in self.rings.iter() {
            // Dropping a still-Waiting Pending poisons its cell.
            let mut state = ring.lock();
            let orphaned = state.queue.len();
            state.queue.clear();
            // A terminally-poisoned worker may have left its in-flight
            // stash behind; those proposals were already subtracted from
            // the depth gauge when their batch drained, so clear without
            // re-accounting.
            ring.lock_inflight().clear();
            drop(state);
            self.engine
                .telemetry()
                .on_proposals_dequeued(orphaned as u64);
        }
        if !self.events_restored {
            self.events_restored = true;
            // Hand per-decide recorder events back: the engine outlives the
            // service and its direct `submit` path must emit again.
            self.engine.telemetry().restore_decide_events();
        }
    }
}

impl<M: SharedMemory> Drop for ConsensusService<M> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl<M: SharedMemory> std::fmt::Debug for ConsensusService<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConsensusService")
            .field("workers", &self.worker_count())
            .field("queue_depth", &self.queue_depth())
            .field("policy", &self.options.policy)
            .finish_non_exhaustive()
    }
}

/// Degrades a ring to the terminal [`RingHealth::Poisoned`] state:
/// admission flips to [`EngineError::Rejected`], producers parked under
/// [`BackpressurePolicy::Block`] are released, and every proposal still
/// queued or in flight is poisoned — without this, a dead ring would keep
/// accepting proposals that nothing will ever drain.
fn terminal_poison(ring: &Ring, telemetry: &RuntimeTelemetry) {
    let mut state = ring.lock();
    state.closed = true;
    state.health = RingHealth::Poisoned;
    let orphaned = std::mem::take(&mut state.queue);
    // The in-flight stash was subtracted from the depth gauge when its
    // batch drained — take it for poisoning without re-accounting.
    let stash = std::mem::take(&mut *ring.lock_inflight());
    drop(state);
    // Settle the depth gauge BEFORE dropping the orphans: dropping a
    // still-Waiting Pending poisons its cell and wakes its waiters, and a
    // woken waiter must observe a consistent ledger.
    telemetry.on_proposals_dequeued(orphaned.len() as u64);
    drop(orphaned);
    drop(stash);
    ring.to_producers.notify_all();
}

/// Last-resort guard inside [`supervised_worker_loop`]: fires only when a
/// panic escapes the supervision machinery itself (the catch/recover path
/// is itself under `catch_unwind`, so this means the loop around it
/// failed). The restart budget no longer applies — poison terminally
/// rather than strand producers.
struct WorkerDeathGuard<'a> {
    ring: &'a Ring,
    telemetry: &'a RuntimeTelemetry,
}

impl Drop for WorkerDeathGuard<'_> {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            // Normal exit: the ring is already closed and drained.
            return;
        }
        terminal_poison(self.ring, self.telemetry);
    }
}

/// Per-worker chaos bookkeeping. Drain and injected-panic counts live
/// OUTSIDE the restart loop, so a plan's `max_panics` cap is a per-worker
/// total across incarnations, not per incarnation — a plan with
/// `max_panics <= restart_budget` is guaranteed to stay within budget.
struct ChaosState {
    plan: ChaosPlan,
    /// This worker's index, used to phase its injection points.
    stream: u64,
    drains: u64,
    panics: u32,
}

impl ChaosState {
    fn new(plan: ChaosPlan, ring_ix: usize) -> ChaosState {
        ChaosState {
            plan,
            stream: ring_ix as u64,
            drains: 0,
            panics: 0,
        }
    }

    /// Runs once per drained batch — after the batch moved to the ring's
    /// in-flight stash, before any decide — so an injected panic unwinds
    /// with every proposal still recoverable.
    fn at_drain_boundary(&mut self) {
        self.drains += 1;
        if self.plan.stall_every > 0
            && self.drains % self.plan.stall_every
                == mix(self.plan.seed, self.stream ^ 0x0005_7A11) % self.plan.stall_every
        {
            std::thread::sleep(self.plan.stall_for);
        }
        if self.plan.panic_every > 0
            && self.panics < self.plan.max_panics
            && self.drains % self.plan.panic_every
                == mix(self.plan.seed, self.stream) % self.plan.panic_every
        {
            self.panics += 1;
            panic!(
                "chaos: injected worker panic {} at drain {}",
                self.panics, self.drains
            );
        }
    }
}

/// The supervisor wrapped around each worker: run [`drain_loop`] under
/// `catch_unwind`; on a panic, either restart (re-admitting the dead
/// incarnation's undecided in-flight remainder exactly once, then backing
/// off exponentially) or — past the restart budget — degrade the ring to
/// [`RingHealth::Poisoned`].
///
/// Recovery runs INSIDE the next incarnation's `catch_unwind`, so a panic
/// during recovery (say, a recorder panicking on the restart event) counts
/// against the same budget instead of killing the thread.
fn supervised_worker_loop<M: SharedMemory>(
    engine: &ConsensusEngine<M>,
    ring: &Ring,
    ring_ix: usize,
    options: ServiceOptions,
) {
    let _death_guard = WorkerDeathGuard {
        ring,
        telemetry: engine.telemetry(),
    };
    let mut chaos = ChaosState::new(options.chaos, ring_ix);
    let mut restarts: u32 = 0;
    // When a panic is pending recovery: the instant it was caught, so the
    // recovery latency histogram covers re-admission AND backoff.
    let mut pending_recovery: Option<Instant> = None;
    loop {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if let Some(caught_at) = pending_recovery.take() {
                recover(engine, ring, ring_ix, &options, restarts, caught_at);
            }
            drain_loop(engine, ring, ring_ix, &options, restarts, &mut chaos);
        }));
        match outcome {
            // Closed and drained: clean exit.
            Ok(()) => return,
            Err(_) => {
                restarts += 1;
                if restarts > options.supervisor.restart_budget {
                    terminal_poison(ring, engine.telemetry());
                    return;
                }
                pending_recovery = Some(Instant::now());
            }
        }
    }
}

/// Restores a ring after its worker's panic, before the next incarnation
/// drains: re-admit the in-flight remainder, back off, report.
///
/// Exactly-once argument: the stash holds precisely the drained proposals
/// not yet popped for a decide. A decided proposal was popped and
/// completed, so it is not here; the proposal mid-decide at the panic was
/// popped too (its unwinding drop poisoned its cell); everything else has
/// a still-`Waiting` cell and exactly one [`Pending`] — moved back to the
/// ring FRONT in original order, under the ring lock, so no proposal is
/// lost, reordered, or decided twice. The `submission_id` asserts pin the
/// in-order part.
fn recover<M: SharedMemory>(
    engine: &ConsensusEngine<M>,
    ring: &Ring,
    ring_ix: usize,
    options: &ServiceOptions,
    attempt: u32,
    caught_at: Instant,
) {
    let telemetry = engine.telemetry();
    let resubmitted;
    {
        let mut state = ring.lock();
        state.health = RingHealth::Restarting;
        let mut inflight = ring.lock_inflight();
        resubmitted = inflight.len() as u64;
        while let Some(item) = inflight.pop_back() {
            debug_assert!(
                item.cell.read() == CellState::Waiting,
                "a completed proposal must never be re-admitted"
            );
            debug_assert!(
                state
                    .queue
                    .front()
                    .is_none_or(|next| item.submission_id < next.submission_id),
                "re-admission must preserve per-ring submission order"
            );
            state.queue.push_front(item);
        }
    }
    telemetry.on_proposals_requeued(resubmitted);
    // Exponential backoff, interruptible by shutdown closing the ring.
    let sup = &options.supervisor;
    let raw_ns = sup.base_backoff.as_nanos() << u32::min(attempt.saturating_sub(1), 63);
    let backoff = Duration::from_nanos(
        u64::try_from(raw_ns.min(sup.max_backoff.as_nanos())).unwrap_or(u64::MAX),
    );
    let wake_at = Instant::now() + backoff;
    {
        let mut state = ring.lock();
        loop {
            if state.closed {
                break;
            }
            let now = Instant::now();
            if now >= wake_at {
                break;
            }
            let (next, _) = ring
                .to_worker
                .wait_timeout(state, wake_at - now)
                .unwrap_or_else(PoisonError::into_inner);
            state = next;
        }
        state.health = RingHealth::Healthy;
    }
    let recovery_ns = u64::try_from(caught_at.elapsed().as_nanos()).unwrap_or(u64::MAX);
    telemetry.on_worker_restart(ring_ix as u64, u64::from(attempt), resubmitted, recovery_ns);
}

/// One worker incarnation: block for work, move up to `batch_max`
/// proposals to the ring's in-flight stash, run chaos injections, decide
/// item by item, emit one `batch_drained` event — repeat until closed and
/// empty. Panics unwind to [`supervised_worker_loop`].
fn drain_loop<M: SharedMemory>(
    engine: &ConsensusEngine<M>,
    ring: &Ring,
    ring_ix: usize,
    options: &ServiceOptions,
    incarnation: u32,
    chaos: &mut ChaosState,
) {
    // Incarnation 0 reproduces the pre-supervision coin stream exactly;
    // each restart re-seeds deterministically rather than replaying the
    // dead incarnation's flips.
    let worker_seed = options.seed.wrapping_add(ring_ix as u64);
    let mut rng = if incarnation == 0 {
        SmallRng::seed_from_u64(worker_seed)
    } else {
        SmallRng::seed_from_u64(mix(worker_seed, u64::from(incarnation)))
    };
    let telemetry = Arc::clone(engine.telemetry_handle());
    // Single-participant engines get the zero-lock fast path: one pooled
    // object serves the whole stream (see `ConsensusEngine::detached_slot`).
    let mut slot = (engine.participants() == 1).then(|| engine.detached_slot(ring_ix));
    loop {
        let depth_after;
        {
            let mut state = ring.lock();
            while (state.queue.is_empty() || state.paused) && !state.closed {
                state = ring
                    .to_worker
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            if state.queue.is_empty() && state.closed {
                return;
            }
            let take = state.queue.len().min(options.batch_max);
            {
                // Stash the batch on the ring rather than locally: a panic
                // anywhere past this point leaves the undecided remainder
                // where the supervisor can re-admit it.
                let mut inflight = ring.lock_inflight();
                debug_assert!(
                    inflight.is_empty(),
                    "the in-flight stash drains fully between batches"
                );
                inflight.extend(state.queue.drain(..take));
            }
            depth_after = state.queue.len();
            drop(state);
            // The drained proposals left the ring the moment `drain` took
            // them — account for them now, not at batch completion, so the
            // aggregate gauge stays honest even if a decide panics.
            telemetry.on_proposals_dequeued(take as u64);
            // Room freed: wake producers blocked under `Block`.
            ring.to_producers.notify_all();
        }
        // Chaos fires at the drain boundary — batch stashed, nothing
        // popped — so an injected panic loses no proposal.
        chaos.at_drain_boundary();
        let mut done: u64 = 0;
        loop {
            // Pop ONE item and release the stash lock before deciding (a
            // `while let` scrutinee guard would pin it across the decide).
            let item = match ring.lock_inflight().pop_front() {
                Some(item) => item,
                None => break,
            };
            // If this decide panics, the unwind drops `item` — poisoning
            // just that cell (see `Pending::drop`); the rest of the batch
            // stays in the stash for re-admission.
            let decided = match &mut slot {
                Some(slot) => slot.decide(item.proposal, &mut rng),
                None => engine.submit_unbounded(item.instance_id, item.proposal, &mut rng),
            };
            item.complete(decided);
            let wait_ns = u64::try_from(item.enqueued_at.elapsed().as_nanos()).unwrap_or(u64::MAX);
            telemetry.on_service_wait(wait_ns);
            done += 1;
        }
        telemetry.on_batch_drained(ring_ix as u64, done, depth_after as u64);
    }
}

/// Fluent constructor for [`ConsensusService`]: every [`EngineBuilder`]
/// knob plus the service's own. Obtain one from
/// [`ConsensusService::builder`].
///
/// [`EngineBuilder`]: crate::EngineBuilder
#[derive(Clone, Debug)]
pub struct ServiceBuilder<M: SharedMemory = AtomicMemory> {
    engine: crate::EngineBuilder<M>,
    service: ServiceOptions,
}

impl Default for ServiceBuilder {
    fn default() -> ServiceBuilder {
        ServiceBuilder {
            engine: crate::EngineBuilder::default(),
            service: ServiceOptions::default(),
        }
    }
}

impl ServiceBuilder {
    /// A builder with every knob at its default; `n` must still be set.
    pub fn new() -> ServiceBuilder {
        ServiceBuilder::default()
    }
}

impl<M: SharedMemory> ServiceBuilder<M> {
    /// Maximum participating threads per instance. Required.
    #[must_use]
    pub fn n(mut self, n: usize) -> Self {
        self.engine = self.engine.n(n);
        self
    }

    /// Number of distinct proposal values; see
    /// [`ConsensusBuilder::values`](crate::ConsensusBuilder::values).
    #[must_use]
    pub fn values(mut self, m: u64) -> Self {
        self.engine = self.engine.values(m);
        self
    }

    /// Conciliator portfolio choice for every pooled instance; see
    /// [`ConsensusBuilder::conciliator`](crate::ConsensusBuilder::conciliator).
    #[must_use]
    pub fn conciliator(mut self, choice: crate::ConciliatorChoice) -> Self {
        self.engine = self.engine.conciliator(choice);
        self
    }

    /// Telemetry event sink; see
    /// [`ConsensusBuilder::recorder`](crate::ConsensusBuilder::recorder).
    #[must_use]
    pub fn recorder(mut self, recorder: Arc<dyn mc_telemetry::Recorder>) -> Self {
        self.engine = self.engine.recorder(recorder);
        self
    }

    /// Register substrate; see
    /// [`ConsensusBuilder::memory`](crate::ConsensusBuilder::memory).
    #[must_use]
    pub fn memory<M2: SharedMemory>(self, memory: M2) -> ServiceBuilder<M2> {
        ServiceBuilder {
            engine: self.engine.memory(memory),
            service: self.service,
        }
    }

    /// Engine shards; see [`EngineBuilder::shards`](crate::EngineBuilder::shards).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.engine = self.engine.shards(shards);
        self
    }

    /// Submits per instance; see
    /// [`EngineBuilder::participants`](crate::EngineBuilder::participants).
    #[must_use]
    pub fn participants(mut self, participants: usize) -> Self {
        self.engine = self.engine.participants(participants);
        self
    }

    /// Admission control (default [`BackpressurePolicy::Block`]).
    #[must_use]
    pub fn backpressure(mut self, policy: BackpressurePolicy) -> Self {
        self.service.policy = policy;
        self
    }

    /// Ring capacity (default 1024); see [`ServiceOptions::ring_capacity`].
    #[must_use]
    pub fn ring_capacity(mut self, capacity: usize) -> Self {
        self.service.ring_capacity = capacity;
        self
    }

    /// Largest batch a worker drains at once (default 256).
    #[must_use]
    pub fn batch_max(mut self, batch: usize) -> Self {
        self.service.batch_max = batch;
        self
    }

    /// Worker threads / rings (default: one per engine shard).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.service.workers = workers;
        self
    }

    /// Base seed for the workers' RNGs (default `0x5EED`).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.service.seed = seed;
        self
    }

    /// Worker supervision knobs (default [`SupervisorOptions::default`]).
    #[must_use]
    pub fn supervisor(mut self, supervisor: SupervisorOptions) -> Self {
        self.service.supervisor = supervisor;
        self
    }

    /// Shorthand for setting just [`SupervisorOptions::restart_budget`]
    /// (0 = first panic poisons the ring, the pre-supervision behavior).
    #[must_use]
    pub fn restart_budget(mut self, budget: u32) -> Self {
        self.service.supervisor.restart_budget = budget;
        self
    }

    /// Seeded service-level fault injection (default [`ChaosPlan::none`]).
    #[must_use]
    pub fn chaos(mut self, plan: ChaosPlan) -> Self {
        self.service.chaos = plan;
        self
    }

    /// Admission circuit breaker (default [`CircuitOptions::disabled`]).
    #[must_use]
    pub fn circuit(mut self, circuit: CircuitOptions) -> Self {
        self.service.circuit = circuit;
        self
    }

    /// Builds the engine and starts the service's workers over it.
    ///
    /// # Panics
    ///
    /// As [`EngineBuilder::build`](crate::EngineBuilder::build) and
    /// [`ConsensusService::over`].
    pub fn build(self) -> ConsensusService<M> {
        ConsensusService::over(Arc::new(self.engine.build()), self.service)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_worker_service(policy: BackpressurePolicy) -> ConsensusService {
        ConsensusService::builder()
            .n(1)
            .values(1024)
            .participants(1)
            .shards(1)
            .workers(1)
            .backpressure(policy)
            .build()
    }

    #[test]
    fn decisions_flow_back_through_handles() {
        let service = single_worker_service(BackpressurePolicy::Block);
        let handles: Vec<DecisionHandle> = (0..100u64)
            .map(|id| service.submit(id, id % 1024).unwrap())
            .collect();
        for (id, handle) in handles.iter().enumerate() {
            assert_eq!(handle.wait(), Ok(id as u64 % 1024));
        }
        // Join the workers before asserting batch counters: the final
        // `batch_drained` lands after the batch's handles complete.
        let t = Arc::clone(service.engine().telemetry_handle());
        drop(service);
        assert_eq!(t.proposals_enqueued(), 100);
        assert_eq!(t.decisions(), 100);
        assert_eq!(t.instances_retired(), 100);
        assert!(t.batches_drained() >= 1);
        assert_eq!(t.service_wait_ns().count(), 100);
    }

    #[test]
    fn submit_batch_matches_per_call_submit() {
        let service = single_worker_service(BackpressurePolicy::Block);
        let items: Vec<(u64, u64)> = (0..64u64).map(|id| (id, (id * 7) % 1024)).collect();
        let handles = service.submit_batch(&items);
        for (handle, (_, proposal)) in handles.into_iter().zip(&items) {
            assert_eq!(handle.unwrap().wait(), Ok(*proposal));
        }
    }

    #[test]
    fn same_instance_submissions_agree_with_multiple_participants() {
        let service = ConsensusService::builder()
            .n(3)
            .values(8)
            .participants(3)
            .shards(1)
            .workers(1)
            .build();
        let handles: Vec<DecisionHandle> = (0..3u64)
            .map(|p| service.submit(7, p + 1).unwrap())
            .collect();
        let decisions: Vec<u64> = handles.iter().map(|h| h.wait().unwrap()).collect();
        assert!(
            decisions.iter().all(|&d| d == decisions[0]),
            "{decisions:?}"
        );
        assert!((1..=3).contains(&decisions[0]));
        assert_eq!(service.engine().live_instances(), 0);
    }

    #[test]
    fn poll_sees_waiting_then_done() {
        let service = single_worker_service(BackpressurePolicy::Block);
        service.pause();
        let handle = service.submit(0, 5).unwrap();
        assert_eq!(handle.poll(), None);
        service.resume();
        assert_eq!(handle.wait(), Ok(5));
        assert_eq!(handle.poll(), Some(Ok(5)));
    }

    #[test]
    fn wait_timeout_times_out_then_succeeds() {
        let service = single_worker_service(BackpressurePolicy::Block);
        service.pause();
        let handle = service.submit(0, 9).unwrap();
        assert_eq!(
            handle.wait_timeout(Duration::from_millis(20)),
            Err(EngineError::Timeout)
        );
        service.resume();
        assert_eq!(handle.wait_timeout(Duration::from_secs(30)), Ok(9));
    }

    #[test]
    fn shed_fires_at_exactly_the_bound() {
        let service = single_worker_service(BackpressurePolicy::Shed { max_queue_depth: 4 });
        service.pause();
        let handles: Vec<DecisionHandle> = (0..4u64)
            .map(|id| service.submit(id, id).unwrap())
            .collect();
        // The fifth proposal is the first past the bound: shed, never
        // enqueued.
        assert!(matches!(
            service.submit(4, 4),
            Err(EngineError::Shed { max_queue_depth: 4 })
        ));
        assert_eq!(service.telemetry().proposals_shed(), 1);
        assert_eq!(service.queue_depth(), 4);
        service.resume();
        for (id, handle) in handles.iter().enumerate() {
            assert_eq!(handle.wait(), Ok(id as u64));
        }
        // Depth drained: admission works again.
        assert_eq!(service.submit(4, 4).unwrap().wait(), Ok(4));
    }

    #[test]
    fn reject_refuses_when_the_ring_is_full() {
        let service = ConsensusService::builder()
            .n(1)
            .values(64)
            .participants(1)
            .shards(1)
            .workers(1)
            .backpressure(BackpressurePolicy::Reject)
            .ring_capacity(2)
            .build();
        service.pause();
        service.submit(0, 0).unwrap();
        service.submit(1, 1).unwrap();
        assert!(matches!(service.submit(2, 2), Err(EngineError::Rejected)));
        assert_eq!(service.telemetry().proposals_rejected(), 1);
        service.resume();
    }

    #[test]
    fn block_policy_never_loses_a_proposal() {
        let service = Arc::new(
            ConsensusService::builder()
                .n(1)
                .values(1024)
                .participants(1)
                .shards(1)
                .workers(1)
                .backpressure(BackpressurePolicy::Block)
                .ring_capacity(8)
                .batch_max(4)
                .build(),
        );
        // 4 producers × 100 proposals through an 8-deep ring: producers
        // must block rather than lose or drop anything.
        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let service = Arc::clone(&service);
                std::thread::spawn(move || {
                    (0..100u64)
                        .map(|i| {
                            let id = p * 100 + i;
                            service.submit(id, id % 1024).unwrap()
                        })
                        .collect::<Vec<DecisionHandle>>()
                })
            })
            .collect();
        let handles: Vec<Vec<DecisionHandle>> =
            producers.into_iter().map(|h| h.join().unwrap()).collect();
        for (p, batch) in handles.iter().enumerate() {
            for (i, handle) in batch.iter().enumerate() {
                let id = p as u64 * 100 + i as u64;
                assert_eq!(handle.wait(), Ok(id % 1024));
            }
        }
        let t = service.telemetry();
        assert_eq!(t.proposals_enqueued(), 400);
        assert_eq!(t.decisions(), 400);
        assert_eq!(t.proposals_shed(), 0);
        assert_eq!(t.proposals_rejected(), 0);
    }

    #[test]
    fn submit_batch_larger_than_ring_capacity_does_not_deadlock() {
        let service = ConsensusService::builder()
            .n(1)
            .values(1024)
            .participants(1)
            .shards(1)
            .workers(1)
            .ring_capacity(2)
            .batch_max(2)
            .build();
        // One run of 32 proposals through a 2-slot ring: admission must
        // wake the (initially parked) worker before blocking, or the
        // producer waits for a drain the worker was never told about.
        let items: Vec<(u64, u64)> = (0..32u64).map(|id| (id, id)).collect();
        let handles = service.submit_batch(&items);
        for (id, handle) in handles.into_iter().enumerate() {
            assert_eq!(handle.unwrap().wait(), Ok(id as u64));
        }
    }

    #[test]
    fn shutdown_restores_per_decide_recorder_events() {
        let agg = Arc::new(mc_telemetry::AggregatingRecorder::new());
        let engine = Arc::new(
            ConsensusEngine::builder()
                .n(1)
                .values(8)
                .participants(1)
                .recorder(Arc::clone(&agg) as Arc<dyn mc_telemetry::Recorder>)
                .build(),
        );
        {
            let _service = ConsensusService::over(Arc::clone(&engine), ServiceOptions::default());
            assert!(!engine.telemetry().decide_events_on());
        }
        // Drop ran shutdown: the engine is usable directly again, with
        // the full per-decide event stream.
        assert!(engine.telemetry().decide_events_on());
        let mut rng = SmallRng::seed_from_u64(7);
        engine.submit(0, 3, &mut rng);
        assert_eq!(agg.decisions(), 1);
    }

    struct PanicOnBatchDrained;

    impl mc_telemetry::Recorder for PanicOnBatchDrained {
        fn record(&self, event: &mc_telemetry::TelemetryEvent) {
            if matches!(event, mc_telemetry::TelemetryEvent::BatchDrained { .. }) {
                panic!("injected recorder failure");
            }
        }
    }

    #[test]
    fn dead_worker_closes_its_ring_instead_of_hanging_producers() {
        // restart_budget 0: the pre-supervision contract — the first panic
        // is terminal.
        let service = ConsensusService::builder()
            .n(1)
            .values(64)
            .participants(1)
            .shards(1)
            .workers(1)
            .batch_max(1)
            .restart_budget(0)
            .recorder(Arc::new(PanicOnBatchDrained) as Arc<dyn mc_telemetry::Recorder>)
            .build();
        service.pause();
        let handles: Vec<DecisionHandle> = (0..4u64)
            .map(|id| service.submit(id, id).unwrap())
            .collect();
        service.resume();
        // batch_max 1: the worker decides the first proposal, then dies
        // emitting its batch event; the supervisor (budget 0) poisons the
        // ring and the three proposals it never reached.
        assert_eq!(handles[0].wait(), Ok(0));
        for handle in &handles[1..] {
            assert_eq!(handle.wait(), Err(EngineError::Poisoned));
        }
        // The closed ring refuses new work instead of queueing proposals
        // nothing will ever drain (a Block producer would otherwise park
        // forever against the dead ring).
        assert!(matches!(service.submit(9, 9), Err(EngineError::Rejected)));
        assert_eq!(service.queue_depth(), 0);
        assert_eq!(service.telemetry().queue_depth(), 0);
        assert_eq!(service.ring_health(0), RingHealth::Poisoned);
    }

    #[test]
    fn supervised_worker_survives_recorder_panics_within_budget() {
        // Every batch event panics the worker; batch_max 1 makes that one
        // panic per proposal. With a budget of 4, four proposals all
        // decide — each after one restart.
        let service = ConsensusService::builder()
            .n(1)
            .values(64)
            .participants(1)
            .shards(1)
            .workers(1)
            .batch_max(1)
            .supervisor(SupervisorOptions {
                restart_budget: 4,
                base_backoff: Duration::from_micros(50),
                max_backoff: Duration::from_millis(1),
            })
            .recorder(Arc::new(PanicOnBatchDrained) as Arc<dyn mc_telemetry::Recorder>)
            .build();
        let handles: Vec<DecisionHandle> = (0..4u64)
            .map(|id| service.submit(id, id).unwrap())
            .collect();
        for (id, handle) in handles.iter().enumerate() {
            assert_eq!(handle.wait(), Ok(id as u64), "proposal {id}");
        }
        let t = Arc::clone(service.engine().telemetry_handle());
        drop(service);
        assert_eq!(t.decisions(), 4);
        assert_eq!(t.worker_restarts(), 4);
        assert_eq!(t.worker_recovery_ns().count(), 4);
        // The batch events all panicked mid-record, so the proposals were
        // already decided when each panic hit: nothing to re-admit.
        assert_eq!(t.resubmitted_cells(), 0);
    }

    #[test]
    fn budget_exhaustion_degrades_to_poisoned() {
        let service = ConsensusService::builder()
            .n(1)
            .values(64)
            .participants(1)
            .shards(1)
            .workers(1)
            .batch_max(1)
            .supervisor(SupervisorOptions {
                restart_budget: 2,
                base_backoff: Duration::from_micros(50),
                max_backoff: Duration::from_millis(1),
            })
            .recorder(Arc::new(PanicOnBatchDrained) as Arc<dyn mc_telemetry::Recorder>)
            .build();
        service.pause();
        let handles: Vec<DecisionHandle> = (0..5u64)
            .map(|id| service.submit(id, id).unwrap())
            .collect();
        service.resume();
        // Panics 1 and 2 are survived (budget 2); the third is terminal.
        // Three proposals decide before their batch event panics; the
        // remaining two are poisoned.
        for (id, handle) in handles.iter().take(3).enumerate() {
            assert_eq!(handle.wait(), Ok(id as u64), "proposal {id}");
        }
        for handle in &handles[3..] {
            assert_eq!(handle.wait(), Err(EngineError::Poisoned));
        }
        assert_eq!(service.ring_health(0), RingHealth::Poisoned);
        assert!(matches!(service.submit(9, 9), Err(EngineError::Rejected)));
        assert_eq!(service.telemetry().worker_restarts(), 2);
        assert_eq!(service.telemetry().queue_depth(), 0);
    }

    #[test]
    fn chaos_panics_requeue_the_whole_batch_exactly_once() {
        // panic_every 1 with max_panics 2: the first two drain boundaries
        // panic with the full 3-proposal batch stashed; each recovery
        // re-admits all 3, and the third incarnation decides them.
        let plan = ChaosPlan::seeded(0xC4A0).panic_every(1, 2);
        let service = ConsensusService::builder()
            .n(1)
            .values(64)
            .participants(1)
            .shards(1)
            .workers(1)
            .chaos(plan)
            .supervisor(SupervisorOptions {
                restart_budget: 4,
                base_backoff: Duration::from_micros(50),
                max_backoff: Duration::from_millis(1),
            })
            .build();
        service.pause();
        let handles: Vec<DecisionHandle> = (0..3u64)
            .map(|id| service.submit(id, id).unwrap())
            .collect();
        service.resume();
        for (id, handle) in handles.iter().enumerate() {
            assert_eq!(handle.wait(), Ok(id as u64), "proposal {id}");
        }
        let t = Arc::clone(service.engine().telemetry_handle());
        drop(service);
        assert_eq!(t.worker_restarts(), 2);
        assert_eq!(t.resubmitted_cells(), 6, "3 proposals × 2 recoveries");
        assert_eq!(t.decisions(), 3, "each proposal decided exactly once");
        assert_eq!(t.proposals_enqueued(), 3);
        assert_eq!(t.queue_depth(), 0);
    }

    #[test]
    fn chaos_stalls_delay_but_lose_nothing() {
        let plan = ChaosPlan::seeded(7).stall_every(1, Duration::from_millis(2));
        let service = ConsensusService::builder()
            .n(1)
            .values(64)
            .participants(1)
            .shards(1)
            .workers(1)
            .chaos(plan)
            .build();
        let handles: Vec<DecisionHandle> = (0..8u64)
            .map(|id| service.submit(id, id).unwrap())
            .collect();
        for (id, handle) in handles.iter().enumerate() {
            assert_eq!(handle.wait(), Ok(id as u64));
        }
        assert_eq!(service.telemetry().worker_restarts(), 0);
    }

    /// Panics while recording the FIRST `WorkerRestarted` event: proves a
    /// panic during recovery itself burns restart budget instead of
    /// killing the thread or double-admitting the stash.
    struct PanicOnFirstRestartEvent {
        fired: std::sync::atomic::AtomicBool,
    }

    impl mc_telemetry::Recorder for PanicOnFirstRestartEvent {
        fn record(&self, event: &mc_telemetry::TelemetryEvent) {
            if matches!(event, mc_telemetry::TelemetryEvent::WorkerRestarted { .. })
                && !self.fired.swap(true, Ordering::Relaxed)
            {
                panic!("injected recovery failure");
            }
        }
    }

    #[test]
    fn panic_during_recovery_counts_against_the_budget() {
        let plan = ChaosPlan::seeded(3).panic_every(1, 1);
        let service = ConsensusService::builder()
            .n(1)
            .values(64)
            .participants(1)
            .shards(1)
            .workers(1)
            .chaos(plan)
            .supervisor(SupervisorOptions {
                restart_budget: 3,
                base_backoff: Duration::from_micros(50),
                max_backoff: Duration::from_millis(1),
            })
            .recorder(Arc::new(PanicOnFirstRestartEvent {
                fired: std::sync::atomic::AtomicBool::new(false),
            }) as Arc<dyn mc_telemetry::Recorder>)
            .build();
        service.pause();
        let handles: Vec<DecisionHandle> = (0..3u64)
            .map(|id| service.submit(id, id).unwrap())
            .collect();
        service.resume();
        // Chaos panic (restart 1) → recovery's restart event panics
        // (restart 2) → second recovery succeeds, batch decides.
        for (id, handle) in handles.iter().enumerate() {
            assert_eq!(handle.wait(), Ok(id as u64));
        }
        let t = Arc::clone(service.engine().telemetry_handle());
        drop(service);
        assert_eq!(t.worker_restarts(), 2);
        assert_eq!(t.decisions(), 3);
    }

    #[test]
    fn submit_with_deadline_flows_into_the_handle() {
        let service = single_worker_service(BackpressurePolicy::Block);
        service.pause();
        let opts = SubmitOptions::new().within(Duration::from_millis(20));
        let handle = service.submit_with(0, 9, &opts).unwrap();
        assert!(handle.deadline().is_some());
        // The ring is paused: the deadline expires and wait() reports the
        // spent budget, not Timeout.
        assert_eq!(handle.wait(), Err(EngineError::DeadlineExceeded));
        // wait_timeout under an earlier handle deadline also reports it.
        assert_eq!(
            handle.wait_timeout(Duration::from_secs(5)),
            Err(EngineError::DeadlineExceeded)
        );
        service.resume();
        assert_eq!(handle.wait_core(None, EngineError::Timeout), Ok(9));
    }

    #[test]
    fn submit_with_retries_until_the_worker_drains() {
        let service = ConsensusService::builder()
            .n(1)
            .values(64)
            .participants(1)
            .shards(1)
            .workers(1)
            .backpressure(BackpressurePolicy::Reject)
            .ring_capacity(1)
            .build();
        service.pause();
        service.submit(0, 1).unwrap();
        // Plain submit fails fast against the full ring…
        assert!(matches!(service.submit(1, 2), Err(EngineError::Rejected)));
        // …and a retrying submit keeps failing while paused, reporting the
        // spent budget.
        let opts = SubmitOptions::new().retry(RetryPolicy {
            max_retries: 2,
            base_delay: Duration::from_micros(200),
            max_delay: Duration::from_millis(1),
            jitter: 0.5,
            seed: 11,
        });
        assert!(matches!(
            service.submit_with(1, 2, &opts),
            Err(EngineError::RetriesExhausted { attempts: 3 })
        ));
        // Resume: a drain happens within the retry schedule and the
        // submission lands.
        service.resume();
        let retry = SubmitOptions::new().retry(RetryPolicy::seeded(11));
        let handle = service.submit_with(1, 2, &retry).unwrap();
        assert_eq!(handle.wait(), Ok(2));
    }

    #[test]
    fn submit_with_deadline_bounds_the_retry_loop() {
        let service = ConsensusService::builder()
            .n(1)
            .values(64)
            .participants(1)
            .shards(1)
            .workers(1)
            .backpressure(BackpressurePolicy::Reject)
            .ring_capacity(1)
            .build();
        service.pause();
        service.submit(0, 1).unwrap();
        let opts = SubmitOptions::new()
            .within(Duration::from_millis(5))
            .retry(RetryPolicy {
                max_retries: u32::MAX,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(1),
                jitter: 0.0,
                seed: 0,
            });
        // Unbounded retries, bounded budget: the deadline ends the loop.
        assert!(matches!(
            service.submit_with(1, 2, &opts),
            Err(EngineError::DeadlineExceeded)
        ));
        service.resume();
    }

    #[test]
    fn circuit_trips_half_opens_and_closes() {
        let service = ConsensusService::builder()
            .n(1)
            .values(64)
            .participants(1)
            .shards(1)
            .workers(1)
            .backpressure(BackpressurePolicy::Shed { max_queue_depth: 1 })
            .circuit(CircuitOptions {
                overload_threshold: 3,
                trip_queue_depth: 0,
                cooldown: Duration::from_millis(10),
            })
            .build();
        assert_eq!(service.circuit_state(), Some(CircuitState::Closed));
        service.pause();
        service.submit(0, 1).unwrap();
        // Three consecutive sheds trip the breaker…
        for _ in 0..3 {
            assert!(matches!(
                service.submit(0, 2),
                Err(EngineError::Shed { .. })
            ));
        }
        assert_eq!(service.circuit_state(), Some(CircuitState::Open));
        // …after which admission fast-fails without touching the ring.
        assert!(matches!(
            service.submit(0, 3),
            Err(EngineError::CircuitOpen)
        ));
        assert_eq!(service.telemetry().circuit_state(), 1);
        // Past the cooldown, one probe is admitted; the ring has drained
        // (resume), so the probe succeeds and the breaker closes.
        service.resume();
        std::thread::sleep(Duration::from_millis(15));
        let handle = loop {
            // The first post-cooldown submit becomes the half-open probe;
            // its own admission may still shed if the worker has not
            // drained yet, re-opening — retry until the probe lands.
            match service.submit(0, 5) {
                Ok(handle) => break handle,
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        };
        assert_eq!(handle.wait(), Ok(5));
        assert_eq!(service.circuit_state(), Some(CircuitState::Closed));
        assert_eq!(service.telemetry().circuit_state(), 0);
    }

    #[test]
    fn failed_probe_reopens_the_circuit() {
        let service = ConsensusService::builder()
            .n(1)
            .values(64)
            .participants(1)
            .shards(1)
            .workers(1)
            .backpressure(BackpressurePolicy::Shed { max_queue_depth: 1 })
            .circuit(CircuitOptions {
                overload_threshold: 1,
                trip_queue_depth: 0,
                cooldown: Duration::from_millis(5),
            })
            .build();
        service.pause();
        service.submit(0, 1).unwrap();
        assert!(matches!(
            service.submit(0, 2),
            Err(EngineError::Shed { .. })
        ));
        assert_eq!(service.circuit_state(), Some(CircuitState::Open));
        std::thread::sleep(Duration::from_millis(8));
        // Still paused: the half-open probe sheds again and the breaker
        // re-opens for another cooldown.
        assert!(matches!(
            service.submit(0, 3),
            Err(EngineError::Shed { .. })
        ));
        assert_eq!(service.circuit_state(), Some(CircuitState::Open));
        assert!(matches!(
            service.submit(0, 4),
            Err(EngineError::CircuitOpen)
        ));
        service.resume();
    }

    #[test]
    fn wait_timeout_reports_poison_not_timeout_when_racing() {
        // Deterministic half: an already-poisoned cell must never report
        // Timeout, even with a zero timeout.
        let cell = Cell::new();
        let handle = DecisionHandle {
            cell: Arc::clone(&cell),
            deadline: None,
        };
        cell.fill(CellState::Poisoned);
        assert_eq!(
            handle.wait_timeout(Duration::ZERO),
            Err(EngineError::Poisoned)
        );

        // Racing half: hammer a ~zero timeout against a concurrent
        // poisoner. Any single run may legitimately see Timeout (the
        // poison landed after expiry) — but a Timeout must never be
        // final: once the cell IS poisoned, re-waiting must say so.
        for i in 0..200 {
            let cell = Cell::new();
            let handle = DecisionHandle {
                cell: Arc::clone(&cell),
                deadline: None,
            };
            let poisoner = {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    if i % 2 == 0 {
                        std::thread::yield_now();
                    }
                    cell.fill(CellState::Poisoned);
                })
            };
            let raced = handle.wait_timeout(Duration::from_nanos(1));
            poisoner.join().unwrap();
            match raced {
                Err(EngineError::Poisoned) => {}
                Err(EngineError::Timeout) => {
                    assert_eq!(
                        handle.wait_timeout(Duration::ZERO),
                        Err(EngineError::Poisoned),
                        "iteration {i}: poison visible after join must be reported"
                    );
                }
                other => panic!("iteration {i}: unexpected result {other:?}"),
            }
        }
    }

    #[test]
    fn retry_policy_schedule_is_deterministic_monotone_and_capped() {
        let policy = RetryPolicy {
            max_retries: 12,
            base_delay: Duration::from_micros(100),
            max_delay: Duration::from_millis(10),
            jitter: 0.5,
            seed: 0xDECAF,
        };
        let a = policy.schedule();
        let b = policy.schedule();
        assert_eq!(a, b, "same seed, same schedule");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "monotone: {a:?}");
        assert!(a.iter().all(|d| *d <= policy.max_delay), "capped: {a:?}");
        assert!(a[0] >= policy.base_delay);
        let reseeded = RetryPolicy { seed: 1, ..policy };
        assert_ne!(a, reseeded.schedule(), "seed changes the jitter stream");
    }

    #[test]
    fn shutdown_drains_accepted_proposals() {
        let mut service = single_worker_service(BackpressurePolicy::Block);
        service.pause();
        let handles: Vec<DecisionHandle> = (0..10u64)
            .map(|id| service.submit(id, id).unwrap())
            .collect();
        // Shutdown unpauses, drains, and joins — nothing accepted is lost.
        service.shutdown();
        for (id, handle) in handles.iter().enumerate() {
            assert_eq!(handle.wait(), Ok(id as u64));
        }
        assert!(matches!(service.submit(99, 0), Err(EngineError::Rejected)));
    }

    #[test]
    fn batch_drained_events_reach_the_recorder() {
        let agg = Arc::new(mc_telemetry::AggregatingRecorder::new());
        let service = ConsensusService::builder()
            .n(1)
            .values(64)
            .participants(1)
            .shards(1)
            .workers(1)
            .recorder(Arc::clone(&agg) as Arc<dyn mc_telemetry::Recorder>)
            .build();
        service.pause();
        let handles: Vec<DecisionHandle> = (0..20u64)
            .map(|id| service.submit(id, id % 64).unwrap())
            .collect();
        service.resume();
        for handle in &handles {
            handle.wait().unwrap();
        }
        drop(service); // join workers so the batch events have landed
                       // All 20 were in the ring when the worker woke: one batch (the
                       // default batch_max is 256), one event, 20 proposals accounted.
        assert!(agg.batches_drained() >= 1);
        assert_eq!(agg.batched_proposals(), 20);
        // The service amortizes recorder traffic: per-decide events are
        // suppressed while it drives the engine, so the recorder sees the
        // batch summaries but not twenty Decided events.
        assert_eq!(agg.decisions(), 0);
    }

    #[test]
    fn oversized_proposal_is_refused_at_admission() {
        let service = single_worker_service(BackpressurePolicy::Block);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            service.submit(0, 9999).ok();
        }));
        assert!(result.is_err(), "oversized proposal must panic at submit");
        // The panic happened on the producer side: workers are alive and
        // the service still decides.
        assert_eq!(service.submit(1, 3).unwrap().wait(), Ok(3));
    }

    #[test]
    fn handles_survive_the_service_when_decided() {
        let handle = {
            let service = single_worker_service(BackpressurePolicy::Block);
            let handle = service.submit(0, 7).unwrap();
            handle.wait().unwrap();
            handle
        };
        assert_eq!(handle.poll(), Some(Ok(7)));
    }
}
