//! A pipelined batching frontend over the [`ConsensusEngine`].
//!
//! `ConsensusEngine::submit` is a blocking per-call path: every caller
//! crosses the shard mutex twice, pays per-operation telemetry, and parks
//! on a condvar under backpressure — so at high request rates throughput is
//! bounded by caller-side contention, not by the paper's `O(n log m)`
//! total-work bound. [`ConsensusService`] decouples the two sides:
//!
//! ```text
//!  producers ──submit──▶ per-worker intake rings ──batch──▶ workers
//!      │                  (std MPSC, Mutex+Condvar)            │
//!      ╰◀─── DecisionHandle (poll / wait / wait_timeout) ◀─────╯
//! ```
//!
//! Producers enqueue `(instance_id, proposal)` and immediately receive a
//! [`DecisionHandle`]; dedicated worker threads drain each ring in batches,
//! run the decisions against the engine's pooled instances, and complete
//! the handles. Telemetry is amortized to one structured
//! [`batch_drained`](mc_telemetry::TelemetryEvent::BatchDrained) event per
//! batch, and admission control is a configurable [`BackpressurePolicy`].
//!
//! Routing uses the same Fibonacci hash as the engine's shards, so every
//! submission for one `instance_id` lands in the same ring and is decided
//! serially by one worker — concurrent proposals for the same instance
//! still agree, exactly as with direct `submit`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::engine::ConsensusEngine;
use crate::error::EngineError;
use crate::register::{AtomicMemory, SharedMemory};
use crate::telemetry::RuntimeTelemetry;

/// What [`ConsensusService::submit`] does when an intake ring is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Block the producer until the worker drains room. No proposal is
    /// ever lost; producers absorb the overload.
    Block,
    /// Refuse with [`EngineError::Rejected`]; the proposal is never
    /// enqueued and the caller retries (or not) on its own schedule.
    Reject,
    /// Drop with [`EngineError::Shed`] once the ring holds
    /// `max_queue_depth` proposals — load shedding with an explicit bound,
    /// independent of the ring's configured capacity.
    Shed {
        /// Queue depth at which admission starts shedding.
        max_queue_depth: usize,
    },
}

/// Tuning for a [`ConsensusService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceOptions {
    /// Admission control when a ring is full (default
    /// [`BackpressurePolicy::Block`]).
    pub policy: BackpressurePolicy,
    /// Proposals a ring holds before [`BackpressurePolicy::Block`] blocks
    /// or [`BackpressurePolicy::Reject`] refuses (default 1024). Ignored
    /// by [`BackpressurePolicy::Shed`], which carries its own bound.
    pub ring_capacity: usize,
    /// Most proposals a worker takes per drain (default 256). Larger
    /// batches amortize ring locking and telemetry further but hold
    /// decisions back longer under light load.
    pub batch_max: usize,
    /// Worker threads / intake rings. `0` (default) means one per engine
    /// shard.
    pub workers: usize,
    /// Base seed for the workers' deterministic RNGs; worker `i` runs on
    /// `seed + i`. Identical seeds and submission order reproduce
    /// identical coin flips.
    pub seed: u64,
}

impl Default for ServiceOptions {
    fn default() -> ServiceOptions {
        ServiceOptions {
            policy: BackpressurePolicy::Block,
            ring_capacity: 1024,
            batch_max: 256,
            workers: 0,
            seed: 0x5EED,
        }
    }
}

/// Completion states of one submitted proposal.
#[derive(Clone, Copy, PartialEq, Eq)]
enum CellState {
    /// Enqueued, not yet decided.
    Waiting,
    /// Decided.
    Done(u64),
    /// The worker died (panic or teardown) before deciding it.
    Poisoned,
}

const CELL_WAITING: u8 = 0;
const CELL_DONE: u8 = 1;
const CELL_POISONED: u8 = 2;

/// The completion cell a [`DecisionHandle`] waits on.
///
/// The common case — worker fills, producer polls an already-done cell —
/// is two atomics with no lock: `value` is stored relaxed, then `state` is
/// published with a release store, and readers load `state` acquire. The
/// condvar path only engages when a producer actually sleeps: waiters
/// register under `waiters` before parking, and the filler takes that lock
/// (pairing with the waiter's registered-then-recheck) and broadcasts only
/// when somebody is parked.
struct Cell {
    state: AtomicU8,
    value: AtomicU64,
    waiters: Mutex<usize>,
    cv: Condvar,
}

impl Cell {
    fn new() -> Arc<Cell> {
        Arc::new(Cell {
            state: AtomicU8::new(CELL_WAITING),
            value: AtomicU64::new(0),
            waiters: Mutex::new(0),
            cv: Condvar::new(),
        })
    }

    fn read(&self) -> CellState {
        match self.state.load(Ordering::Acquire) {
            CELL_WAITING => CellState::Waiting,
            CELL_DONE => CellState::Done(self.value.load(Ordering::Relaxed)),
            _ => CellState::Poisoned,
        }
    }

    /// First fill wins: `Waiting → Done(v)` or `Waiting → Poisoned`; a cell
    /// already filled is left alone (a completed `Pending` is dropped right
    /// after, and its poison pass must not overwrite the decision).
    fn fill(&self, state: CellState) {
        let next = match state {
            CellState::Waiting => return,
            CellState::Done(v) => {
                self.value.store(v, Ordering::Relaxed);
                CELL_DONE
            }
            CellState::Poisoned => CELL_POISONED,
        };
        if self
            .state
            .compare_exchange(CELL_WAITING, next, Ordering::Release, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        // Taking the lock (even when nobody waits) orders this fill against
        // a waiter's register-then-recheck, so no wakeup is ever missed.
        let parked = *self.waiters.lock().unwrap_or_else(PoisonError::into_inner);
        if parked > 0 {
            self.cv.notify_all();
        }
    }
}

/// The producer's receipt for one submitted proposal: poll or wait for the
/// decision.
///
/// Cloning yields another handle on the same decision. Dropping every
/// handle is fine — the proposal still runs; only the result goes
/// unobserved.
#[derive(Clone)]
pub struct DecisionHandle {
    cell: Arc<Cell>,
}

impl DecisionHandle {
    /// The decision if it has arrived: `None` while in flight,
    /// `Some(Err(`[`EngineError::Poisoned`]`))` if its worker died first.
    /// Lock-free.
    pub fn poll(&self) -> Option<Result<u64, EngineError>> {
        match self.cell.read() {
            CellState::Waiting => None,
            CellState::Done(v) => Some(Ok(v)),
            CellState::Poisoned => Some(Err(EngineError::Poisoned)),
        }
    }

    /// Blocks until the decision arrives. A decision that already landed
    /// returns without taking any lock.
    ///
    /// # Errors
    ///
    /// [`EngineError::Poisoned`] if the proposal's worker died before
    /// deciding it.
    pub fn wait(&self) -> Result<u64, EngineError> {
        loop {
            match self.cell.read() {
                CellState::Waiting => {}
                CellState::Done(v) => return Ok(v),
                CellState::Poisoned => return Err(EngineError::Poisoned),
            }
            let mut parked = self
                .cell
                .waiters
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            // Recheck under the lock: a fill between the lock-free read and
            // the registration is ordered by the filler's own lock take.
            if self.cell.read() != CellState::Waiting {
                continue;
            }
            *parked += 1;
            let mut parked = self
                .cell
                .cv
                .wait(parked)
                .unwrap_or_else(PoisonError::into_inner);
            *parked -= 1;
        }
    }

    /// Blocks until the decision arrives or `timeout` elapses.
    ///
    /// # Errors
    ///
    /// [`EngineError::Timeout`] when the wait elapsed — the proposal is
    /// still in flight and waiting again can succeed;
    /// [`EngineError::Poisoned`] as [`wait`](DecisionHandle::wait).
    pub fn wait_timeout(&self, timeout: Duration) -> Result<u64, EngineError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.cell.read() {
                CellState::Waiting => {}
                CellState::Done(v) => return Ok(v),
                CellState::Poisoned => return Err(EngineError::Poisoned),
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(EngineError::Timeout);
            }
            let mut parked = self
                .cell
                .waiters
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if self.cell.read() != CellState::Waiting {
                continue;
            }
            *parked += 1;
            let (mut parked, _) = self
                .cell
                .cv
                .wait_timeout(parked, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            *parked -= 1;
        }
    }
}

impl std::fmt::Debug for DecisionHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = match self.poll() {
            None => "waiting",
            Some(Ok(_)) => "done",
            Some(Err(_)) => "poisoned",
        };
        f.debug_struct("DecisionHandle")
            .field("state", &state)
            .finish()
    }
}

/// One enqueued proposal. Dropping it while its cell is still `Waiting`
/// poisons the cell — this is the worker-death path: a panicking worker
/// unwinds its local batch, and service teardown drops ring leftovers, and
/// either way every orphaned handle resolves to
/// [`EngineError::Poisoned`] instead of hanging forever.
struct Pending {
    instance_id: u64,
    proposal: u64,
    enqueued_at: Instant,
    cell: Arc<Cell>,
}

impl Pending {
    fn complete(&self, decided: u64) {
        self.cell.fill(CellState::Done(decided));
    }
}

impl Drop for Pending {
    fn drop(&mut self) {
        // First fill wins: a no-op after `complete`, poison otherwise.
        self.cell.fill(CellState::Poisoned);
    }
}

struct RingState {
    queue: VecDeque<Pending>,
    /// No further submissions; workers drain what is left, then exit.
    closed: bool,
    /// Workers hold off draining (tests use this to fill rings
    /// deterministically).
    paused: bool,
}

/// One MPSC intake ring: producers push under the mutex, its dedicated
/// worker drains in batches.
struct Ring {
    state: Mutex<RingState>,
    /// Signals the worker: items available, unpaused, or closed.
    to_worker: Condvar,
    /// Signals blocked producers ([`BackpressurePolicy::Block`]): room
    /// available or closed.
    to_producers: Condvar,
}

impl Ring {
    fn new() -> Ring {
        Ring {
            state: Mutex::new(RingState {
                queue: VecDeque::new(),
                closed: false,
                paused: false,
            }),
            to_worker: Condvar::new(),
            to_producers: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, RingState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A pipelined batch-submission service over a [`ConsensusEngine`].
///
/// Build one with [`ConsensusService::builder`] (or wrap an existing
/// engine with [`ConsensusService::over`]). Submit with
/// [`submit`](ConsensusService::submit) /
/// [`submit_batch`](ConsensusService::submit_batch) and collect decisions
/// through the returned [`DecisionHandle`]s:
///
/// ```
/// use mc_runtime::ConsensusService;
///
/// let service = ConsensusService::builder().n(1).values(64).participants(1).build();
/// let handle = service.submit(0, 42).unwrap();
/// assert_eq!(handle.wait(), Ok(42));
/// ```
///
/// # Ordering and agreement
///
/// All submissions for one `instance_id` land in the same ring and are
/// decided serially by its worker, so they agree — the lab conformance
/// suite proves the service path decides exactly what direct
/// [`submit`](ConsensusEngine::submit) decides for the same proposals.
/// Submissions for *different* instances may complete in any order.
///
/// # Shutdown
///
/// [`shutdown`](ConsensusService::shutdown) (also run on drop) closes the
/// rings, drains every already-accepted proposal, and joins the workers.
/// Proposals a dead worker never reached resolve to
/// [`EngineError::Poisoned`] rather than hanging their handles.
pub struct ConsensusService<M: SharedMemory = AtomicMemory> {
    engine: Arc<ConsensusEngine<M>>,
    rings: Arc<Vec<Ring>>,
    workers: Vec<JoinHandle<()>>,
    options: ServiceOptions,
    capacity: u64,
    /// Whether shutdown already handed per-decide recorder events back to
    /// the engine (shutdown is idempotent; the hand-back must not be).
    events_restored: bool,
}

impl ConsensusService {
    /// Starts building a service (engine knobs plus service knobs in one
    /// fluent path).
    pub fn builder() -> ServiceBuilder {
        ServiceBuilder::new()
    }
}

impl<M: SharedMemory> ConsensusService<M> {
    /// Runs a service over an engine you already hold — the engine remains
    /// usable directly (the conformance tests exploit this to compare both
    /// paths).
    ///
    /// Taking over an engine switches its telemetry to amortized recorder
    /// traffic: per-decide events are suppressed in favor of one
    /// `batch_drained` summary per batch (counters and histograms keep
    /// their per-operation fidelity) — see
    /// [`RuntimeTelemetry::decide_events_on`]. The suppression lasts while
    /// any service is attached; [`shutdown`](ConsensusService::shutdown)
    /// (and drop) hands per-decide events back, so direct
    /// [`submit`](ConsensusEngine::submit) calls after the service is gone
    /// emit the full event stream again.
    ///
    /// # Panics
    ///
    /// Panics if `options.ring_capacity == 0`, `options.batch_max == 0`,
    /// or `options.policy` is `Shed { max_queue_depth: 0 }`.
    pub fn over(engine: Arc<ConsensusEngine<M>>, options: ServiceOptions) -> ConsensusService<M> {
        assert!(options.ring_capacity > 0, "ring capacity must be nonzero");
        assert!(options.batch_max > 0, "batch size must be nonzero");
        if let BackpressurePolicy::Shed { max_queue_depth } = options.policy {
            assert!(max_queue_depth > 0, "shedding bound must be nonzero");
        }
        engine.telemetry().amortize_decide_events();
        let worker_count = if options.workers == 0 {
            engine.shard_count()
        } else {
            options.workers
        };
        let rings = Arc::new((0..worker_count).map(|_| Ring::new()).collect::<Vec<_>>());
        let capacity = engine.options_handle().scheme.capacity();
        let workers = (0..worker_count)
            .map(|ix| {
                let engine = Arc::clone(&engine);
                let rings = Arc::clone(&rings);
                let seed = options.seed.wrapping_add(ix as u64);
                let batch_max = options.batch_max;
                std::thread::Builder::new()
                    .name(format!("mc-service-{ix}"))
                    .spawn(move || worker_loop(&engine, &rings[ix], ix, batch_max, seed))
                    .expect("spawn service worker")
            })
            .collect();
        ConsensusService {
            engine,
            rings,
            workers,
            options,
            capacity,
            events_restored: false,
        }
    }

    /// The engine this service decides on.
    pub fn engine(&self) -> &Arc<ConsensusEngine<M>> {
        &self.engine
    }

    /// Aggregate metrics (shared with the engine): decide histograms, pool
    /// counters, plus the service's `proposals_enqueued` / `batches_drained`
    /// counters, queue-depth gauge, and submit→decision wait histogram.
    pub fn telemetry(&self) -> &RuntimeTelemetry {
        self.engine.telemetry()
    }

    /// Worker threads (= intake rings) this service runs.
    pub fn worker_count(&self) -> usize {
        self.rings.len()
    }

    /// Proposals currently enqueued across all rings.
    pub fn queue_depth(&self) -> usize {
        self.rings.iter().map(|r| r.lock().queue.len()).sum()
    }

    fn ring_of(&self, instance_id: u64) -> &Ring {
        // Same Fibonacci hash as the engine's shards: one instance, one
        // ring, one worker — serial decides per instance.
        let h = (instance_id.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 32;
        &self.rings[(h as usize) % self.rings.len()]
    }

    /// Applies admission control and pushes one proposal under the ring
    /// lock; threads the guard back so a batch can admit a whole run of
    /// proposals without re-locking. The caller notifies the worker.
    fn admit<'g>(
        &self,
        ring: &'g Ring,
        mut state: MutexGuard<'g, RingState>,
        instance_id: u64,
        proposal: u64,
        enqueued_at: Instant,
    ) -> (
        MutexGuard<'g, RingState>,
        Result<DecisionHandle, EngineError>,
    ) {
        let telemetry = self.engine.telemetry();
        match self.options.policy {
            BackpressurePolicy::Block => {
                while state.queue.len() >= self.options.ring_capacity && !state.closed {
                    // A full ring is a non-empty ring, but its worker may
                    // still be parked: `submit_batch` notifies only after a
                    // whole run is admitted, so when one run overfills the
                    // ring the wake-up this producer is waiting on would
                    // never be sent. Wake the worker before parking.
                    ring.to_worker.notify_one();
                    state = ring
                        .to_producers
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
            BackpressurePolicy::Reject => {
                if state.queue.len() >= self.options.ring_capacity {
                    telemetry.on_proposal_rejected();
                    return (state, Err(EngineError::Rejected));
                }
            }
            BackpressurePolicy::Shed { max_queue_depth } => {
                if state.queue.len() >= max_queue_depth {
                    telemetry.on_proposal_shed();
                    return (state, Err(EngineError::Shed { max_queue_depth }));
                }
            }
        }
        if state.closed {
            telemetry.on_proposal_rejected();
            return (state, Err(EngineError::Rejected));
        }
        let cell = Cell::new();
        let handle = DecisionHandle {
            cell: Arc::clone(&cell),
        };
        state.queue.push_back(Pending {
            instance_id,
            proposal,
            enqueued_at,
            cell,
        });
        telemetry.on_proposal_enqueued();
        (state, Ok(handle))
    }

    /// Enqueues one proposal for `instance_id` and returns its handle
    /// immediately; the decision arrives through the handle.
    ///
    /// # Errors
    ///
    /// [`EngineError::Rejected`] / [`EngineError::Shed`] per the
    /// configured [`BackpressurePolicy`], and [`EngineError::Rejected`]
    /// after [`shutdown`](ConsensusService::shutdown).
    ///
    /// # Panics
    ///
    /// Panics if `proposal` exceeds the engine's value capacity (checked
    /// here, at admission, so an invalid proposal can never kill a
    /// worker).
    pub fn submit(&self, instance_id: u64, proposal: u64) -> Result<DecisionHandle, EngineError> {
        assert!(
            proposal < self.capacity,
            "value {proposal} exceeds consensus capacity {}",
            self.capacity
        );
        let ring = self.ring_of(instance_id);
        let (state, result) = self.admit(ring, ring.lock(), instance_id, proposal, Instant::now());
        drop(state);
        if result.is_ok() {
            ring.to_worker.notify_one();
        }
        result
    }

    /// Enqueues a batch of `(instance_id, proposal)` pairs, taking each
    /// ring's lock once per batch rather than once per proposal — the
    /// producer-side half of the pipeline's amortization. Results come
    /// back in input order.
    ///
    /// Admission control applies per proposal, so one full ring rejects or
    /// sheds only its own items.
    ///
    /// # Panics
    ///
    /// As [`submit`](ConsensusService::submit).
    pub fn submit_batch(&self, items: &[(u64, u64)]) -> Vec<Result<DecisionHandle, EngineError>> {
        for &(_, proposal) in items {
            assert!(
                proposal < self.capacity,
                "value {proposal} exceeds consensus capacity {}",
                self.capacity
            );
        }
        let mut results: Vec<Option<Result<DecisionHandle, EngineError>>> =
            (0..items.len()).map(|_| None).collect();
        // Admit each contiguous run landing in the same ring under ONE
        // lock acquisition — with a single worker (or ids pre-grouped by
        // producer) that is one lock per batch.
        let mut ix = 0;
        while ix < items.len() {
            let ring = self.ring_of(items[ix].0);
            let mut end = ix + 1;
            while end < items.len() && std::ptr::eq(self.ring_of(items[end].0), ring) {
                end += 1;
            }
            let mut state = ring.lock();
            let mut admitted = false;
            // One timestamp per run: wait-latency accounting is batch-grained
            // on the enqueue side, like the drain side's telemetry flush.
            let enqueued_at = Instant::now();
            for (slot, &(instance_id, proposal)) in results[ix..end].iter_mut().zip(&items[ix..end])
            {
                let (next, result) = self.admit(ring, state, instance_id, proposal, enqueued_at);
                state = next;
                admitted |= result.is_ok();
                *slot = Some(result);
            }
            drop(state);
            if admitted {
                ring.to_worker.notify_one();
            }
            ix = end;
        }
        results.into_iter().map(|r| r.expect("filled")).collect()
    }

    /// Stops workers from draining, leaving submissions to pile up in the
    /// rings — the deterministic-saturation hook the backpressure tests
    /// use. Batches already taken finish first.
    pub fn pause(&self) {
        for ring in self.rings.iter() {
            ring.lock().paused = true;
        }
    }

    /// Resumes draining after [`pause`](ConsensusService::pause).
    pub fn resume(&self) {
        for ring in self.rings.iter() {
            ring.lock().paused = false;
            ring.to_worker.notify_all();
        }
    }

    /// Closes the rings, waits for every accepted proposal to decide, and
    /// joins the workers. Idempotent; also runs on drop. Proposals left
    /// behind by a worker that died resolve to [`EngineError::Poisoned`].
    pub fn shutdown(&mut self) {
        for ring in self.rings.iter() {
            let mut state = ring.lock();
            state.closed = true;
            // A paused, closed service must still drain: shutdown's
            // contract (Block never loses a proposal) outranks the test
            // hook.
            state.paused = false;
            drop(state);
            ring.to_worker.notify_all();
            ring.to_producers.notify_all();
        }
        for worker in self.workers.drain(..) {
            // A worker that panicked already poisoned its local batch by
            // unwinding; swallow the panic so shutdown (and drop) can
            // poison whatever is left in its ring below.
            let _ = worker.join();
        }
        for ring in self.rings.iter() {
            // Dropping a still-Waiting Pending poisons its cell.
            let mut state = ring.lock();
            let orphaned = state.queue.len();
            state.queue.clear();
            drop(state);
            self.engine
                .telemetry()
                .on_proposals_dequeued(orphaned as u64);
        }
        if !self.events_restored {
            self.events_restored = true;
            // Hand per-decide recorder events back: the engine outlives the
            // service and its direct `submit` path must emit again.
            self.engine.telemetry().restore_decide_events();
        }
    }
}

impl<M: SharedMemory> Drop for ConsensusService<M> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl<M: SharedMemory> std::fmt::Debug for ConsensusService<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConsensusService")
            .field("workers", &self.worker_count())
            .field("queue_depth", &self.queue_depth())
            .field("policy", &self.options.policy)
            .finish_non_exhaustive()
    }
}

/// Closes a ring whose worker is dying mid-panic: admission flips to
/// [`EngineError::Rejected`], producers parked under
/// [`BackpressurePolicy::Block`] are released, and every proposal still
/// queued is poisoned — without this, a dead ring would keep accepting
/// proposals that nothing will ever drain.
struct WorkerDeathGuard<'a> {
    ring: &'a Ring,
    telemetry: &'a RuntimeTelemetry,
}

impl Drop for WorkerDeathGuard<'_> {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            // Normal exit: the ring is already closed and drained.
            return;
        }
        let mut state = self.ring.lock();
        state.closed = true;
        let orphaned = state.queue.len();
        // Dropping a still-Waiting Pending poisons its cell.
        state.queue.clear();
        drop(state);
        self.telemetry.on_proposals_dequeued(orphaned as u64);
        self.ring.to_producers.notify_all();
    }
}

/// One worker: block for work, drain up to `batch_max`, decide, complete,
/// emit one `batch_drained` event — repeat until closed and empty.
fn worker_loop<M: SharedMemory>(
    engine: &ConsensusEngine<M>,
    ring: &Ring,
    ring_ix: usize,
    batch_max: usize,
    seed: u64,
) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let telemetry = Arc::clone(engine.telemetry_handle());
    let _death_guard = WorkerDeathGuard {
        ring,
        telemetry: engine.telemetry(),
    };
    // Single-participant engines get the zero-lock fast path: one pooled
    // object serves the whole stream (see `ConsensusEngine::detached_slot`).
    let mut slot = (engine.participants() == 1).then(|| engine.detached_slot(ring_ix));
    loop {
        let mut batch: VecDeque<Pending>;
        let depth_after;
        {
            let mut state = ring.lock();
            while (state.queue.is_empty() || state.paused) && !state.closed {
                state = ring
                    .to_worker
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            if state.queue.is_empty() && state.closed {
                return;
            }
            let take = state.queue.len().min(batch_max);
            batch = state.queue.drain(..take).collect();
            depth_after = state.queue.len();
            drop(state);
            // The drained proposals left the ring the moment `drain` took
            // them — account for them now, not at batch completion, so the
            // aggregate gauge stays honest even if a decide panics.
            telemetry.on_proposals_dequeued(take as u64);
            // Room freed: wake producers blocked under `Block`.
            ring.to_producers.notify_all();
        }
        let batch_len = batch.len() as u64;
        while let Some(item) = batch.pop_front() {
            // If a decide panics, the unwind drops `item` and the rest of
            // `batch`, poisoning their cells (see `Pending::drop`).
            let decided = match &mut slot {
                Some(slot) => slot.decide(item.proposal, &mut rng),
                None => engine.submit_unbounded(item.instance_id, item.proposal, &mut rng),
            };
            item.complete(decided);
            let wait_ns = u64::try_from(item.enqueued_at.elapsed().as_nanos()).unwrap_or(u64::MAX);
            telemetry.on_service_wait(wait_ns);
        }
        telemetry.on_batch_drained(ring_ix as u64, batch_len, depth_after as u64);
    }
}

/// Fluent constructor for [`ConsensusService`]: every [`EngineBuilder`]
/// knob plus the service's own. Obtain one from
/// [`ConsensusService::builder`].
///
/// [`EngineBuilder`]: crate::EngineBuilder
#[derive(Clone, Debug)]
pub struct ServiceBuilder<M: SharedMemory = AtomicMemory> {
    engine: crate::EngineBuilder<M>,
    service: ServiceOptions,
}

impl Default for ServiceBuilder {
    fn default() -> ServiceBuilder {
        ServiceBuilder {
            engine: crate::EngineBuilder::default(),
            service: ServiceOptions::default(),
        }
    }
}

impl ServiceBuilder {
    /// A builder with every knob at its default; `n` must still be set.
    pub fn new() -> ServiceBuilder {
        ServiceBuilder::default()
    }
}

impl<M: SharedMemory> ServiceBuilder<M> {
    /// Maximum participating threads per instance. Required.
    #[must_use]
    pub fn n(mut self, n: usize) -> Self {
        self.engine = self.engine.n(n);
        self
    }

    /// Number of distinct proposal values; see
    /// [`ConsensusBuilder::values`](crate::ConsensusBuilder::values).
    #[must_use]
    pub fn values(mut self, m: u64) -> Self {
        self.engine = self.engine.values(m);
        self
    }

    /// Telemetry event sink; see
    /// [`ConsensusBuilder::recorder`](crate::ConsensusBuilder::recorder).
    #[must_use]
    pub fn recorder(mut self, recorder: Arc<dyn mc_telemetry::Recorder>) -> Self {
        self.engine = self.engine.recorder(recorder);
        self
    }

    /// Register substrate; see
    /// [`ConsensusBuilder::memory`](crate::ConsensusBuilder::memory).
    #[must_use]
    pub fn memory<M2: SharedMemory>(self, memory: M2) -> ServiceBuilder<M2> {
        ServiceBuilder {
            engine: self.engine.memory(memory),
            service: self.service,
        }
    }

    /// Engine shards; see [`EngineBuilder::shards`](crate::EngineBuilder::shards).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.engine = self.engine.shards(shards);
        self
    }

    /// Submits per instance; see
    /// [`EngineBuilder::participants`](crate::EngineBuilder::participants).
    #[must_use]
    pub fn participants(mut self, participants: usize) -> Self {
        self.engine = self.engine.participants(participants);
        self
    }

    /// Admission control (default [`BackpressurePolicy::Block`]).
    #[must_use]
    pub fn backpressure(mut self, policy: BackpressurePolicy) -> Self {
        self.service.policy = policy;
        self
    }

    /// Ring capacity (default 1024); see [`ServiceOptions::ring_capacity`].
    #[must_use]
    pub fn ring_capacity(mut self, capacity: usize) -> Self {
        self.service.ring_capacity = capacity;
        self
    }

    /// Largest batch a worker drains at once (default 256).
    #[must_use]
    pub fn batch_max(mut self, batch: usize) -> Self {
        self.service.batch_max = batch;
        self
    }

    /// Worker threads / rings (default: one per engine shard).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.service.workers = workers;
        self
    }

    /// Base seed for the workers' RNGs (default `0x5EED`).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.service.seed = seed;
        self
    }

    /// Builds the engine and starts the service's workers over it.
    ///
    /// # Panics
    ///
    /// As [`EngineBuilder::build`](crate::EngineBuilder::build) and
    /// [`ConsensusService::over`].
    pub fn build(self) -> ConsensusService<M> {
        ConsensusService::over(Arc::new(self.engine.build()), self.service)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_worker_service(policy: BackpressurePolicy) -> ConsensusService {
        ConsensusService::builder()
            .n(1)
            .values(1024)
            .participants(1)
            .shards(1)
            .workers(1)
            .backpressure(policy)
            .build()
    }

    #[test]
    fn decisions_flow_back_through_handles() {
        let service = single_worker_service(BackpressurePolicy::Block);
        let handles: Vec<DecisionHandle> = (0..100u64)
            .map(|id| service.submit(id, id % 1024).unwrap())
            .collect();
        for (id, handle) in handles.iter().enumerate() {
            assert_eq!(handle.wait(), Ok(id as u64 % 1024));
        }
        // Join the workers before asserting batch counters: the final
        // `batch_drained` lands after the batch's handles complete.
        let t = Arc::clone(service.engine().telemetry_handle());
        drop(service);
        assert_eq!(t.proposals_enqueued(), 100);
        assert_eq!(t.decisions(), 100);
        assert_eq!(t.instances_retired(), 100);
        assert!(t.batches_drained() >= 1);
        assert_eq!(t.service_wait_ns().count(), 100);
    }

    #[test]
    fn submit_batch_matches_per_call_submit() {
        let service = single_worker_service(BackpressurePolicy::Block);
        let items: Vec<(u64, u64)> = (0..64u64).map(|id| (id, (id * 7) % 1024)).collect();
        let handles = service.submit_batch(&items);
        for (handle, (_, proposal)) in handles.into_iter().zip(&items) {
            assert_eq!(handle.unwrap().wait(), Ok(*proposal));
        }
    }

    #[test]
    fn same_instance_submissions_agree_with_multiple_participants() {
        let service = ConsensusService::builder()
            .n(3)
            .values(8)
            .participants(3)
            .shards(1)
            .workers(1)
            .build();
        let handles: Vec<DecisionHandle> = (0..3u64)
            .map(|p| service.submit(7, p + 1).unwrap())
            .collect();
        let decisions: Vec<u64> = handles.iter().map(|h| h.wait().unwrap()).collect();
        assert!(
            decisions.iter().all(|&d| d == decisions[0]),
            "{decisions:?}"
        );
        assert!((1..=3).contains(&decisions[0]));
        assert_eq!(service.engine().live_instances(), 0);
    }

    #[test]
    fn poll_sees_waiting_then_done() {
        let service = single_worker_service(BackpressurePolicy::Block);
        service.pause();
        let handle = service.submit(0, 5).unwrap();
        assert_eq!(handle.poll(), None);
        service.resume();
        assert_eq!(handle.wait(), Ok(5));
        assert_eq!(handle.poll(), Some(Ok(5)));
    }

    #[test]
    fn wait_timeout_times_out_then_succeeds() {
        let service = single_worker_service(BackpressurePolicy::Block);
        service.pause();
        let handle = service.submit(0, 9).unwrap();
        assert_eq!(
            handle.wait_timeout(Duration::from_millis(20)),
            Err(EngineError::Timeout)
        );
        service.resume();
        assert_eq!(handle.wait_timeout(Duration::from_secs(30)), Ok(9));
    }

    #[test]
    fn shed_fires_at_exactly_the_bound() {
        let service = single_worker_service(BackpressurePolicy::Shed { max_queue_depth: 4 });
        service.pause();
        let handles: Vec<DecisionHandle> = (0..4u64)
            .map(|id| service.submit(id, id).unwrap())
            .collect();
        // The fifth proposal is the first past the bound: shed, never
        // enqueued.
        assert!(matches!(
            service.submit(4, 4),
            Err(EngineError::Shed { max_queue_depth: 4 })
        ));
        assert_eq!(service.telemetry().proposals_shed(), 1);
        assert_eq!(service.queue_depth(), 4);
        service.resume();
        for (id, handle) in handles.iter().enumerate() {
            assert_eq!(handle.wait(), Ok(id as u64));
        }
        // Depth drained: admission works again.
        assert_eq!(service.submit(4, 4).unwrap().wait(), Ok(4));
    }

    #[test]
    fn reject_refuses_when_the_ring_is_full() {
        let service = ConsensusService::builder()
            .n(1)
            .values(64)
            .participants(1)
            .shards(1)
            .workers(1)
            .backpressure(BackpressurePolicy::Reject)
            .ring_capacity(2)
            .build();
        service.pause();
        service.submit(0, 0).unwrap();
        service.submit(1, 1).unwrap();
        assert!(matches!(service.submit(2, 2), Err(EngineError::Rejected)));
        assert_eq!(service.telemetry().proposals_rejected(), 1);
        service.resume();
    }

    #[test]
    fn block_policy_never_loses_a_proposal() {
        let service = Arc::new(
            ConsensusService::builder()
                .n(1)
                .values(1024)
                .participants(1)
                .shards(1)
                .workers(1)
                .backpressure(BackpressurePolicy::Block)
                .ring_capacity(8)
                .batch_max(4)
                .build(),
        );
        // 4 producers × 100 proposals through an 8-deep ring: producers
        // must block rather than lose or drop anything.
        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let service = Arc::clone(&service);
                std::thread::spawn(move || {
                    (0..100u64)
                        .map(|i| {
                            let id = p * 100 + i;
                            service.submit(id, id % 1024).unwrap()
                        })
                        .collect::<Vec<DecisionHandle>>()
                })
            })
            .collect();
        let handles: Vec<Vec<DecisionHandle>> =
            producers.into_iter().map(|h| h.join().unwrap()).collect();
        for (p, batch) in handles.iter().enumerate() {
            for (i, handle) in batch.iter().enumerate() {
                let id = p as u64 * 100 + i as u64;
                assert_eq!(handle.wait(), Ok(id % 1024));
            }
        }
        let t = service.telemetry();
        assert_eq!(t.proposals_enqueued(), 400);
        assert_eq!(t.decisions(), 400);
        assert_eq!(t.proposals_shed(), 0);
        assert_eq!(t.proposals_rejected(), 0);
    }

    #[test]
    fn submit_batch_larger_than_ring_capacity_does_not_deadlock() {
        let service = ConsensusService::builder()
            .n(1)
            .values(1024)
            .participants(1)
            .shards(1)
            .workers(1)
            .ring_capacity(2)
            .batch_max(2)
            .build();
        // One run of 32 proposals through a 2-slot ring: admission must
        // wake the (initially parked) worker before blocking, or the
        // producer waits for a drain the worker was never told about.
        let items: Vec<(u64, u64)> = (0..32u64).map(|id| (id, id)).collect();
        let handles = service.submit_batch(&items);
        for (id, handle) in handles.into_iter().enumerate() {
            assert_eq!(handle.unwrap().wait(), Ok(id as u64));
        }
    }

    #[test]
    fn shutdown_restores_per_decide_recorder_events() {
        let agg = Arc::new(mc_telemetry::AggregatingRecorder::new());
        let engine = Arc::new(
            ConsensusEngine::builder()
                .n(1)
                .values(8)
                .participants(1)
                .recorder(Arc::clone(&agg) as Arc<dyn mc_telemetry::Recorder>)
                .build(),
        );
        {
            let _service = ConsensusService::over(Arc::clone(&engine), ServiceOptions::default());
            assert!(!engine.telemetry().decide_events_on());
        }
        // Drop ran shutdown: the engine is usable directly again, with
        // the full per-decide event stream.
        assert!(engine.telemetry().decide_events_on());
        let mut rng = SmallRng::seed_from_u64(7);
        engine.submit(0, 3, &mut rng);
        assert_eq!(agg.decisions(), 1);
    }

    struct PanicOnBatchDrained;

    impl mc_telemetry::Recorder for PanicOnBatchDrained {
        fn record(&self, event: &mc_telemetry::TelemetryEvent) {
            if matches!(event, mc_telemetry::TelemetryEvent::BatchDrained { .. }) {
                panic!("injected recorder failure");
            }
        }
    }

    #[test]
    fn dead_worker_closes_its_ring_instead_of_hanging_producers() {
        let service = ConsensusService::builder()
            .n(1)
            .values(64)
            .participants(1)
            .shards(1)
            .workers(1)
            .batch_max(1)
            .recorder(Arc::new(PanicOnBatchDrained) as Arc<dyn mc_telemetry::Recorder>)
            .build();
        service.pause();
        let handles: Vec<DecisionHandle> = (0..4u64)
            .map(|id| service.submit(id, id).unwrap())
            .collect();
        service.resume();
        // batch_max 1: the worker decides the first proposal, then dies
        // emitting its batch event; the death guard closes the ring and
        // poisons the three proposals it never reached.
        assert_eq!(handles[0].wait(), Ok(0));
        for handle in &handles[1..] {
            assert_eq!(handle.wait(), Err(EngineError::Poisoned));
        }
        // The closed ring refuses new work instead of queueing proposals
        // nothing will ever drain (a Block producer would otherwise park
        // forever against the dead ring).
        assert!(matches!(service.submit(9, 9), Err(EngineError::Rejected)));
        assert_eq!(service.queue_depth(), 0);
        assert_eq!(service.telemetry().queue_depth(), 0);
    }

    #[test]
    fn shutdown_drains_accepted_proposals() {
        let mut service = single_worker_service(BackpressurePolicy::Block);
        service.pause();
        let handles: Vec<DecisionHandle> = (0..10u64)
            .map(|id| service.submit(id, id).unwrap())
            .collect();
        // Shutdown unpauses, drains, and joins — nothing accepted is lost.
        service.shutdown();
        for (id, handle) in handles.iter().enumerate() {
            assert_eq!(handle.wait(), Ok(id as u64));
        }
        assert!(matches!(service.submit(99, 0), Err(EngineError::Rejected)));
    }

    #[test]
    fn batch_drained_events_reach_the_recorder() {
        let agg = Arc::new(mc_telemetry::AggregatingRecorder::new());
        let service = ConsensusService::builder()
            .n(1)
            .values(64)
            .participants(1)
            .shards(1)
            .workers(1)
            .recorder(Arc::clone(&agg) as Arc<dyn mc_telemetry::Recorder>)
            .build();
        service.pause();
        let handles: Vec<DecisionHandle> = (0..20u64)
            .map(|id| service.submit(id, id % 64).unwrap())
            .collect();
        service.resume();
        for handle in &handles {
            handle.wait().unwrap();
        }
        drop(service); // join workers so the batch events have landed
                       // All 20 were in the ring when the worker woke: one batch (the
                       // default batch_max is 256), one event, 20 proposals accounted.
        assert!(agg.batches_drained() >= 1);
        assert_eq!(agg.batched_proposals(), 20);
        // The service amortizes recorder traffic: per-decide events are
        // suppressed while it drives the engine, so the recorder sees the
        // batch summaries but not twenty Decided events.
        assert_eq!(agg.decisions(), 0);
    }

    #[test]
    fn oversized_proposal_is_refused_at_admission() {
        let service = single_worker_service(BackpressurePolicy::Block);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            service.submit(0, 9999).ok();
        }));
        assert!(result.is_err(), "oversized proposal must panic at submit");
        // The panic happened on the producer side: workers are alive and
        // the service still decides.
        assert_eq!(service.submit(1, 3).unwrap().wait(), Ok(3));
    }

    #[test]
    fn handles_survive_the_service_when_decided() {
        let handle = {
            let service = single_worker_service(BackpressurePolicy::Block);
            let handle = service.submit(0, 7).unwrap();
            handle.wait().unwrap();
            handle
        };
        assert_eq!(handle.poll(), Some(Ok(7)));
    }
}
