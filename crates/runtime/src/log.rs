//! A replicated log: the standard application built from repeated
//! consensus, with a pooled learn-then-retire slot lifecycle.

use mc_telemetry::Recorder;
use parking_lot::RwLock;
use rand::Rng;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// Who drives this log's decisions: nobody yet, [`ReplicatedLog::append`]
/// (the log runs its own per-slot consensus), or
/// [`ReplicatedLog::learn_decided`] (an external sequencer — the store
/// layer — runs consensus elsewhere and records outcomes). The two must
/// not mix on one log: `append` assumes an unlearned slot has live
/// machinery it can decide through, which externally-learned logs never
/// materialize.
const DRIVE_UNSET: u8 = 0;
const DRIVE_APPEND: u8 = 1;
const DRIVE_EXTERNAL: u8 = 2;

use crate::consensus::{Consensus, ConsensusOptions};
use crate::register::{AtomicMemory, SharedMemory};
use crate::telemetry::RuntimeTelemetry;

/// Live consensus machinery for a contiguous band of undecided (or just-
/// decided, not-yet-retired) slots, plus the recycle pool feeding it.
struct SlotTable<M: SharedMemory> {
    /// Index of the first slot still backed by a live consensus object;
    /// every slot below `base` was learned and retired.
    base: usize,
    /// Objects for slots `base..base + live.len()`, in slot order.
    live: VecDeque<Arc<Consensus<M>>>,
    /// Reset objects ready to back a future slot (generation-tagged
    /// registers kept, contents invisible).
    free: Vec<Consensus<M>>,
}

/// Decided entries plus the length of their contiguous prefix, maintained
/// incrementally so [`ReplicatedLog::learned_prefix`] is O(1).
struct LearnedLog {
    /// First slot still retained; everything below was compacted away
    /// after the application consumed it. `entries[i]` is slot `start + i`.
    start: usize,
    entries: Vec<Option<u64>>,
    /// First slot index not yet learned (absolute); every slot in
    /// `start..prefix` is `Some`.
    prefix: usize,
}

/// An append-only totally-ordered log agreed on by up to `n` threads, one
/// consensus instance per slot (slots materialize lazily).
///
/// Every replica proposes its next command for the lowest slot it has not
/// yet learned; whatever consensus decides occupies the slot on *all*
/// replicas identically. This is the replicated-state-machine pattern the
/// consensus problem exists for, packaged as a reusable object.
///
/// Entries are `u64` command codes below `capacity`; layer your own
/// encoding on top (see [`TypedConsensus`](crate::TypedConsensus) for the
/// pattern).
///
/// # Slot lifecycle and memory behavior
///
/// The expensive part of a slot is its consensus machinery (stage objects
/// and their registers), not its decided entry. The log therefore runs a
/// **learn-then-retire** lifecycle: once the contiguous learned prefix
/// advances past a slot, that slot's [`Consensus`] is reset
/// ([`Consensus::reset`]) and parked on a free-list, and the next
/// materialized slot reuses it — at steady state a sustained append stream
/// runs in a bounded window of live instances with a pool hit rate near 1,
/// visible as `pool_hits`/`pool_misses`/`instances_retired` in
/// [`telemetry`](ReplicatedLog::telemetry). An instance with a `decide`
/// still in flight is simply kept until the call returns (retirement
/// retries on the next learn), so recycling never races a decision.
///
/// # Compaction story
///
/// Decided *entries* are 8 bytes each and are the log's actual payload:
/// retained storage grows one `u64` per slot, the floor for an append-only
/// log. Consumers that apply the log as a state machine should read
/// entries in order via
/// [`learned_prefix`](ReplicatedLog::learned_prefix) +
/// [`get`](ReplicatedLog::get) (O(1) each) and then call
/// [`compact_below`](ReplicatedLog::compact_below) with their applied
/// index — retained storage is then bounded by the apply lag, and a
/// sustained append-apply loop runs at flat RSS (the
/// `engine_throughput` bench enforces this). Slot indices are never
/// renumbered; compacted slots simply read as `None`.
/// [`snapshot`](ReplicatedLog::snapshot) clones the retained prefix and is
/// meant for tests and small logs.
///
/// # Example
///
/// ```
/// use mc_runtime::ReplicatedLog;
/// use rand::{rngs::SmallRng, SeedableRng};
/// use std::sync::Arc;
///
/// let log = Arc::new(ReplicatedLog::new(2, 16));
/// let writer = {
///     let log = Arc::clone(&log);
///     std::thread::spawn(move || {
///         let mut rng = SmallRng::seed_from_u64(1);
///         log.append(7, &mut rng)
///     })
/// };
/// let mut rng = SmallRng::seed_from_u64(2);
/// let my_slot = log.append(9, &mut rng);
/// let their_slot = writer.join().unwrap();
/// // Both commands landed, in the same two slots, on one shared log.
/// assert_ne!(my_slot, their_slot);
/// ```
pub struct ReplicatedLog<M: SharedMemory = AtomicMemory> {
    capacity: u64,
    memory: M,
    /// Validated once; every slot's instance shares it by `Arc`, so slot
    /// setup never re-validates the quorum scheme.
    options: Arc<ConsensusOptions>,
    /// Slots the learned prefix must clear a slot by before it is retired
    /// (0 = retire as soon as learned).
    retire_lag: usize,
    /// Which decision driver claimed this log (`DRIVE_*`), settled by the
    /// first `append`/`learn_decided` call.
    drive: AtomicU8,
    slots: RwLock<SlotTable<M>>,
    learned: RwLock<LearnedLog>,
    /// Shared by every slot's consensus instance, so the log reports one
    /// aggregate view (plus append/slot-contention/pool counts of its own).
    telemetry: Arc<RuntimeTelemetry>,
}

impl ReplicatedLog {
    /// Creates a log for up to `n` threads over command codes `0..capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `capacity < 2`.
    pub fn new(n: usize, capacity: u64) -> ReplicatedLog {
        ReplicatedLog::new_in(AtomicMemory, n, capacity)
    }

    /// Creates a log whose slots emit telemetry events to `recorder`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `capacity < 2`.
    pub fn with_recorder(n: usize, capacity: u64, recorder: Arc<dyn Recorder>) -> ReplicatedLog {
        ReplicatedLog::with_telemetry(
            AtomicMemory,
            n,
            capacity,
            Arc::new(RuntimeTelemetry::new(n, recorder)),
        )
    }
}

impl<M: SharedMemory> ReplicatedLog<M> {
    /// Creates a log whose registers live in `memory`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `capacity < 2`.
    pub fn new_in(memory: M, n: usize, capacity: u64) -> ReplicatedLog<M> {
        ReplicatedLog::with_telemetry(memory, n, capacity, Arc::new(RuntimeTelemetry::noop(n)))
    }

    fn with_telemetry(
        memory: M,
        n: usize,
        capacity: u64,
        telemetry: Arc<RuntimeTelemetry>,
    ) -> ReplicatedLog<M> {
        assert!(n > 0, "need at least one replica");
        assert!(capacity >= 2, "need at least two command codes");
        ReplicatedLog {
            capacity,
            memory,
            options: Arc::new(Consensus::multivalued_options(n, capacity)),
            retire_lag: 0,
            drive: AtomicU8::new(DRIVE_UNSET),
            slots: RwLock::new(SlotTable {
                base: 0,
                live: VecDeque::new(),
                free: Vec::new(),
            }),
            learned: RwLock::new(LearnedLog {
                start: 0,
                entries: Vec::new(),
                prefix: 0,
            }),
            telemetry,
        }
    }

    /// Keeps each decided slot's consensus machinery alive until the
    /// learned prefix is `lag` slots past it (default 0: retire as soon as
    /// learned). Diagnostics aid; correctness never needs a lag because
    /// retirement already waits for in-flight `decide` calls.
    #[must_use]
    pub fn with_retire_lag(mut self, lag: usize) -> ReplicatedLog<M> {
        self.retire_lag = lag;
        self
    }

    /// Number of command codes supported.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Aggregate metrics across the log and every slot's consensus:
    /// appends, slot conflicts, decide histograms, pool hits/misses.
    pub fn telemetry(&self) -> &RuntimeTelemetry {
        &self.telemetry
    }

    /// The shared options handle every slot instance is built from
    /// (`Arc::ptr_eq` with any slot's
    /// [`options_handle`](Consensus::options_handle)).
    pub fn options_handle(&self) -> &Arc<ConsensusOptions> {
        &self.options
    }

    /// Slots currently backed by live consensus machinery (the bounded
    /// window behind and at the decision frontier).
    pub fn live_slots(&self) -> usize {
        self.slots.read().live.len()
    }

    /// Reset consensus objects parked for reuse.
    pub fn pooled_instances(&self) -> usize {
        self.slots.read().free.len()
    }

    /// The live object for slot `ix`, materializing it (from the pool when
    /// possible) on first touch; `None` when the slot has already been
    /// retired — which implies it has been learned.
    fn slot(&self, ix: usize) -> Option<Arc<Consensus<M>>> {
        {
            let table = self.slots.read();
            if ix < table.base {
                return None;
            }
            if let Some(slot) = table.live.get(ix - table.base) {
                return Some(Arc::clone(slot));
            }
        }
        let mut table = self.slots.write();
        if ix < table.base {
            return None;
        }
        while table.base + table.live.len() <= ix {
            let instance = match table.free.pop() {
                Some(recycled) => {
                    self.telemetry.on_pool_hit();
                    recycled
                }
                None => {
                    self.telemetry.on_pool_miss();
                    Consensus::with_telemetry_in(
                        self.memory.clone(),
                        Arc::clone(&self.options),
                        Arc::clone(&self.telemetry),
                    )
                }
            };
            table.live.push_back(Arc::new(instance));
        }
        Some(Arc::clone(&table.live[ix - table.base]))
    }

    fn learn(&self, ix: usize, value: u64) {
        let prefix = {
            let mut learned = self.learned.write();
            if ix < learned.start {
                // A lagging appender finishing `decide` on a slot the
                // application already applied and compacted away: compacted
                // implies learned, so there is nothing to record — but
                // still give retirement a chance below, now that this
                // appender has dropped its handle on the slot's instance.
                learned.prefix
            } else {
                let rel = ix - learned.start;
                if learned.entries.len() <= rel {
                    learned.entries.resize(rel + 1, None);
                }
                debug_assert!(
                    learned.entries[rel].is_none_or(|v| v == value),
                    "slot {ix} diverged"
                );
                learned.entries[rel] = Some(value);
                while learned
                    .entries
                    .get(learned.prefix - learned.start)
                    .is_some_and(Option::is_some)
                {
                    learned.prefix += 1;
                }
                learned.prefix
            }
        };
        self.retire_below(prefix.saturating_sub(self.retire_lag));
    }

    /// Retires (resets and pools) live slots strictly below `limit`, in
    /// slot order, stopping at the first instance with a `decide` still in
    /// flight — that one is retried on a later learn.
    fn retire_below(&self, limit: usize) {
        let mut table = self.slots.write();
        while table.base < limit {
            let Some(slot) = table.live.pop_front() else {
                break;
            };
            match Arc::try_unwrap(slot) {
                Ok(mut instance) => {
                    instance.reset();
                    table.free.push(instance);
                    table.base += 1;
                    self.telemetry.on_instance_retired();
                }
                Err(slot) => {
                    table.live.push_front(slot);
                    break;
                }
            }
        }
    }

    /// Appends `command`, returning the slot index where it landed.
    ///
    /// The caller drives consensus on successive slots — skipping slots
    /// already learned, learning the rest along the way — until one slot
    /// decides its own command. Wait-free relative to the underlying
    /// consensus instances.
    ///
    /// # Panics
    ///
    /// Panics if `command ≥ capacity()`.
    pub fn append(&self, command: u64, rng: &mut dyn Rng) -> usize {
        assert!(
            command < self.capacity,
            "command {command} exceeds capacity {}",
            self.capacity
        );
        self.claim_drive(DRIVE_APPEND);
        let start_ix = self.first_unknown();
        let mut ix = start_ix;
        loop {
            if self.get(ix).is_some() {
                // Another replica's command owns this slot already; no
                // consensus to run, move to the next.
                ix += 1;
                continue;
            }
            let Some(slot) = self.slot(ix) else {
                // Retired between the check above and the lookup — retired
                // implies learned, so this slot is taken too.
                ix += 1;
                continue;
            };
            let decided = slot.decide(command, rng);
            drop(slot);
            self.learn(ix, decided);
            if decided == command {
                self.telemetry.on_append((ix - start_ix + 1) as u64);
                return ix;
            }
            ix += 1;
        }
    }

    /// First slot index this log has not yet learned.
    fn first_unknown(&self) -> usize {
        self.learned.read().prefix
    }

    /// Settles (or checks) the log's decision driver: the first caller
    /// fixes the mode, later callers of the *other* mode panic.
    fn claim_drive(&self, wanted: u8) {
        if let Err(current) =
            self.drive
                .compare_exchange(DRIVE_UNSET, wanted, Ordering::Relaxed, Ordering::Relaxed)
        {
            assert!(
                current == wanted,
                "a ReplicatedLog is driven by append() or learn_decided(), never both: \
                 append runs per-slot consensus inside the log, learn_decided records \
                 decisions an external sequencer already agreed on"
            );
        }
    }

    /// Records a decision an *external* sequencer reached for `slot` —
    /// the store layer's path, where commands are ordered through a
    /// [`ConsensusService`](crate::ConsensusService) (one instance per
    /// slot) and this log only keeps the learned prefix, entry storage,
    /// and compaction machinery. Idempotent: re-learning a slot with the
    /// same value, or a slot already compacted away, is a no-op.
    ///
    /// Slots may be learned out of order; [`learned_prefix`] advances
    /// only over the contiguous run, exactly as with append-driven logs.
    ///
    /// [`learned_prefix`]: ReplicatedLog::learned_prefix
    ///
    /// # Panics
    ///
    /// Panics if `value ≥ capacity()`, or if this log has ever been
    /// driven by [`append`](ReplicatedLog::append) — the two decision
    /// drivers must not mix on one log (`append` assumes unlearned slots
    /// have live consensus machinery, which external learning never
    /// materializes). Debug builds also catch re-learning a slot with a
    /// *different* value, which would mean the external sequencer
    /// diverged.
    pub fn learn_decided(&self, slot: usize, value: u64) {
        assert!(
            value < self.capacity,
            "value {value} exceeds capacity {}",
            self.capacity
        );
        self.claim_drive(DRIVE_EXTERNAL);
        self.learn(slot, value);
    }

    /// Length of the contiguous decided prefix: every slot in
    /// `0..learned_prefix()` is learned and readable via
    /// [`get`](ReplicatedLog::get). O(1) — the prefix is maintained
    /// incrementally as slots are learned, with no cloning under the lock.
    pub fn learned_prefix(&self) -> usize {
        self.learned.read().prefix
    }

    /// The decided, still-retained prefix of the log: entries for every
    /// learned slot from [`compacted_below`](ReplicatedLog::compacted_below)
    /// up, in order, stopping at the first unlearned slot.
    ///
    /// Clones the retained prefix; prefer
    /// [`learned_prefix`](ReplicatedLog::learned_prefix) +
    /// [`get`](ReplicatedLog::get) for incremental consumption.
    pub fn snapshot(&self) -> Vec<u64> {
        self.learned
            .read()
            .entries
            .iter()
            .map_while(|e| *e)
            .collect()
    }

    /// The entry decided in `slot`, if this log has learned it and not yet
    /// compacted it away.
    pub fn get(&self, slot: usize) -> Option<u64> {
        let learned = self.learned.read();
        if slot < learned.start {
            return None;
        }
        learned.entries.get(slot - learned.start).copied().flatten()
    }

    /// Discards retained entries below `slot` (clamped to the learned
    /// prefix), returning the new retention start. Call after applying
    /// entries to your state machine: retained storage then stays bounded
    /// by the apply lag instead of growing 8 bytes per slot forever. Slot
    /// indices are stable — compaction never renumbers — but
    /// [`get`](ReplicatedLog::get) returns `None` for compacted slots.
    pub fn compact_below(&self, slot: usize) -> usize {
        let mut learned = self.learned.write();
        let limit = slot.min(learned.prefix);
        if limit > learned.start {
            let dropped = limit - learned.start;
            learned.entries.drain(..dropped);
            learned.start = limit;
        }
        learned.start
    }

    /// First slot still retained: everything below was
    /// [`compact_below`](ReplicatedLog::compact_below)ed away after being
    /// learned.
    pub fn compacted_below(&self) -> usize {
        self.learned.read().start
    }
}

impl<M: SharedMemory> std::fmt::Debug for ReplicatedLog<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicatedLog")
            .field("capacity", &self.capacity)
            .field("learned_prefix", &self.learned_prefix())
            .field("live_slots", &self.live_slots())
            .field("pooled_instances", &self.pooled_instances())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn sequential_appends_fill_slots_in_order() {
        let log = ReplicatedLog::new(1, 16);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(log.append(5, &mut rng), 0);
        assert_eq!(log.append(9, &mut rng), 1);
        assert_eq!(log.append(5, &mut rng), 2);
        assert_eq!(log.snapshot(), vec![5, 9, 5]);
        assert_eq!(log.get(1), Some(9));
        assert_eq!(log.get(7), None);
        assert_eq!(log.learned_prefix(), 3);
    }

    #[test]
    fn concurrent_appends_land_every_command_exactly_once() {
        for trial in 0..30 {
            let threads = 4;
            let log = Arc::new(ReplicatedLog::new(threads, 64));
            let handles: Vec<_> = (0..threads as u64)
                .map(|t| {
                    let log = Arc::clone(&log);
                    std::thread::spawn(move || {
                        let mut rng = SmallRng::seed_from_u64(trial * 100 + t);
                        // Distinct commands so we can count placements.
                        log.append(10 + t, &mut rng)
                    })
                })
                .collect();
            let slots: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            // All commands landed in distinct slots.
            let mut sorted = slots.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), threads, "trial {trial}: slots {slots:?}");
            // And each append's slot really holds its command.
            for (t, &slot) in slots.iter().enumerate() {
                assert_eq!(log.get(slot), Some(10 + t as u64), "trial {trial}");
            }
        }
    }

    #[test]
    fn duplicate_commands_occupy_separate_slots() {
        let threads = 3;
        let log = Arc::new(ReplicatedLog::new(threads, 4));
        let handles: Vec<_> = (0..threads as u64)
            .map(|t| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(t);
                    log.append(1, &mut rng)
                })
            })
            .collect();
        let mut slots: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        slots.sort_unstable();
        slots.dedup();
        assert_eq!(slots.len(), threads);
        assert_eq!(log.snapshot(), vec![1, 1, 1]);
    }

    #[test]
    fn decided_slots_are_retired_into_the_pool() {
        let log = ReplicatedLog::new(1, 16);
        let mut rng = SmallRng::seed_from_u64(0);
        for i in 0..100 {
            log.append(i % 16, &mut rng);
        }
        assert_eq!(log.learned_prefix(), 100);
        // Sequential appends: each slot is learned (and so retired) before
        // the next materializes — the whole run uses one pooled instance.
        assert_eq!(log.live_slots(), 0);
        assert_eq!(log.pooled_instances(), 1);
        let t = log.telemetry();
        assert_eq!(t.pool_misses(), 1);
        assert_eq!(t.pool_hits(), 99);
        assert_eq!(t.instances_retired(), 100);
        assert!(t.pool_hit_rate() > 0.9);
    }

    #[test]
    fn retire_lag_keeps_a_window_of_live_slots() {
        let log = ReplicatedLog::new(1, 16).with_retire_lag(5);
        let mut rng = SmallRng::seed_from_u64(0);
        for i in 0..20 {
            log.append(i % 16, &mut rng);
        }
        assert_eq!(log.live_slots(), 5);
        assert_eq!(log.telemetry().instances_retired(), 15);
        assert_eq!(log.snapshot().len(), 20);
    }

    #[test]
    fn concurrent_appends_survive_recycling() {
        for trial in 0..10 {
            let threads = 4;
            let log = Arc::new(ReplicatedLog::new(threads, 128));
            let handles: Vec<_> = (0..threads as u64)
                .map(|t| {
                    let log = Arc::clone(&log);
                    std::thread::spawn(move || {
                        let mut rng = SmallRng::seed_from_u64(trial * 100 + t);
                        (0..25)
                            .map(|i| log.append(t * 25 + i, &mut rng))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            let mut all_slots: Vec<usize> = handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all_slots.sort_unstable();
            all_slots.dedup();
            assert_eq!(all_slots.len(), 100, "trial {trial}: a slot was reused");
            assert_eq!(log.learned_prefix(), 100, "trial {trial}");
            // Steady state: far fewer instances than slots ever existed.
            let t = log.telemetry();
            assert!(t.instances_retired() <= t.pool_hits() + t.pool_misses());
            assert!(
                t.pool_misses() < 100,
                "trial {trial}: pooling never kicked in ({} misses)",
                t.pool_misses()
            );
        }
    }

    #[test]
    fn slot_instances_share_the_options_allocation() {
        let log = ReplicatedLog::new(1, 16);
        let mut rng = SmallRng::seed_from_u64(0);
        log.append(3, &mut rng);
        let slot0 = log.slot(0);
        if let Some(slot) = slot0 {
            assert!(Arc::ptr_eq(slot.options_handle(), log.options_handle()));
        } else {
            // Slot 0 already retired; the pooled instance still shares.
            let table = log.slots.read();
            let pooled = table.free.first().expect("retired instance is pooled");
            assert!(Arc::ptr_eq(pooled.options_handle(), log.options_handle()));
        }
    }

    #[test]
    fn compaction_drops_applied_entries_without_renumbering() {
        let log = ReplicatedLog::new(1, 16);
        let mut rng = SmallRng::seed_from_u64(0);
        for i in 0..50 {
            log.append(i % 16, &mut rng);
        }
        assert_eq!(log.compact_below(30), 30);
        assert_eq!(log.compacted_below(), 30);
        assert_eq!(log.get(29), None, "compacted slots read as None");
        assert_eq!(
            log.get(30),
            Some(30 % 16),
            "retained slots keep their index"
        );
        assert_eq!(log.snapshot(), (30..50).map(|i| i % 16).collect::<Vec<_>>());
        // Appends continue past compaction with stable numbering.
        assert_eq!(log.append(7, &mut rng), 50);
        assert_eq!(log.learned_prefix(), 51);
        // Compacting beyond the prefix clamps; compacting backwards is a
        // no-op.
        assert_eq!(log.compact_below(1_000), 51);
        assert_eq!(log.compact_below(10), 51);
    }

    #[test]
    fn learning_a_compacted_slot_is_a_noop() {
        // A lagging appender can finish `decide` on a slot others already
        // learned, after the application compacted past it — its `learn`
        // must not panic or disturb the retained log.
        let log = ReplicatedLog::new(1, 16);
        let mut rng = SmallRng::seed_from_u64(0);
        for i in 0..10 {
            log.append(i, &mut rng);
        }
        assert_eq!(log.compact_below(5), 5);
        log.learn(2, 2);
        assert_eq!(log.learned_prefix(), 10);
        assert_eq!(log.compacted_below(), 5);
        assert_eq!(log.snapshot(), (5..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn oversized_command_rejected() {
        let log = ReplicatedLog::new(1, 4);
        log.append(4, &mut SmallRng::seed_from_u64(0));
    }

    #[test]
    fn externally_learned_slots_advance_the_prefix_in_order() {
        let log = ReplicatedLog::new(2, 16);
        // Out-of-order learning: prefix waits for the gap.
        log.learn_decided(1, 9);
        assert_eq!(log.learned_prefix(), 0);
        log.learn_decided(0, 5);
        assert_eq!(log.learned_prefix(), 2);
        assert_eq!(log.snapshot(), vec![5, 9]);
        // Idempotent re-learn and compaction behave as with append.
        log.learn_decided(1, 9);
        assert_eq!(log.compact_below(1), 1);
        log.learn_decided(0, 5);
        assert_eq!(log.learned_prefix(), 2);
        assert_eq!(log.snapshot(), vec![9]);
        // No consensus machinery ever materialized.
        assert_eq!(log.live_slots(), 0);
        assert_eq!(log.pooled_instances(), 0);
    }

    #[test]
    #[should_panic(expected = "never both")]
    fn mixing_append_and_learn_decided_panics() {
        let log = ReplicatedLog::new(1, 16);
        log.append(3, &mut SmallRng::seed_from_u64(0));
        log.learn_decided(1, 4);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn oversized_external_decision_rejected() {
        let log = ReplicatedLog::new(1, 4);
        log.learn_decided(0, 4);
    }
}
