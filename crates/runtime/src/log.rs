//! A replicated log: the standard application built from repeated
//! consensus.

use mc_telemetry::Recorder;
use parking_lot::RwLock;
use rand::Rng;
use std::sync::Arc;

use crate::consensus::Consensus;
use crate::register::{AtomicMemory, SharedMemory};
use crate::telemetry::RuntimeTelemetry;

/// An append-only totally-ordered log agreed on by up to `n` threads, one
/// consensus instance per slot (slots materialize lazily).
///
/// Every replica proposes its next command for the lowest slot it has not
/// yet learned; whatever consensus decides occupies the slot on *all*
/// replicas identically. This is the replicated-state-machine pattern the
/// consensus problem exists for, packaged as a reusable object.
///
/// Entries are `u64` command codes below `capacity`; layer your own
/// encoding on top (see [`TypedConsensus`](crate::TypedConsensus) for the
/// pattern).
///
/// # Example
///
/// ```
/// use mc_runtime::ReplicatedLog;
/// use rand::{rngs::SmallRng, SeedableRng};
/// use std::sync::Arc;
///
/// let log = Arc::new(ReplicatedLog::new(2, 16));
/// let writer = {
///     let log = Arc::clone(&log);
///     std::thread::spawn(move || {
///         let mut rng = SmallRng::seed_from_u64(1);
///         log.append(7, &mut rng)
///     })
/// };
/// let mut rng = SmallRng::seed_from_u64(2);
/// let my_slot = log.append(9, &mut rng);
/// let their_slot = writer.join().unwrap();
/// // Both commands landed, in the same two slots, on one shared log.
/// assert_ne!(my_slot, their_slot);
/// ```
pub struct ReplicatedLog<M: SharedMemory = AtomicMemory> {
    n: usize,
    capacity: u64,
    memory: M,
    slots: RwLock<Vec<Arc<Consensus<M>>>>,
    /// Decided entries, filled in slot order as threads learn them.
    learned: RwLock<Vec<Option<u64>>>,
    /// Shared by every slot's consensus instance, so the log reports one
    /// aggregate view (plus append/slot-contention counts of its own).
    telemetry: Arc<RuntimeTelemetry>,
}

impl ReplicatedLog {
    /// Creates a log for up to `n` threads over command codes `0..capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `capacity < 2`.
    pub fn new(n: usize, capacity: u64) -> ReplicatedLog {
        ReplicatedLog::new_in(AtomicMemory, n, capacity)
    }

    /// Creates a log whose slots emit telemetry events to `recorder`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `capacity < 2`.
    pub fn with_recorder(n: usize, capacity: u64, recorder: Arc<dyn Recorder>) -> ReplicatedLog {
        ReplicatedLog::with_telemetry(
            AtomicMemory,
            n,
            capacity,
            Arc::new(RuntimeTelemetry::new(n, recorder)),
        )
    }
}

impl<M: SharedMemory> ReplicatedLog<M> {
    /// Creates a log whose registers live in `memory`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `capacity < 2`.
    pub fn new_in(memory: M, n: usize, capacity: u64) -> ReplicatedLog<M> {
        ReplicatedLog::with_telemetry(memory, n, capacity, Arc::new(RuntimeTelemetry::noop(n)))
    }

    fn with_telemetry(
        memory: M,
        n: usize,
        capacity: u64,
        telemetry: Arc<RuntimeTelemetry>,
    ) -> ReplicatedLog<M> {
        assert!(n > 0, "need at least one replica");
        assert!(capacity >= 2, "need at least two command codes");
        ReplicatedLog {
            n,
            capacity,
            memory,
            slots: RwLock::new(Vec::new()),
            learned: RwLock::new(Vec::new()),
            telemetry,
        }
    }

    /// Number of command codes supported.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Aggregate metrics across the log and every slot's consensus:
    /// appends, slot conflicts, decide histograms, prob-write counts.
    pub fn telemetry(&self) -> &RuntimeTelemetry {
        &self.telemetry
    }

    fn slot(&self, ix: usize) -> Arc<Consensus<M>> {
        if let Some(slot) = self.slots.read().get(ix) {
            return Arc::clone(slot);
        }
        let mut slots = self.slots.write();
        while slots.len() <= ix {
            slots.push(Arc::new(Consensus::with_telemetry_in(
                self.memory.clone(),
                Consensus::multivalued_options(self.n, self.capacity),
                Arc::clone(&self.telemetry),
            )));
        }
        Arc::clone(&slots[ix])
    }

    fn learn(&self, ix: usize, value: u64) {
        let mut learned = self.learned.write();
        if learned.len() <= ix {
            learned.resize(ix + 1, None);
        }
        debug_assert!(learned[ix].is_none_or(|v| v == value), "slot {ix} diverged");
        learned[ix] = Some(value);
    }

    /// Appends `command`, returning the slot index where it landed.
    ///
    /// The caller drives consensus on successive slots — learning other
    /// replicas' entries along the way — until one slot decides its own
    /// command. Wait-free relative to the underlying consensus instances.
    ///
    /// # Panics
    ///
    /// Panics if `command ≥ capacity()`.
    pub fn append(&self, command: u64, rng: &mut dyn Rng) -> usize {
        assert!(
            command < self.capacity,
            "command {command} exceeds capacity {}",
            self.capacity
        );
        let start_ix = self.first_unknown();
        let mut ix = start_ix;
        loop {
            let decided = self.slot(ix).decide(command, rng);
            self.learn(ix, decided);
            if decided == command {
                self.telemetry.on_append((ix - start_ix + 1) as u64);
                return ix;
            }
            ix += 1;
        }
    }

    /// First slot index this log has not yet learned.
    fn first_unknown(&self) -> usize {
        let learned = self.learned.read();
        learned
            .iter()
            .position(|e| e.is_none())
            .unwrap_or(learned.len())
    }

    /// The decided prefix of the log: entries for every learned slot, in
    /// order, stopping at the first unlearned slot.
    pub fn snapshot(&self) -> Vec<u64> {
        self.learned.read().iter().map_while(|e| *e).collect()
    }

    /// The entry decided in `slot`, if this log has learned it.
    pub fn get(&self, slot: usize) -> Option<u64> {
        self.learned.read().get(slot).copied().flatten()
    }
}

impl<M: SharedMemory> std::fmt::Debug for ReplicatedLog<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicatedLog")
            .field("n", &self.n)
            .field("capacity", &self.capacity)
            .field("learned", &self.snapshot())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn sequential_appends_fill_slots_in_order() {
        let log = ReplicatedLog::new(1, 16);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(log.append(5, &mut rng), 0);
        assert_eq!(log.append(9, &mut rng), 1);
        assert_eq!(log.append(5, &mut rng), 2);
        assert_eq!(log.snapshot(), vec![5, 9, 5]);
        assert_eq!(log.get(1), Some(9));
        assert_eq!(log.get(7), None);
    }

    #[test]
    fn concurrent_appends_land_every_command_exactly_once() {
        for trial in 0..30 {
            let threads = 4;
            let log = Arc::new(ReplicatedLog::new(threads, 64));
            let handles: Vec<_> = (0..threads as u64)
                .map(|t| {
                    let log = Arc::clone(&log);
                    std::thread::spawn(move || {
                        let mut rng = SmallRng::seed_from_u64(trial * 100 + t);
                        // Distinct commands so we can count placements.
                        log.append(10 + t, &mut rng)
                    })
                })
                .collect();
            let slots: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            // All commands landed in distinct slots.
            let mut sorted = slots.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), threads, "trial {trial}: slots {slots:?}");
            // And each append's slot really holds its command.
            for (t, &slot) in slots.iter().enumerate() {
                assert_eq!(log.get(slot), Some(10 + t as u64), "trial {trial}");
            }
        }
    }

    #[test]
    fn duplicate_commands_occupy_separate_slots() {
        let threads = 3;
        let log = Arc::new(ReplicatedLog::new(threads, 4));
        let handles: Vec<_> = (0..threads as u64)
            .map(|t| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(t);
                    log.append(1, &mut rng)
                })
            })
            .collect();
        let mut slots: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        slots.sort_unstable();
        slots.dedup();
        assert_eq!(slots.len(), threads);
        assert_eq!(log.snapshot(), vec![1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn oversized_command_rejected() {
        let log = ReplicatedLog::new(1, 4);
        log.append(4, &mut SmallRng::seed_from_u64(0));
    }
}
