//! Bounded consensus with graceful fallback — §4.1.2 / Theorem 5.
//!
//! The unbounded construction of §4.1.1 ([`Consensus`]) appends
//! conciliator/ratifier pairs forever; its space is unbounded and an
//! adversary controls its tail. Theorem 5 truncates the chain after `f`
//! conciliator stages and appends a backup protocol `K`:
//!
//! ```text
//! R₋₁; R₀; C₁; R₁; C₂; R₂; …; C_f; R_f; K
//! ```
//!
//! Each conciliator produces agreement with probability at least δ
//! (independent coins), so the probability that *no* ratifier in the chain
//! detects agreement — the probability of reaching `K` — is at most
//! `(1 − δ)^f` (`mc_analysis::theory::fallback_probability`). `K` may be
//! slow (here: an O(n)-scan leader protocol), but it is deterministic and
//! always terminates, so the composed object decides on **every**
//! schedule, trading the unbounded chain's probability-1 termination for a
//! worst-case bound with an exponentially rare slow path.
//!
//! The fallback is pluggable via the [`Fallback`] trait;
//! [`LeaderFallback`] is the provided `K`.

use std::sync::Arc;
use std::time::Instant;

use mc_telemetry::{Recorder, StageKind};
use rand::Rng;

use crate::conciliator::ConciliatorChoice;
use crate::consensus::{Consensus, ConsensusOptions, Stage};
use crate::register::{AtomicMemory, SharedMemory, SharedRegister};
use crate::telemetry::RuntimeTelemetry;

/// Default conciliator bound `f` when
/// [`ConsensusOptions::max_conciliator_rounds`] is `None`.
///
/// With the paper's worst-case δ ≈ 0.0553 (Theorem 7) this gives a
/// fallback probability of about `0.9447¹⁶ ≈ 0.40` per fully adversarial
/// object; against the benign schedules of a real runtime the measured δ
/// is far higher and the fallback is vanishingly rare.
pub const DEFAULT_MAX_CONCILIATOR_ROUNDS: u32 = 16;

/// A deterministic backup consensus protocol `K` for [`BoundedConsensus`].
///
/// `decide` must be a correct consensus protocol on its own (validity +
/// agreement among fallback callers) and must additionally accept any
/// value published by [`publish`](Fallback::publish): when a process
/// decides `v` inside the chain, the ratifier coherence argument
/// guarantees every value still flowing through later stages equals `v`,
/// so a published value and the fallback callers' inputs never disagree.
pub trait Fallback: Send + Sync {
    /// Decides deterministically; `value` is the caller's current chain
    /// value, `pid` its process id in `0..n`.
    fn decide(&self, pid: usize, value: u64) -> u64;

    /// Called when `pid` decides `value` *inside* the chain, before its
    /// `decide` call returns, so late fallback entrants can learn the
    /// decision.
    fn publish(&self, pid: usize, value: u64);

    /// Recycles the fallback for a fresh consensus instance: any state left
    /// by the previous instance (announcements, a published decision) must
    /// become invisible, exactly as if the object were freshly built.
    ///
    /// Exclusive access (`&mut`) guarantees no `decide` call is in flight.
    fn reset(&mut self);

    /// Short name for diagnostics.
    fn name(&self) -> &'static str {
        "fallback"
    }
}

/// The provided `K`: an O(n)-scan designated-leader protocol.
///
/// Registers: one announcement slot per process plus a single-writer
/// decision register written **only by process 0**, which makes the
/// decision register race-free by construction — no deterministic
/// leader-election (impossible wait-free) and no locks (which would
/// deadlock under `mc-lab`'s serialized scheduler) are needed.
///
/// * Process 0 entering the fallback writes its slot, scans all slots in
///   index order, adopts the first announced value, writes it to the
///   decision register, and returns it.
/// * Any other process writes its slot and spin-reads the decision
///   register.
/// * A process deciding `v` in-chain publishes: process 0 writes `v` to
///   the decision register (coherence makes this consistent with every
///   later chain value); others do nothing.
///
/// **Leader dependence**: termination of the fallback requires process 0
/// to eventually run (it always does under the runtime and under `mc-lab`
/// without crashes; crashing process 0 before it writes the decision
/// register starves fallback entrants — the classic cost of a designated
/// leader, which Theorem 5 tolerates because `K` is only required to be
/// a correct protocol for the model at hand).
pub struct LeaderFallback<M: SharedMemory> {
    slots: Vec<M::Reg>,
    decision: M::Reg,
}

impl<M: SharedMemory> LeaderFallback<M> {
    /// Allocates the fallback's registers (`n` slots + decision) in
    /// `memory`, in a fixed order.
    pub fn new_in(memory: &M, n: usize) -> LeaderFallback<M> {
        assert!(n > 0, "need at least one process");
        LeaderFallback {
            slots: (0..n).map(|_| memory.alloc()).collect(),
            decision: memory.alloc(),
        }
    }
}

impl<M: SharedMemory> Fallback for LeaderFallback<M> {
    fn decide(&self, pid: usize, value: u64) -> u64 {
        assert!(pid < self.slots.len(), "pid {pid} out of range");
        self.slots[pid].write(value);
        if pid == 0 {
            let chosen = self
                .slots
                .iter()
                .find_map(|slot| slot.read())
                .unwrap_or(value);
            self.decision.write(chosen);
            chosen
        } else {
            loop {
                if let Some(v) = self.decision.read() {
                    return v;
                }
                std::hint::spin_loop();
            }
        }
    }

    fn publish(&self, pid: usize, value: u64) {
        if pid == 0 {
            self.decision.write(value);
        }
    }

    fn reset(&mut self) {
        let next = self.decision.generation() + 1;
        for slot in &mut self.slots {
            slot.retire_to(next);
        }
        self.decision.retire_to(next);
    }

    fn name(&self) -> &'static str {
        "leader_scan"
    }
}

/// Theorem 5's bounded consensus object:
/// `R₋₁; R₀; (C; R)^f; K` over any [`SharedMemory`].
///
/// Unlike [`Consensus`], [`decide`](BoundedConsensus::decide) takes the
/// caller's process id (the fallback `K` needs identities) and is
/// guaranteed to terminate on every schedule — including under
/// [`FaultyMemory`](crate::FaultyMemory) plans that destroy conciliator
/// progress — at the price of reaching the slow deterministic fallback
/// with probability at most `(1 − δ)^f`.
///
/// One-shot semantics: each process calls `decide` at most once, with a
/// distinct `pid` in `0..n`. The fallback's registers are allocated
/// eagerly at construction (before any lazy chain stage), keeping
/// register allocation order deterministic across substrates.
pub struct BoundedConsensus<M: SharedMemory = AtomicMemory, F: Fallback = LeaderFallback<M>> {
    chain: Consensus<M>,
    fallback: F,
    rounds: u32,
}

impl BoundedConsensus {
    /// Binary bounded consensus for up to `n` threads with the default
    /// bound and leader fallback.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn binary(n: usize) -> BoundedConsensus {
        BoundedConsensus::binary_in(AtomicMemory, n)
    }
}

impl<M: SharedMemory> BoundedConsensus<M> {
    /// Binary bounded consensus whose registers live in `memory`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn binary_in(memory: M, n: usize) -> BoundedConsensus<M> {
        let fallback = LeaderFallback::new_in(&memory, n);
        BoundedConsensus::with_fallback_in(
            memory,
            ConsensusOptions {
                n,
                scheme: Arc::new(mc_quorums::BinaryScheme::new()),
                schedule: mc_core::conciliator::WriteSchedule::impatient(),
                fast_path: true,
                max_conciliator_rounds: None,
                conciliator: ConciliatorChoice::Impatient,
            },
            fallback,
        )
    }

    /// `m`-valued bounded consensus whose registers live in `memory`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `m < 2`.
    pub fn multivalued_in(memory: M, n: usize, m: u64) -> BoundedConsensus<M> {
        let fallback = LeaderFallback::new_in(&memory, n);
        BoundedConsensus::with_fallback_in(memory, Consensus::multivalued_options(n, m), fallback)
    }

    /// Bounded consensus with explicit options whose registers live in
    /// `memory`, with the leader fallback.
    ///
    /// # Panics
    ///
    /// Panics if `options.n == 0`.
    pub fn with_options_in(memory: M, options: ConsensusOptions) -> BoundedConsensus<M> {
        let fallback = LeaderFallback::new_in(&memory, options.n);
        BoundedConsensus::with_fallback_in(memory, options, fallback)
    }

    /// Bounded consensus over `memory` with telemetry events going to
    /// `recorder` and the leader fallback.
    ///
    /// # Panics
    ///
    /// Panics if `options.n == 0`.
    pub fn with_recorder_in(
        memory: M,
        options: ConsensusOptions,
        recorder: Arc<dyn Recorder>,
    ) -> BoundedConsensus<M> {
        let fallback = LeaderFallback::new_in(&memory, options.n);
        let telemetry = Arc::new(RuntimeTelemetry::new(options.n, recorder));
        BoundedConsensus {
            rounds: options
                .max_conciliator_rounds
                .unwrap_or(DEFAULT_MAX_CONCILIATOR_ROUNDS),
            chain: Consensus::with_telemetry_in(memory, Arc::new(options), telemetry),
            fallback,
        }
    }
}

impl<M: SharedMemory, F: Fallback> BoundedConsensus<M, F> {
    /// Bounded consensus with an explicit fallback protocol `K`.
    ///
    /// The bound `f` is `options.max_conciliator_rounds`, defaulting to
    /// [`DEFAULT_MAX_CONCILIATOR_ROUNDS`].
    ///
    /// # Panics
    ///
    /// Panics if `options.n == 0`.
    pub fn with_fallback_in(
        memory: M,
        options: ConsensusOptions,
        fallback: F,
    ) -> BoundedConsensus<M, F> {
        BoundedConsensus::from_parts(
            Consensus::with_shared_options_in(memory, Arc::new(options)),
            fallback,
        )
    }

    /// Composes an already-built chain with its fallback `K`; the bound `f`
    /// comes from the chain's options. This is the seam
    /// [`ConsensusBuilder::build_bounded_with`](crate::ConsensusBuilder::build_bounded_with)
    /// uses after wiring telemetry into the chain.
    pub(crate) fn from_parts(chain: Consensus<M>, fallback: F) -> BoundedConsensus<M, F> {
        BoundedConsensus {
            rounds: chain
                .options()
                .max_conciliator_rounds
                .unwrap_or(DEFAULT_MAX_CONCILIATOR_ROUNDS),
            chain,
            fallback,
        }
    }

    /// Live metrics for this object, including `fallbacks_taken`.
    pub fn telemetry(&self) -> &RuntimeTelemetry {
        self.chain.telemetry()
    }

    /// Shared handle to this object's telemetry, for wiring observers —
    /// e.g. [`FaultyMemory::observed_by`](crate::FaultyMemory::observed_by).
    pub fn telemetry_handle(&self) -> &Arc<RuntimeTelemetry> {
        self.chain.telemetry_handle()
    }

    /// Number of distinct proposal values supported.
    pub fn capacity(&self) -> u64 {
        self.chain.capacity()
    }

    /// The conciliator bound `f`.
    pub fn max_conciliator_rounds(&self) -> u32 {
        self.rounds
    }

    /// The fallback protocol's name.
    pub fn fallback_name(&self) -> &'static str {
        self.fallback.name()
    }

    /// Recycles this one-shot object for a fresh instance: the truncated
    /// chain and the fallback both retire their registers into the next
    /// generation (see [`Consensus::reset`]).
    ///
    /// # Panics
    ///
    /// Panics if any `decide` call is still in flight.
    pub fn reset(&mut self) {
        self.chain.reset();
        self.fallback.reset();
    }

    /// Proposes `value` as process `pid` and returns the agreed decision.
    ///
    /// Runs the truncated chain; if all `f` conciliator stages fail to
    /// ratify, takes the deterministic fallback `K`. Always terminates
    /// (given every process eventually runs — see [`LeaderFallback`] for
    /// its leader dependence).
    ///
    /// One-shot semantics: each process calls this at most once, with a
    /// distinct `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `value ≥ capacity()` or `pid ≥ n`.
    pub fn decide(&self, pid: usize, value: u64, rng: &mut dyn Rng) -> u64 {
        assert!(
            value < self.capacity(),
            "value {value} exceeds consensus capacity {}",
            self.capacity()
        );
        let n = self.chain.options().n;
        assert!(pid < n, "pid {pid} out of range for n = {n}");
        let telemetry = Arc::clone(self.chain.telemetry_handle());
        telemetry.on_decide_start();
        let start = Instant::now();
        let fast_prefix = if self.chain.options().fast_path { 2 } else { 0 };
        let total_stages = fast_prefix + 2 * self.rounds as usize;
        let mut current = value;
        let mut conciliator_stages = 0u64;
        for ix in 0..total_stages {
            match &*self.chain.stage(ix) {
                Stage::Ratifier(r) => {
                    telemetry.on_stage_entered(ix as u64, StageKind::Ratifier);
                    let d = r.ratify(current);
                    telemetry.on_ratifier_verdict(ix as u64, d.is_decided(), d.value());
                    if d.is_decided() {
                        // Let late fallback entrants learn the decision.
                        self.fallback.publish(pid, d.value());
                        let latency_ns =
                            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        telemetry.on_conciliator_stages(conciliator_stages);
                        telemetry.on_decided(d.value(), ix as u64, ix < fast_prefix, latency_ns);
                        return d.value();
                    }
                    current = d.value();
                }
                Stage::Conciliator(c) => {
                    telemetry.on_stage_entered(ix as u64, StageKind::Conciliator);
                    conciliator_stages += 1;
                    current = c.propose(pid, current, rng);
                }
            }
        }
        telemetry.on_fallback_taken(u64::from(self.rounds));
        let decided = self.fallback.decide(pid, current);
        let latency_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        telemetry.on_conciliator_stages(conciliator_stages);
        telemetry.on_decided(decided, total_stages as u64, false, latency_ns);
        decided
    }
}

impl<M: SharedMemory, F: Fallback> std::fmt::Debug for BoundedConsensus<M, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedConsensus")
            .field("rounds", &self.rounds)
            .field("fallback", &self.fallback.name())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn run_bounded(consensus: Arc<BoundedConsensus>, proposals: Vec<u64>, seed: u64) -> Vec<u64> {
        let handles: Vec<_> = proposals
            .into_iter()
            .enumerate()
            .map(|(pid, v)| {
                let c = Arc::clone(&consensus);
                std::thread::spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(seed * 1000 + pid as u64);
                    c.decide(pid, v, &mut rng)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn binary_agreement_and_validity() {
        for trial in 0..100 {
            let c = Arc::new(BoundedConsensus::binary(6));
            let proposals: Vec<u64> = (0..6).map(|t| (t as u64 + trial) % 2).collect();
            let results = run_bounded(c, proposals.clone(), trial);
            let first = results[0];
            assert!(
                results.iter().all(|&r| r == first),
                "trial {trial}: {results:?}"
            );
            assert!(proposals.contains(&first), "trial {trial}: invalid {first}");
        }
    }

    #[test]
    fn zero_round_bound_always_falls_back_and_still_agrees() {
        // f = 0, no fast path: every call goes straight to K.
        for trial in 0..50 {
            let options = ConsensusOptions {
                n: 4,
                scheme: Arc::new(mc_quorums::BinaryScheme::new()),
                schedule: mc_core::conciliator::WriteSchedule::impatient(),
                fast_path: false,
                max_conciliator_rounds: Some(0),
                conciliator: ConciliatorChoice::Impatient,
            };
            let c = Arc::new(BoundedConsensus::with_options_in(AtomicMemory, options));
            let proposals: Vec<u64> = (0..4).map(|t| (t + trial) % 2).collect();
            let telemetry_check = Arc::clone(&c);
            let results = run_bounded(c, proposals.clone(), trial);
            let first = results[0];
            assert!(
                results.iter().all(|&r| r == first),
                "trial {trial}: {results:?}"
            );
            assert!(proposals.contains(&first));
            assert_eq!(telemetry_check.telemetry().fallbacks_taken(), 4);
        }
    }

    #[test]
    fn single_process_decides_its_own_value() {
        let c = BoundedConsensus::binary(1);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(c.decide(0, 1, &mut rng), 1);
        assert_eq!(c.telemetry().fallbacks_taken(), 0);
    }

    #[test]
    fn leader_fallback_alone_is_a_consensus_protocol() {
        for trial in 0..50u64 {
            let fb = Arc::new(LeaderFallback::new_in(&AtomicMemory, 5));
            let handles: Vec<_> = (0..5usize)
                .map(|pid| {
                    let fb = Arc::clone(&fb);
                    let v = (pid as u64 + trial) % 3;
                    std::thread::spawn(move || fb.decide(pid, v))
                })
                .collect();
            let results: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            let first = results[0];
            assert!(results.iter().all(|&r| r == first), "{results:?}");
            assert!((0..3).contains(&first));
        }
    }

    #[test]
    fn publish_reaches_late_fallback_entrants() {
        let fb = LeaderFallback::new_in(&AtomicMemory, 2);
        // pid 0 decided 1 in-chain and published; pid 1 enters the
        // fallback afterwards and must adopt it.
        fb.publish(0, 1);
        assert_eq!(fb.decide(1, 0), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_pid_rejected() {
        let c = BoundedConsensus::binary(2);
        let mut rng = SmallRng::seed_from_u64(0);
        c.decide(2, 0, &mut rng);
    }

    #[test]
    fn reset_bounded_clears_chain_and_fallback() {
        // f = 0, no fast path: every call is served by the fallback, so a
        // stale published decision would be adopted if reset leaked it.
        let options = ConsensusOptions {
            n: 1,
            scheme: Arc::new(mc_quorums::BinaryScheme::new()),
            schedule: mc_core::conciliator::WriteSchedule::impatient(),
            fast_path: false,
            max_conciliator_rounds: Some(0),
            conciliator: ConciliatorChoice::Impatient,
        };
        let mut c = BoundedConsensus::with_options_in(AtomicMemory, options);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(c.decide(0, 1, &mut rng), 1);
        c.reset();
        assert_eq!(c.decide(0, 0, &mut rng), 0);
    }
}
