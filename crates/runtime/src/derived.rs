//! Objects derived from consensus: leader election and test-and-set.
//!
//! Consensus is universal (Herlihy): once you can agree, you can build the
//! classic coordination objects on top. These are the applications the
//! consensus literature motivates, provided here as ready-made wrappers so
//! the library is useful without assembling protocols by hand.

use std::sync::Arc;

use rand::Rng;

use crate::consensus::Consensus;
use crate::register::{AtomicMemory, SharedMemory};

/// One-shot leader election among up to `n` threads: every participant
/// learns the same winner id, and the winner is some participant.
///
/// Built directly on [`Consensus`] over candidate ids.
///
/// # Example
///
/// ```
/// use mc_runtime::Election;
/// use rand::{rngs::SmallRng, SeedableRng};
/// use std::sync::Arc;
///
/// let election = Arc::new(Election::new(3));
/// let handles: Vec<_> = (0..3u64)
///     .map(|me| {
///         let e = Arc::clone(&election);
///         std::thread::spawn(move || {
///             e.elect(me, &mut SmallRng::seed_from_u64(me))
///         })
///     })
///     .collect();
/// let winners: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
/// assert!(winners.windows(2).all(|w| w[0] == w[1]));
/// assert!(winners[0] < 3);
/// ```
#[derive(Debug)]
pub struct Election<M: SharedMemory = AtomicMemory> {
    consensus: Consensus<M>,
}

impl Election {
    /// Creates an election among up to `n` participants with ids `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Election {
        Election::new_in(AtomicMemory, n)
    }
}

impl<M: SharedMemory> Election<M> {
    /// Creates an election whose registers live in `memory`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new_in(memory: M, n: usize) -> Election<M> {
        // Candidate ids are 0..n; consensus capacity must cover them. The
        // degenerate n = 1 still needs a 2-value object.
        Election {
            consensus: Consensus::with_shared_options_in(
                memory,
                Arc::new(Consensus::multivalued_options(n, (n as u64).max(2))),
            ),
        }
    }

    /// Participates with candidate id `me` and returns the elected leader.
    ///
    /// One-shot semantics: each thread calls this at most once.
    ///
    /// # Panics
    ///
    /// Panics if `me` is not a valid participant id.
    pub fn elect(&self, me: u64, rng: &mut dyn Rng) -> u64 {
        self.consensus.decide(me, rng)
    }
}

/// One-shot test-and-set among up to `n` threads: exactly one caller wins.
///
/// Classic linearizable-object semantics restricted to one shot: the first
/// (in the agreed order) caller's [`try_set`](TestAndSet::try_set) returns
/// `true`, every other caller's returns `false`, and all callers agree who
/// won (observable via [`winner`](TestAndSet::winner) after participation).
///
/// Internally an [`Election`] on caller ids.
#[derive(Debug)]
pub struct TestAndSet<M: SharedMemory = AtomicMemory> {
    election: Election<M>,
}

impl TestAndSet {
    /// Creates a test-and-set for up to `n` threads with ids `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> TestAndSet {
        TestAndSet::new_in(AtomicMemory, n)
    }
}

impl<M: SharedMemory> TestAndSet<M> {
    /// Creates a test-and-set whose registers live in `memory`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new_in(memory: M, n: usize) -> TestAndSet<M> {
        TestAndSet {
            election: Election::new_in(memory, n),
        }
    }

    /// Attempts to win. Returns `true` for exactly one participant.
    ///
    /// One-shot semantics: each thread calls this at most once, with its
    /// own distinct id.
    pub fn try_set(&self, me: u64, rng: &mut dyn Rng) -> bool {
        self.election.elect(me, rng) == me
    }

    /// The id that won, as agreed by this participant.
    ///
    /// Equivalent to `elect`; provided so losers can learn the winner.
    pub fn winner(&self, me: u64, rng: &mut dyn Rng) -> u64 {
        self.election.elect(me, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    #[test]
    fn election_produces_one_valid_leader() {
        for trial in 0..50 {
            let n = 6;
            let election = Arc::new(Election::new(n));
            let handles: Vec<_> = (0..n as u64)
                .map(|me| {
                    let e = Arc::clone(&election);
                    std::thread::spawn(move || {
                        let mut rng = SmallRng::seed_from_u64(trial * 100 + me);
                        e.elect(me, &mut rng)
                    })
                })
                .collect();
            let winners: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            let leader = winners[0];
            assert!(
                winners.iter().all(|&w| w == leader),
                "trial {trial}: {winners:?}"
            );
            assert!(leader < n as u64);
        }
    }

    #[test]
    fn test_and_set_has_exactly_one_winner() {
        for trial in 0..50 {
            let n = 5;
            let tas = Arc::new(TestAndSet::new(n));
            let handles: Vec<_> = (0..n as u64)
                .map(|me| {
                    let t = Arc::clone(&tas);
                    std::thread::spawn(move || {
                        let mut rng = SmallRng::seed_from_u64(trial * 77 + me);
                        t.try_set(me, &mut rng)
                    })
                })
                .collect();
            let wins: Vec<bool> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            assert_eq!(
                wins.iter().filter(|&&w| w).count(),
                1,
                "trial {trial}: {wins:?}"
            );
        }
    }

    #[test]
    fn solo_caller_always_wins() {
        let tas = TestAndSet::new(1);
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(tas.try_set(0, &mut rng));
    }

    #[test]
    fn losers_learn_the_winner() {
        // Sequential: first caller decides itself; the second, asking later,
        // must observe the same winner.
        let election = Election::new(2);
        let mut rng = SmallRng::seed_from_u64(3);
        let first = election.elect(0, &mut rng);
        let second = election.elect(1, &mut rng);
        assert_eq!(first, second);
        assert_eq!(first, 0);
    }
}
