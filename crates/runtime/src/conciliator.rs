//! The impatient first-mover conciliator on real atomics.

use std::sync::Arc;

use mc_core::conciliator::WriteSchedule;
use rand::Rng;

use crate::register::{AtomicMemory, SharedMemory, SharedRegister};
use crate::telemetry::RuntimeTelemetry;

/// Procedure ImpatientFirstMoverConciliator (§5.2) as a thread-safe object:
/// one shared register, raced by threads with doubling write probabilities.
///
/// Each call to [`propose`](ImpatientConciliator::propose) costs at most
/// `2⌈lg n⌉ + 4` register operations and the result satisfies validity and
/// probabilistic agreement (Theorem 7's `δ ≈ 0.055` lower bound; in practice
/// far higher because the OS scheduler is no adversary).
///
/// Each round issues exactly two register operations — a read and one
/// [`prob_write`](SharedRegister::prob_write) — mirroring the model-side
/// `FirstMoverConciliator` operation for operation, so runs on an
/// instrumented [`SharedMemory`] substrate are directly comparable to
/// simulator executions.
pub struct ImpatientConciliator<M: SharedMemory = AtomicMemory> {
    reg: M::Reg,
    n: usize,
    schedule: WriteSchedule,
    telemetry: Option<Arc<RuntimeTelemetry>>,
}

impl ImpatientConciliator {
    /// Creates a conciliator for up to `n` threads with the paper's `2^k/n`
    /// schedule.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> ImpatientConciliator {
        ImpatientConciliator::with_schedule(n, WriteSchedule::impatient())
    }

    /// Creates a conciliator with an explicit write-probability schedule.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_schedule(n: usize, schedule: WriteSchedule) -> ImpatientConciliator {
        ImpatientConciliator::with_schedule_in(&AtomicMemory, n, schedule)
    }
}

impl<M: SharedMemory> ImpatientConciliator<M> {
    /// Creates a conciliator whose register lives in `memory`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_schedule_in(
        memory: &M,
        n: usize,
        schedule: WriteSchedule,
    ) -> ImpatientConciliator<M> {
        assert!(n > 0, "need at least one thread");
        ImpatientConciliator {
            reg: memory.alloc(),
            n,
            schedule,
            telemetry: None,
        }
    }

    /// Reports rounds and probabilistic writes to `telemetry`.
    #[must_use]
    pub fn observed_by(mut self, telemetry: Arc<RuntimeTelemetry>) -> ImpatientConciliator<M> {
        self.telemetry = Some(telemetry);
        self
    }

    /// Recycles this one-shot object for a fresh instance: the register is
    /// retired into the next generation, after which it is indistinguishable
    /// from a fresh allocation (a stale-generation read is an initial read).
    ///
    /// Exclusive access (`&mut`) guarantees no `propose` call is in flight.
    pub fn reset(&mut self) {
        let next = self.reg.generation() + 1;
        self.reg.retire_to(next);
    }

    /// Runs the conciliator: returns a value that equals every other
    /// caller's return with at least constant probability, and always equals
    /// some caller's proposal.
    ///
    /// One-shot semantics: each thread calls this at most once per object.
    pub fn propose(&self, value: u64, rng: &mut dyn Rng) -> u64 {
        let mut k = 0u32;
        loop {
            if let Some(winner) = self.reg.read() {
                if let Some(t) = &self.telemetry {
                    t.on_propose_done(u64::from(k));
                }
                return winner;
            }
            let p = self.schedule.probability(k, self.n);
            if let Some(t) = &self.telemetry {
                t.on_conciliator_round(u64::from(k), p.get());
            }
            let landed = self.reg.prob_write(value, p, rng);
            if let Some(t) = &self.telemetry {
                t.on_prob_write(landed, p.get());
            }
            k += 1;
        }
    }
}

impl<M: SharedMemory> std::fmt::Debug for ImpatientConciliator<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ImpatientConciliator")
            .field("n", &self.n)
            .field("schedule", &self.schedule)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    #[test]
    fn single_thread_keeps_its_value() {
        let c = ImpatientConciliator::new(1);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(c.propose(42, &mut rng), 42);
    }

    #[test]
    fn result_is_some_proposal() {
        for trial in 0..50 {
            let c = Arc::new(ImpatientConciliator::new(4));
            let handles: Vec<_> = (0..4u64)
                .map(|t| {
                    let c = Arc::clone(&c);
                    std::thread::spawn(move || {
                        let mut rng = SmallRng::seed_from_u64(trial * 10 + t);
                        c.propose(100 + t, &mut rng)
                    })
                })
                .collect();
            for h in handles {
                let v = h.join().unwrap();
                assert!((100..104).contains(&v), "invalid value {v}");
            }
        }
    }

    #[test]
    fn agreement_rate_is_high_under_os_scheduling() {
        let mut agreements = 0;
        let trials = 100;
        for trial in 0..trials {
            let c = Arc::new(ImpatientConciliator::new(8));
            let handles: Vec<_> = (0..8u64)
                .map(|t| {
                    let c = Arc::clone(&c);
                    std::thread::spawn(move || {
                        let mut rng = SmallRng::seed_from_u64(trial * 100 + t);
                        c.propose(t % 2, &mut rng)
                    })
                })
                .collect();
            let results: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            if results.windows(2).all(|w| w[0] == w[1]) {
                agreements += 1;
            }
        }
        // Theorem 7 guarantees ≥ 5.5% against the worst adversary; an OS
        // scheduler should be nowhere near adversarial.
        assert!(
            agreements * 10 >= trials,
            "{agreements}/{trials} agreements"
        );
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        ImpatientConciliator::new(0);
    }

    #[test]
    fn reset_conciliator_behaves_like_fresh() {
        let mut c = ImpatientConciliator::new(2);
        let mut rng = SmallRng::seed_from_u64(3);
        let first = c.propose(10, &mut rng);
        assert_eq!(first, 10);
        c.reset();
        // The recycled object must not leak the previous instance's value:
        // a new caller with a different proposal wins the empty register.
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(c.propose(20, &mut rng), 20);
    }
}
