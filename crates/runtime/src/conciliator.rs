//! Runtime conciliators: the [`Conciliator`] trait, the impatient
//! first-mover implementation on real atomics, and the portfolio
//! [`ConciliatorChoice`] consumed by the consensus stack.

use std::sync::Arc;

use mc_core::conciliator::WriteSchedule;
use rand::Rng;

use crate::coin::CoinKind;
use crate::register::{AtomicMemory, SharedMemory, SharedRegister};
use crate::telemetry::RuntimeTelemetry;

/// A conciliator as a thread-safe runtime object: a weak consensus object
/// that *produces* agreement with probability at least `δ` while always
/// returning some caller's proposal (validity) and never contradicting a
/// coherent configuration (§3).
///
/// The trait is object-safe so the consensus chain can hold any portfolio
/// member behind `Box<dyn Conciliator<M>>` without becoming generic itself.
pub trait Conciliator<M: SharedMemory>: Send + Sync {
    /// Runs the conciliator as thread `pid`: returns a value that equals
    /// every other caller's return with probability at least `δ`, and
    /// always equals some caller's proposal.
    ///
    /// One-shot semantics: each thread calls this at most once per object
    /// instance. Implementations with per-thread shared state (e.g. the
    /// voting coin's tally registers) require `pid` to be unique per
    /// calling thread and below the configured thread count;
    /// implementations without it ignore `pid`.
    fn propose(&self, pid: usize, value: u64, rng: &mut dyn Rng) -> u64;

    /// Recycles this one-shot object for a fresh instance, after which it
    /// is indistinguishable from a fresh allocation.
    ///
    /// Exclusive access (`&mut`) guarantees no `propose` call is in flight.
    fn reset(&mut self);

    /// Number of shared registers this object touches — the accounting the
    /// Theorem 6 cost bound (+2 registers over the wrapped coin) is checked
    /// against.
    fn register_count(&self) -> u64;

    /// Stable display name for telemetry and diagnostics.
    fn name(&self) -> &'static str;
}

/// Which conciliator implementation a consensus chain instantiates for its
/// `C₁; C₂; …` stages.
///
/// The default is [`Impatient`](ConciliatorChoice::Impatient) — the paper's
/// headline probabilistic-write conciliator (Theorem 7). Under schedulers
/// that exploit impatience (degrading its effective `δ̂`), the Theorem 6
/// coin wrapper over an adaptive-adversary-robust coin is the better trade;
/// [`Adaptive`](ConciliatorChoice::Adaptive) makes that call per instance
/// from the telemetry window.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum ConciliatorChoice {
    /// The impatient first-mover conciliator (§5.2, the default).
    #[default]
    Impatient,
    /// The Theorem 6 [`CoinConciliator`](crate::CoinConciliator) over the
    /// given coin. Binary values only.
    Coin(CoinKind),
    /// Start impatient; per instance, fall back to the coin conciliator
    /// when the telemetry window's δ̂ estimate degrades past the threshold.
    /// Binary values only (the coin path is binary).
    Adaptive(AdaptiveOptions),
}

/// Tuning for [`ConciliatorChoice::Adaptive`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdaptiveOptions {
    /// How many recent decides the δ̂ estimate looks back over.
    pub window: usize,
    /// Minimum number of sampled decides before switching is even
    /// considered — an empty or thin window never triggers a switch.
    pub min_samples: usize,
    /// Switch to the coin when the window estimate δ̂ falls below this.
    ///
    /// Theorem 7 guarantees δ ≈ 0.055 for the impatient conciliator against
    /// the worst adversary; benign schedulers measure far higher, so a
    /// threshold above the theoretical floor detects a hostile regime while
    /// a healthy one stays impatient.
    pub delta_threshold: f64,
    /// The coin to fall back to. The default is the voting coin, the
    /// portfolio member built for exactly the adversarial regime that
    /// degrades δ̂.
    pub coin: CoinKind,
}

impl Default for AdaptiveOptions {
    fn default() -> Self {
        AdaptiveOptions {
            window: 32,
            min_samples: 8,
            delta_threshold: 0.2,
            coin: CoinKind::voting(),
        }
    }
}

/// Procedure ImpatientFirstMoverConciliator (§5.2) as a thread-safe object:
/// one shared register, raced by threads with doubling write probabilities.
///
/// Each call to [`propose`](ImpatientConciliator::propose) costs at most
/// `2⌈lg n⌉ + 4` register operations and the result satisfies validity and
/// probabilistic agreement (Theorem 7's `δ ≈ 0.055` lower bound; in practice
/// far higher because the OS scheduler is no adversary).
///
/// Each round issues exactly two register operations — a read and one
/// [`prob_write`](SharedRegister::prob_write) — mirroring the model-side
/// `FirstMoverConciliator` operation for operation, so runs on an
/// instrumented [`SharedMemory`] substrate are directly comparable to
/// simulator executions.
pub struct ImpatientConciliator<M: SharedMemory = AtomicMemory> {
    reg: M::Reg,
    n: usize,
    schedule: WriteSchedule,
    telemetry: Option<Arc<RuntimeTelemetry>>,
}

impl ImpatientConciliator {
    /// Creates a conciliator for up to `n` threads with the paper's `2^k/n`
    /// schedule.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> ImpatientConciliator {
        ImpatientConciliator::with_schedule(n, WriteSchedule::impatient())
    }

    /// Creates a conciliator with an explicit write-probability schedule.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_schedule(n: usize, schedule: WriteSchedule) -> ImpatientConciliator {
        ImpatientConciliator::with_schedule_in(&AtomicMemory, n, schedule)
    }
}

impl<M: SharedMemory> ImpatientConciliator<M> {
    /// Creates a conciliator whose register lives in `memory`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_schedule_in(
        memory: &M,
        n: usize,
        schedule: WriteSchedule,
    ) -> ImpatientConciliator<M> {
        assert!(n > 0, "need at least one thread");
        ImpatientConciliator {
            reg: memory.alloc(),
            n,
            schedule,
            telemetry: None,
        }
    }

    /// Reports rounds and probabilistic writes to `telemetry`.
    #[must_use]
    pub fn observed_by(mut self, telemetry: Arc<RuntimeTelemetry>) -> ImpatientConciliator<M> {
        self.telemetry = Some(telemetry);
        self
    }

    /// Recycles this one-shot object for a fresh instance: the register is
    /// retired into the next generation, after which it is indistinguishable
    /// from a fresh allocation (a stale-generation read is an initial read).
    ///
    /// Exclusive access (`&mut`) guarantees no `propose` call is in flight.
    pub fn reset(&mut self) {
        let next = self.reg.generation() + 1;
        self.reg.retire_to(next);
    }

    /// Runs the conciliator: returns a value that equals every other
    /// caller's return with at least constant probability, and always equals
    /// some caller's proposal.
    ///
    /// One-shot semantics: each thread calls this at most once per object.
    pub fn propose(&self, value: u64, rng: &mut dyn Rng) -> u64 {
        let mut k = 0u32;
        loop {
            if let Some(winner) = self.reg.read() {
                if let Some(t) = &self.telemetry {
                    t.on_propose_done(u64::from(k));
                }
                return winner;
            }
            let p = self.schedule.probability(k, self.n);
            if let Some(t) = &self.telemetry {
                t.on_conciliator_round(u64::from(k), p.get());
            }
            let landed = self.reg.prob_write(value, p, rng);
            if let Some(t) = &self.telemetry {
                t.on_prob_write(landed, p.get());
            }
            k += 1;
        }
    }
}

impl<M: SharedMemory> Conciliator<M> for ImpatientConciliator<M> {
    /// The impatient conciliator has no per-thread shared state; `pid` is
    /// ignored.
    fn propose(&self, _pid: usize, value: u64, rng: &mut dyn Rng) -> u64 {
        ImpatientConciliator::propose(self, value, rng)
    }

    fn reset(&mut self) {
        ImpatientConciliator::reset(self);
    }

    fn register_count(&self) -> u64 {
        1
    }

    fn name(&self) -> &'static str {
        "impatient"
    }
}

impl<M: SharedMemory> std::fmt::Debug for ImpatientConciliator<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ImpatientConciliator")
            .field("n", &self.n)
            .field("schedule", &self.schedule)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    #[test]
    fn single_thread_keeps_its_value() {
        let c = ImpatientConciliator::new(1);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(c.propose(42, &mut rng), 42);
    }

    #[test]
    fn result_is_some_proposal() {
        for trial in 0..50 {
            let c = Arc::new(ImpatientConciliator::new(4));
            let handles: Vec<_> = (0..4u64)
                .map(|t| {
                    let c = Arc::clone(&c);
                    std::thread::spawn(move || {
                        let mut rng = SmallRng::seed_from_u64(trial * 10 + t);
                        c.propose(100 + t, &mut rng)
                    })
                })
                .collect();
            for h in handles {
                let v = h.join().unwrap();
                assert!((100..104).contains(&v), "invalid value {v}");
            }
        }
    }

    #[test]
    fn agreement_rate_is_high_under_os_scheduling() {
        let mut agreements = 0;
        let trials = 100;
        for trial in 0..trials {
            let c = Arc::new(ImpatientConciliator::new(8));
            let handles: Vec<_> = (0..8u64)
                .map(|t| {
                    let c = Arc::clone(&c);
                    std::thread::spawn(move || {
                        let mut rng = SmallRng::seed_from_u64(trial * 100 + t);
                        c.propose(t % 2, &mut rng)
                    })
                })
                .collect();
            let results: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            if results.windows(2).all(|w| w[0] == w[1]) {
                agreements += 1;
            }
        }
        // Theorem 7 guarantees ≥ 5.5% against the worst adversary; an OS
        // scheduler should be nowhere near adversarial.
        assert!(
            agreements * 10 >= trials,
            "{agreements}/{trials} agreements"
        );
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        ImpatientConciliator::new(0);
    }

    #[test]
    fn reset_conciliator_behaves_like_fresh() {
        let mut c = ImpatientConciliator::new(2);
        let mut rng = SmallRng::seed_from_u64(3);
        let first = c.propose(10, &mut rng);
        assert_eq!(first, 10);
        c.reset();
        // The recycled object must not leak the previous instance's value:
        // a new caller with a different proposal wins the empty register.
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(c.propose(20, &mut rng), 20);
    }
}
