//! Typed front-end: consensus over ordinary Rust value types.

use std::marker::PhantomData;
use std::sync::Arc;

use mc_core::conciliator::WriteSchedule;
use mc_quorums::BitVectorScheme;
use rand::Rng;

use crate::consensus::{Consensus, ConsensusOptions};
use crate::register::{AtomicMemory, SharedMemory};

/// A value type usable with [`TypedConsensus`]: a fixed-width bijection with
/// `BITS`-bit codes.
///
/// Implementations are provided for `bool`, `u8`, `u16`, and `u32`. Custom
/// small enums implement it by mapping variants onto `0..2^BITS`:
///
/// ```
/// use mc_runtime::ValueCode;
///
/// #[derive(Debug, Clone, Copy, PartialEq)]
/// enum Command { Get, Put, Delete }
///
/// impl ValueCode for Command {
///     const BITS: u32 = 2;
///     fn to_code(&self) -> u64 {
///         match self {
///             Command::Get => 0,
///             Command::Put => 1,
///             Command::Delete => 2,
///         }
///     }
///     fn from_code(code: u64) -> Option<Command> {
///         [Command::Get, Command::Put, Command::Delete].get(code as usize).copied()
///     }
/// }
/// ```
pub trait ValueCode: Sized {
    /// Code width in bits; the consensus object supports `2^BITS` codes.
    const BITS: u32;

    /// Encodes the value as a code in `0..2^BITS`.
    fn to_code(&self) -> u64;

    /// Decodes a code back into a value; `None` for codes outside the
    /// type's range (possible when the range is not a power of two).
    fn from_code(code: u64) -> Option<Self>;
}

impl ValueCode for bool {
    const BITS: u32 = 1;
    fn to_code(&self) -> u64 {
        u64::from(*self)
    }
    fn from_code(code: u64) -> Option<bool> {
        match code {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

macro_rules! impl_value_code_uint {
    ($($ty:ty => $bits:expr),*) => {
        $(
            impl ValueCode for $ty {
                const BITS: u32 = $bits;
                fn to_code(&self) -> u64 {
                    *self as u64
                }
                fn from_code(code: u64) -> Option<$ty> {
                    <$ty>::try_from(code).ok()
                }
            }
        )*
    };
}

impl_value_code_uint!(u8 => 8, u16 => 16, u32 => 32);

/// Consensus over a typed value domain: threads propose `T`s and agree on
/// one of them.
///
/// Internally a [`Consensus`] over `2^T::BITS` codes with bit-vector
/// quorums (`2·BITS + 1` registers per ratifier).
///
/// # Example
///
/// ```
/// use mc_runtime::TypedConsensus;
/// use rand::{rngs::SmallRng, SeedableRng};
/// use std::sync::Arc;
///
/// let c = Arc::new(TypedConsensus::<bool>::new(2));
/// let t = {
///     let c = Arc::clone(&c);
///     std::thread::spawn(move || {
///         c.decide(true, &mut SmallRng::seed_from_u64(1))
///     })
/// };
/// let a = c.decide(false, &mut SmallRng::seed_from_u64(2));
/// let b = t.join().unwrap();
/// assert_eq!(a, b);
/// ```
#[derive(Debug)]
pub struct TypedConsensus<T, M: SharedMemory = AtomicMemory> {
    inner: Consensus<M>,
    _marker: PhantomData<fn(T) -> T>,
}

impl<T: ValueCode> TypedConsensus<T> {
    /// Creates a typed consensus object for up to `n` threads.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> TypedConsensus<T> {
        TypedConsensus::new_in(AtomicMemory, n)
    }
}

impl<T: ValueCode, M: SharedMemory> TypedConsensus<T, M> {
    /// Creates a typed consensus object whose registers live in `memory`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new_in(memory: M, n: usize) -> TypedConsensus<T, M> {
        TypedConsensus {
            inner: Consensus::with_shared_options_in(
                memory,
                Arc::new(ConsensusOptions {
                    n,
                    scheme: Arc::new(BitVectorScheme::with_bits(T::BITS.clamp(1, 63))),
                    schedule: WriteSchedule::impatient(),
                    fast_path: true,
                    max_conciliator_rounds: None,
                    conciliator: crate::ConciliatorChoice::Impatient,
                }),
            ),
            _marker: PhantomData,
        }
    }

    /// Proposes `value` and returns the agreed value.
    ///
    /// One-shot semantics: each thread calls this at most once per object.
    pub fn decide(&self, value: T, rng: &mut dyn Rng) -> T {
        let code = self.inner.decide(value.to_code(), rng);
        T::from_code(code)
            .expect("agreed code decodes: validity guarantees it was some thread's proposal")
    }

    /// How many times this object has been recycled via
    /// [`reset`](TypedConsensus::reset). Fresh objects report 0.
    pub fn generation(&self) -> u64 {
        self.inner.generation()
    }

    /// Number of stages materialized so far (diagnostics).
    pub fn stages_used(&self) -> usize {
        self.inner.stages_used()
    }

    /// Recycles this one-shot object for a fresh instance (see
    /// [`Consensus::reset`]): stages keep their registers but retire them
    /// into the next generation, after which the object is
    /// indistinguishable from a freshly constructed one.
    ///
    /// # Panics
    ///
    /// Panics if any `decide` call is still in flight.
    pub fn reset(&mut self) {
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn value_code_roundtrips() {
        assert_eq!(bool::from_code(true.to_code()), Some(true));
        assert_eq!(u8::from_code(200u8.to_code()), Some(200));
        assert_eq!(u16::from_code(40_000u16.to_code()), Some(40_000));
        assert_eq!(
            u32::from_code(4_000_000_000u32.to_code()),
            Some(4_000_000_000)
        );
        assert_eq!(u8::from_code(256), None);
        assert_eq!(bool::from_code(2), None);
    }

    #[test]
    fn typed_consensus_over_u8() {
        for trial in 0..30 {
            let c = Arc::new(TypedConsensus::<u8>::new(5));
            let handles: Vec<_> = (0..5u64)
                .map(|t| {
                    let c = Arc::clone(&c);
                    std::thread::spawn(move || {
                        let mut rng = SmallRng::seed_from_u64(trial * 10 + t);
                        c.decide((t as u8) * 10, &mut rng)
                    })
                })
                .collect();
            let results: Vec<u8> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            assert!(results.windows(2).all(|w| w[0] == w[1]), "{results:?}");
            assert_eq!(results[0] % 10, 0);
            assert!(results[0] <= 40);
        }
    }

    #[test]
    fn recycled_typed_object_does_not_leak_the_previous_decision() {
        // Single participant: decide() deterministically returns the
        // proposal, so any stale register surviving reset would surface as
        // the old payload.
        let mut rng = SmallRng::seed_from_u64(0);
        let mut c = TypedConsensus::<u16>::new(1);
        assert_eq!(c.decide(0xBEEF, &mut rng), 0xBEEF);
        assert_eq!(c.generation(), 0);
        c.reset();
        assert_eq!(c.generation(), 1);
        assert_eq!(c.decide(0x0042, &mut rng), 0x0042);
        c.reset();
        assert_eq!(c.decide(0x7777, &mut rng), 0x7777);
        assert_eq!(c.generation(), 2);
    }

    #[test]
    fn recycled_typed_object_still_agrees_across_threads() {
        for trial in 0..10u64 {
            let mut c = TypedConsensus::<u16>::new(3);
            for epoch in 0..2u64 {
                let proposals: Vec<u16> =
                    (0..3u16).map(|t| 0x0100 * (t + 1) + trial as u16).collect();
                let results: Vec<u16> = std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..3usize)
                        .map(|t| {
                            let c = &c;
                            let proposal = proposals[t];
                            scope.spawn(move || {
                                let mut rng =
                                    SmallRng::seed_from_u64(trial * 100 + epoch * 10 + t as u64);
                                c.decide(proposal, &mut rng)
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                });
                assert!(
                    results.windows(2).all(|w| w[0] == w[1]),
                    "trial {trial} epoch {epoch}: {results:?}"
                );
                assert!(
                    proposals.contains(&results[0]),
                    "trial {trial} epoch {epoch}: validity"
                );
                c.reset();
            }
        }
    }

    #[test]
    fn typed_consensus_over_bool() {
        let c = Arc::new(TypedConsensus::<bool>::new(3));
        let handles: Vec<_> = (0..3u64)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(t);
                    c.decide(t % 2 == 0, &mut rng)
                })
            })
            .collect();
        let results: Vec<bool> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(results.windows(2).all(|w| w[0] == w[1]));
    }
}
