//! The one monotonic-clock helper behind every deadline in the runtime.
//!
//! Before this module, [`SubmitOptions::within`](crate::SubmitOptions::within)
//! and [`DecisionHandle::wait_timeout`](crate::DecisionHandle::wait_timeout)
//! each computed `Instant::now() + budget` independently. Two reads of the
//! clock microseconds apart are enough for a submission admitted under one
//! deadline to start a wait whose separately-derived deadline has already
//! passed — the admission says "in budget", the wait immediately answers
//! `DeadlineExceeded`. Routing both through [`now`] + [`deadline_within`]
//! makes every deadline in one submission derive from a single clock read
//! discipline, and centralizes the overflow handling (`now + Duration::MAX`
//! panics with a bare `+`; [`deadline_within`] saturates instead).
//!
//! The store layer's read leases reuse the same helpers, so lease expiry
//! and submission deadlines cannot drift against each other either.

use std::time::{Duration, Instant};

/// Reads the monotonic clock. The single `Instant::now()` call site for
/// deadline arithmetic: everything that compares against a deadline built
/// by [`deadline_within`] should measure "now" with this function.
#[inline]
pub fn now() -> Instant {
    Instant::now()
}

/// An absolute deadline `budget` from now, saturating instead of
/// panicking when the budget does not fit in an [`Instant`].
///
/// `Instant::now() + Duration::MAX` aborts with an overflow panic on every
/// platform; callers that mean "effectively forever" (tests, belt-and-
/// suspenders waits) should still get a usable deadline. On overflow the
/// budget is halved until the addition fits — the result is still
/// centuries out, which is the same thing as forever for a wait loop.
#[inline]
pub fn deadline_within(budget: Duration) -> Instant {
    deadline_from(now(), budget)
}

/// [`deadline_within`] against a caller-supplied clock reading, for call
/// sites that already read [`now`] and must not read it twice (the drift
/// this module exists to remove).
#[inline]
pub fn deadline_from(now: Instant, budget: Duration) -> Instant {
    let mut budget = budget;
    loop {
        if let Some(deadline) = now.checked_add(budget) {
            return deadline;
        }
        // Duration::ZERO always fits, so this terminates.
        budget /= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_is_budget_from_now() {
        let before = now();
        let deadline = deadline_within(Duration::from_secs(5));
        let after = now();
        assert!(deadline >= before + Duration::from_secs(5));
        assert!(deadline <= after + Duration::from_secs(5));
    }

    #[test]
    fn duration_max_saturates_instead_of_panicking() {
        let deadline = deadline_within(Duration::MAX);
        // Still far enough out that no real wait ever reaches it.
        assert!(deadline > now() + Duration::from_secs(60 * 60 * 24 * 365));
    }

    #[test]
    fn deadline_from_is_deterministic_in_its_clock() {
        let base = now();
        assert_eq!(
            deadline_from(base, Duration::from_millis(250)),
            base + Duration::from_millis(250)
        );
    }
}
