//! A sharded multi-instance consensus service over pooled, recyclable
//! objects.
//!
//! Every deciding object in the paper is one-shot (§2), and a sustained
//! workload — a stream of log slots, transactions, leases — needs a fresh
//! instance per decision. Allocating each one from scratch grows memory
//! without bound and hammers the allocator. [`ConsensusEngine`] turns the
//! generation-tagged recycle path ([`Consensus::reset`]) into a service:
//! instances are sharded by id across per-core shards, each shard keeps a
//! free-list of reset objects, and a bounded number of instances may be
//! live per shard at once (backpressure), so steady-state memory is flat
//! no matter how many decisions flow through.
//!
//! The engine reports pool hits/misses, retired instances, and the live
//! count through [`RuntimeTelemetry`], so the recycling behavior shows up
//! in the same snapshot/Prometheus/JSONL paths as every other runtime
//! metric.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use rand::Rng;

use crate::builder::EngineBuilder;
use crate::consensus::{Consensus, ConsensusOptions};
use crate::error::EngineError;
use crate::register::{AtomicMemory, SharedMemory};
use crate::telemetry::RuntimeTelemetry;

/// Tuning for a [`ConsensusEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOptions {
    /// Number of shards instances are hashed across. `0` means one per
    /// available core.
    pub shards: usize,
    /// Maximum instances live at once per shard; a `submit` that would
    /// activate one more blocks until an instance retires
    /// ([`try_submit`](ConsensusEngine::try_submit) returns
    /// [`EngineError::Saturated`] instead).
    pub max_live_per_shard: usize,
    /// How many `submit` calls each instance receives. When the last one
    /// returns, the instance is reset and pooled. `0` means
    /// `ConsensusOptions::n` (every participant submits). Must not exceed
    /// `ConsensusOptions::n` — an instance admits at most the `n`
    /// concurrent callers its quorum scheme was sized for.
    pub participants: usize,
}

impl Default for EngineOptions {
    fn default() -> EngineOptions {
        EngineOptions {
            shards: 0,
            max_live_per_shard: 64,
            participants: 0,
        }
    }
}

/// A live instance: the shared object plus how many of its participants
/// have not yet claimed their submit.
struct Entry<M: SharedMemory> {
    instance: Arc<Consensus<M>>,
    remaining: usize,
}

struct ShardState<M: SharedMemory> {
    live: HashMap<u64, Entry<M>>,
    free: Vec<Consensus<M>>,
}

struct Shard<M: SharedMemory> {
    state: Mutex<ShardState<M>>,
    cv: Condvar,
}

impl<M: SharedMemory> Shard<M> {
    fn lock(&self) -> MutexGuard<'_, ShardState<M>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A service front-end for a stream of consensus instances: `submit` a
/// proposal under any `instance_id` and get that instance's decision back,
/// with the underlying one-shot objects pooled and recycled behind the
/// scenes.
///
/// # Instance lifecycle
///
/// `instance_id → shard` by hash. The first `submit` for an id activates
/// an instance on its shard — from the shard's free-list when possible
/// (`pool_hits`), freshly built otherwise (`pool_misses`); all instances
/// share one validated [`ConsensusOptions`] by `Arc`, so activation never
/// re-validates the quorum scheme. Concurrent submits for the same id
/// join the same instance and therefore agree. When the configured number
/// of participants have all received their decision, the instance is
/// [`reset`](Consensus::reset) and parked for reuse
/// (`instances_retired`).
///
/// # Contract
///
/// Each instance id must receive **exactly**
/// [`EngineOptions::participants`] submits, and ids must not be reused
/// after completion — a reused id would silently activate a fresh
/// instance, which can decide differently. Under--submitted instances
/// stay live forever and eat into their shard's backpressure budget.
///
/// # Backpressure
///
/// At most [`EngineOptions::max_live_per_shard`] instances are live per
/// shard; `submit` blocks (and [`try_submit`](ConsensusEngine::try_submit)
/// refuses) activations past that, bounding memory at
/// `shards × max_live_per_shard` instances plus the pooled free-lists —
/// flat no matter how many decisions stream through.
pub struct ConsensusEngine<M: SharedMemory = AtomicMemory> {
    memory: M,
    options: Arc<ConsensusOptions>,
    participants: usize,
    max_live_per_shard: usize,
    shards: Vec<Shard<M>>,
    telemetry: Arc<RuntimeTelemetry>,
}

impl ConsensusEngine {
    /// Starts building an engine: the single documented construction path.
    ///
    /// ```
    /// use mc_runtime::ConsensusEngine;
    /// let engine = ConsensusEngine::builder().n(4).values(64).build();
    /// assert_eq!(engine.participants(), 4);
    /// ```
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }
}

impl<M: SharedMemory> ConsensusEngine<M> {
    pub(crate) fn with_telemetry_in(
        memory: M,
        options: ConsensusOptions,
        engine: EngineOptions,
        telemetry: Arc<RuntimeTelemetry>,
    ) -> ConsensusEngine<M> {
        assert!(options.n > 0, "need at least one participant");
        assert!(
            engine.max_live_per_shard > 0,
            "need room for at least one live instance per shard"
        );
        let shard_count = if engine.shards == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            engine.shards
        };
        let participants = if engine.participants == 0 {
            options.n
        } else {
            engine.participants
        };
        // More concurrent decide() callers than the n-thread bound the
        // quorum scheme was built for would silently void the algorithm's
        // guarantees.
        assert!(
            participants <= options.n,
            "participants ({participants}) exceeds the instance bound n ({})",
            options.n
        );
        ConsensusEngine {
            memory,
            options: Arc::new(options),
            participants,
            max_live_per_shard: engine.max_live_per_shard,
            shards: (0..shard_count)
                .map(|_| Shard {
                    state: Mutex::new(ShardState {
                        live: HashMap::new(),
                        free: Vec::new(),
                    }),
                    cv: Condvar::new(),
                })
                .collect(),
            telemetry,
        }
    }

    /// Number of shards instances are distributed across.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Submits per instance before it is retired.
    pub fn participants(&self) -> usize {
        self.participants
    }

    /// Aggregate metrics across every instance this engine has run:
    /// decide histograms plus `pool_hits`/`pool_misses`/
    /// `instances_retired`/`live_instances`.
    pub fn telemetry(&self) -> &RuntimeTelemetry {
        &self.telemetry
    }

    /// Shared handle to this engine's telemetry.
    pub fn telemetry_handle(&self) -> &Arc<RuntimeTelemetry> {
        &self.telemetry
    }

    /// The shared options every instance is activated from — one
    /// allocation, validated once (`Arc::ptr_eq` across instances).
    pub fn options_handle(&self) -> &Arc<ConsensusOptions> {
        &self.options
    }

    /// Instances currently live across all shards.
    pub fn live_instances(&self) -> usize {
        self.shards.iter().map(|s| s.lock().live.len()).sum()
    }

    /// Reset instances parked for reuse across all shards.
    pub fn pooled_instances(&self) -> usize {
        self.shards.iter().map(|s| s.lock().free.len()).sum()
    }

    fn shard_of(&self, instance_id: u64) -> &Shard<M> {
        // Fibonacci hashing: cheap, deterministic, spreads sequential ids.
        let h = (instance_id.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 32;
        &self.shards[(h as usize) % self.shards.len()]
    }

    /// Claims this caller's submit slot on `instance_id`, activating the
    /// instance if needed; `None` when activation would exceed the shard's
    /// live bound.
    fn checkout(
        &self,
        shard: &Shard<M>,
        state: &mut ShardState<M>,
        instance_id: u64,
        bounded: bool,
    ) -> Option<Arc<Consensus<M>>> {
        let _ = shard;
        if let Some(entry) = state.live.get_mut(&instance_id) {
            assert!(
                entry.remaining > 0,
                "instance {instance_id} already received all {} submits",
                self.participants
            );
            entry.remaining -= 1;
            return Some(Arc::clone(&entry.instance));
        }
        if bounded && state.live.len() >= self.max_live_per_shard {
            return None;
        }
        let instance = match state.free.pop() {
            Some(recycled) => {
                self.telemetry.on_pool_hit();
                recycled
            }
            None => {
                self.telemetry.on_pool_miss();
                Consensus::with_telemetry_in(
                    self.memory.clone(),
                    Arc::clone(&self.options),
                    Arc::clone(&self.telemetry),
                )
            }
        };
        let instance = Arc::new(instance);
        state.live.insert(
            instance_id,
            Entry {
                instance: Arc::clone(&instance),
                remaining: self.participants - 1,
            },
        );
        Some(instance)
    }

    /// Runs the decision and, if this caller was the last participant out,
    /// retires the instance into the shard's pool.
    ///
    /// The retire path keeps its critical section minimal: only the map
    /// removal, the reset, and the free-list push happen under the shard
    /// lock. The condvar notification and the telemetry increment run
    /// *after* the lock is released — a `notify_all` issued while still
    /// holding the mutex makes every woken waiter immediately block on the
    /// lock the notifier still owns (a wake-then-block hiccup that shows up
    /// in `engine_throughput` tail latency under saturation).
    fn decide_and_release(
        &self,
        shard: &Shard<M>,
        instance: Arc<Consensus<M>>,
        instance_id: u64,
        proposal: u64,
        rng: &mut dyn Rng,
    ) -> u64 {
        let decided = instance.decide(proposal, rng);
        drop(instance);
        let retired = {
            let mut state = shard.lock();
            let done = state
                .live
                .get(&instance_id)
                .is_some_and(|e| e.remaining == 0 && Arc::strong_count(&e.instance) == 1);
            if done {
                let entry = state.live.remove(&instance_id).expect("entry exists");
                let mut instance = Arc::try_unwrap(entry.instance).unwrap_or_else(|_| {
                    unreachable!("checked sole ownership under the shard lock")
                });
                instance.reset();
                state.free.push(instance);
            }
            done
        };
        if retired {
            self.telemetry.on_instance_retired();
            shard.cv.notify_all();
        }
        decided
    }

    /// Proposes `proposal` on instance `instance_id` and returns that
    /// instance's decision. Blocks while the shard is at its live-instance
    /// bound.
    ///
    /// Concurrent submits for the same id join the same one-shot object,
    /// so all of them return the same value, equal to one of their
    /// proposals.
    ///
    /// # Panics
    ///
    /// Panics if `proposal` exceeds the options' value capacity, or if the
    /// instance has already received all its participants' submits.
    pub fn submit(&self, instance_id: u64, proposal: u64, rng: &mut dyn Rng) -> u64 {
        let shard = self.shard_of(instance_id);
        let instance = {
            let mut state = shard.lock();
            loop {
                if let Some(instance) = self.checkout(shard, &mut state, instance_id, true) {
                    break instance;
                }
                state = shard.cv.wait(state).unwrap_or_else(PoisonError::into_inner);
            }
        };
        self.decide_and_release(shard, instance, instance_id, proposal, rng)
    }

    /// Non-blocking [`submit`](ConsensusEngine::submit): refuses with
    /// [`EngineError::Saturated`] instead of waiting when the shard is at
    /// its live-instance bound.
    ///
    /// # Errors
    ///
    /// [`EngineError::Saturated`] when activating the instance would
    /// exceed `max_live_per_shard`; joining an already-live instance never
    /// fails.
    ///
    /// # Panics
    ///
    /// As [`submit`](ConsensusEngine::submit).
    pub fn try_submit(
        &self,
        instance_id: u64,
        proposal: u64,
        rng: &mut dyn Rng,
    ) -> Result<u64, EngineError> {
        let shard = self.shard_of(instance_id);
        let instance = {
            let mut state = shard.lock();
            self.checkout(shard, &mut state, instance_id, true)
                .ok_or(EngineError::Saturated)?
        };
        Ok(self.decide_and_release(shard, instance, instance_id, proposal, rng))
    }

    /// [`submit`](ConsensusEngine::submit) minus the live-instance bound:
    /// the checkout never blocks and never refuses. Service shard workers
    /// use this — the service applies its *own* queue-depth backpressure at
    /// admission ([`BackpressurePolicy`](crate::BackpressurePolicy)), and a
    /// worker that parked on the engine bound while the submissions that
    /// would complete the blocking instances sat behind it in its own ring
    /// would deadlock.
    pub(crate) fn submit_unbounded(
        &self,
        instance_id: u64,
        proposal: u64,
        rng: &mut dyn Rng,
    ) -> u64 {
        let shard = self.shard_of(instance_id);
        let instance = {
            let mut state = shard.lock();
            self.checkout(shard, &mut state, instance_id, false)
                .expect("unbounded checkout always succeeds")
        };
        self.decide_and_release(shard, instance, instance_id, proposal, rng)
    }

    /// Checks out a long-lived single-participant slot for a batch worker;
    /// `shard_ix` picks which shard's pool backs it.
    ///
    /// Only valid when [`participants`](ConsensusEngine::participants) is
    /// 1: every logical instance receives exactly one submit, so one pooled
    /// object, reset between decisions, can serve an unbounded stream of
    /// instances without ever touching the live map or wrapping in an
    /// `Arc`. This is the amortization that makes batched draining cheap —
    /// one pool checkout per worker, zero shard-lock acquisitions per
    /// decision.
    pub(crate) fn detached_slot(&self, shard_ix: usize) -> DetachedSlot<'_, M> {
        assert_eq!(
            self.participants, 1,
            "detached slots serve single-participant streams only"
        );
        DetachedSlot {
            engine: self,
            shard_ix: shard_ix % self.shards.len(),
            instance: None,
        }
    }
}

/// A worker-owned consensus slot serving a stream of single-participant
/// instances from one pooled object (see
/// [`ConsensusEngine::detached_slot`]). Returns the object to its shard's
/// pool on drop.
pub(crate) struct DetachedSlot<'e, M: SharedMemory> {
    engine: &'e ConsensusEngine<M>,
    shard_ix: usize,
    instance: Option<Consensus<M>>,
}

impl<M: SharedMemory> DetachedSlot<'_, M> {
    /// Decides one logical instance: activation (pool hit/miss), decide,
    /// retire — the same per-instance accounting as
    /// [`ConsensusEngine::submit`], without per-instance locking.
    pub(crate) fn decide(&mut self, proposal: u64, rng: &mut dyn Rng) -> u64 {
        let engine = self.engine;
        let instance = match &mut self.instance {
            Some(instance) => {
                // Re-activating the object this slot already holds is a
                // pool hit by construction.
                engine.telemetry.on_pool_hit();
                instance
            }
            None => {
                let shard = &engine.shards[self.shard_ix];
                let recycled = { shard.lock().free.pop() };
                let instance = match recycled {
                    Some(recycled) => {
                        engine.telemetry.on_pool_hit();
                        recycled
                    }
                    None => {
                        engine.telemetry.on_pool_miss();
                        Consensus::with_telemetry_in(
                            engine.memory.clone(),
                            Arc::clone(&engine.options),
                            Arc::clone(&engine.telemetry),
                        )
                    }
                };
                self.instance.insert(instance)
            }
        };
        let decided = instance.decide(proposal, rng);
        instance.reset();
        engine.telemetry.on_instance_retired();
        decided
    }
}

impl<M: SharedMemory> Drop for DetachedSlot<'_, M> {
    fn drop(&mut self) {
        if let Some(instance) = self.instance.take() {
            // Dropping mid-unwind means a decide may have died between
            // touching registers and `reset`: the instance's state is
            // unknown, and pooling it would leak stale register contents
            // into whatever submission recycles it after the supervisor
            // restarts the worker. Discard it; the pool re-fills on miss.
            if std::thread::panicking() {
                return;
            }
            let shard = &self.engine.shards[self.shard_ix];
            shard.lock().free.push(instance);
        }
    }
}

impl<M: SharedMemory> std::fmt::Debug for ConsensusEngine<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConsensusEngine")
            .field("shards", &self.shard_count())
            .field("participants", &self.participants)
            .field("max_live_per_shard", &self.max_live_per_shard)
            .field("live_instances", &self.live_instances())
            .field("pooled_instances", &self.pooled_instances())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn single_participant_stream_recycles_instances() {
        let engine = ConsensusEngine::builder()
            .n(1)
            .values(64)
            .shards(4)
            .participants(1)
            .build();
        let mut rng = SmallRng::seed_from_u64(0);
        for id in 0..200u64 {
            assert_eq!(engine.submit(id, id % 64, &mut rng), id % 64);
        }
        assert_eq!(engine.live_instances(), 0);
        let t = engine.telemetry();
        assert_eq!(t.pool_hits() + t.pool_misses(), 200);
        assert_eq!(t.instances_retired(), 200);
        // One miss per shard at most: after warm-up everything is a hit.
        assert!(t.pool_misses() <= 4, "{} misses", t.pool_misses());
        assert!(t.pool_hit_rate() > 0.9);
        assert!(engine.pooled_instances() >= 1);
    }

    #[test]
    fn concurrent_submits_to_one_instance_agree() {
        for trial in 0..20u64 {
            let engine = Arc::new(ConsensusEngine::builder().n(4).values(8).build());
            let handles: Vec<_> = (0..4u64)
                .map(|t| {
                    let engine = Arc::clone(&engine);
                    std::thread::spawn(move || {
                        let mut rng = SmallRng::seed_from_u64(trial * 100 + t);
                        engine.submit(7, (t + trial) % 8, &mut rng)
                    })
                })
                .collect();
            let results: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            assert!(
                results.iter().all(|&r| r == results[0]),
                "trial {trial}: {results:?}"
            );
            assert!(((trial % 8)..(trial % 8) + 4).contains(&results[0]));
            assert_eq!(engine.live_instances(), 0, "trial {trial}");
            assert_eq!(engine.telemetry().instances_retired(), 1);
        }
    }

    #[test]
    fn interleaved_instances_all_decide_their_own_stream() {
        let engine = Arc::new(ConsensusEngine::builder().n(4).values(1000).build());
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(t);
                    (0..50u64)
                        .map(|id| engine.submit(id, id * 4 + t, &mut rng))
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        let all: Vec<Vec<u64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for id in 0..50usize {
            let decided = all[0][id];
            assert!(all.iter().all(|r| r[id] == decided), "instance {id}");
            // Validity: one of the four proposals for this id.
            assert!((id as u64 * 4..id as u64 * 4 + 4).contains(&decided));
        }
        assert_eq!(engine.live_instances(), 0);
        assert_eq!(engine.telemetry().instances_retired(), 50);
        // Hit rate depends on thread skew (a fast thread racing ahead keeps
        // more instances live at once); only the accounting is deterministic.
        let t = engine.telemetry();
        assert_eq!(t.pool_hits() + t.pool_misses(), 50);
        assert_eq!(engine.pooled_instances(), t.pool_misses() as usize);
    }

    #[test]
    fn try_submit_refuses_when_the_shard_is_saturated() {
        let engine = ConsensusEngine::builder()
            .n(2)
            .values(8)
            .shards(1)
            .max_live_per_shard(1)
            .participants(2)
            .build();
        let mut rng = SmallRng::seed_from_u64(0);
        // First participant of instance 0: decides, instance stays live
        // awaiting its second participant.
        assert_eq!(engine.submit(0, 3, &mut rng), 3);
        assert_eq!(engine.live_instances(), 1);
        // Activating instance 1 would exceed the bound.
        assert_eq!(
            engine.try_submit(1, 5, &mut rng),
            Err(EngineError::Saturated)
        );
        // Joining the live instance is always allowed — and agrees.
        assert_eq!(engine.try_submit(0, 7, &mut rng), Ok(3));
        assert_eq!(engine.live_instances(), 0);
        // The bound has room again.
        assert_eq!(engine.try_submit(1, 5, &mut rng), Ok(5));
    }

    #[test]
    fn submit_blocks_until_a_live_slot_frees_up() {
        let engine = Arc::new(
            ConsensusEngine::builder()
                .n(2)
                .values(8)
                .shards(1)
                .max_live_per_shard(1)
                .participants(2)
                .build(),
        );
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(engine.submit(0, 1, &mut rng), 1);
        let blocked = {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(1);
                // Blocks: shard full until instance 0 completes.
                engine.submit(1, 6, &mut rng)
            })
        };
        // Complete instance 0, releasing the shard slot.
        assert_eq!(engine.submit(0, 2, &mut rng), 1);
        assert_eq!(blocked.join().unwrap(), 6);
        // Instance 1 is still awaiting its second participant.
        assert_eq!(engine.live_instances(), 1);
        assert_eq!(engine.submit(1, 4, &mut rng), 6);
        assert_eq!(engine.live_instances(), 0);
    }

    #[test]
    fn instances_share_one_options_allocation() {
        let engine = ConsensusEngine::builder()
            .n(1)
            .values(8)
            .participants(1)
            .build();
        let mut rng = SmallRng::seed_from_u64(0);
        engine.submit(0, 1, &mut rng);
        engine.submit(1, 2, &mut rng);
        // Engine + each pooled instance hold the same Arc.
        let held = Arc::strong_count(engine.options_handle());
        assert_eq!(held, 1 + engine.pooled_instances());
    }

    #[test]
    #[should_panic(expected = "need room for at least one live instance")]
    fn zero_live_bound_rejected() {
        ConsensusEngine::builder()
            .n(1)
            .values(8)
            .max_live_per_shard(0)
            .build();
    }

    #[test]
    #[should_panic(expected = "exceeds the instance bound")]
    fn participants_beyond_n_rejected() {
        ConsensusEngine::builder()
            .n(2)
            .values(8)
            .participants(3)
            .build();
    }

    #[test]
    fn detached_slot_matches_submit_accounting() {
        let engine = ConsensusEngine::builder()
            .n(1)
            .values(64)
            .shards(1)
            .participants(1)
            .build();
        let mut rng = SmallRng::seed_from_u64(0);
        {
            let mut slot = engine.detached_slot(0);
            for id in 0..50u64 {
                assert_eq!(slot.decide(id % 64, &mut rng), id % 64);
            }
        }
        let t = engine.telemetry();
        // Same per-instance accounting as 50 direct submits: one
        // activation and one retirement per logical instance.
        assert_eq!(t.pool_hits() + t.pool_misses(), 50);
        assert_eq!(t.instances_retired(), 50);
        assert_eq!(t.pool_misses(), 1);
        // The slot parked its object back into the pool on drop.
        assert_eq!(engine.pooled_instances(), 1);
        assert_eq!(engine.live_instances(), 0);
    }

    #[test]
    #[should_panic(expected = "single-participant streams only")]
    fn detached_slot_requires_single_participant() {
        let engine = ConsensusEngine::builder().n(2).values(8).build();
        engine.detached_slot(0);
    }
}
