//! The single construction path for runtime consensus objects.
//!
//! The runtime accreted four ways to build an object — `Consensus::binary`,
//! `with_recorder`, the `*_in` memory-injected constructors, and bare
//! [`ConsensusOptions`]/[`EngineOptions`] structs. The builders collapse
//! them into one fluent seam:
//!
//! ```
//! use mc_runtime::Consensus;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let c = Consensus::builder().n(1).values(16).build();
//! assert_eq!(c.decide(11, &mut SmallRng::seed_from_u64(1)), 11);
//! ```
//!
//! The memory substrate — the Hadzilacos–Hu–Toueg-style parameter the old
//! API threaded through ad-hoc `_in` suffixes — is one builder call:
//! `.memory(m)` rebinds the builder to any [`SharedMemory`], so plain
//! atomics, the lab's instrumented substrate, and fault-injection layers
//! all flow through the same construction path.

use std::sync::Arc;

use mc_core::conciliator::WriteSchedule;
use mc_quorums::{BinaryScheme, BinomialScheme, QuorumScheme};
use mc_telemetry::Recorder;

use crate::bounded::{BoundedConsensus, Fallback, LeaderFallback};
use crate::conciliator::ConciliatorChoice;
use crate::consensus::{Consensus, ConsensusOptions};
use crate::engine::{ConsensusEngine, EngineOptions};
use crate::register::{AtomicMemory, SharedMemory};
use crate::telemetry::RuntimeTelemetry;

/// Fluent constructor for [`Consensus`] (and, via
/// [`build_bounded`](ConsensusBuilder::build_bounded), for
/// [`BoundedConsensus`]). Obtain one from [`Consensus::builder`].
///
/// Required: [`n`](ConsensusBuilder::n). Everything else defaults to the
/// paper's binary protocol: 2 values, impatient write schedule, fast path
/// on, unbounded conciliator rounds, plain atomics, no event recorder.
#[derive(Clone)]
pub struct ConsensusBuilder<M: SharedMemory = AtomicMemory> {
    memory: M,
    n: usize,
    values: u64,
    scheme: Option<Arc<dyn QuorumScheme>>,
    schedule: WriteSchedule,
    fast_path: bool,
    max_conciliator_rounds: Option<u32>,
    conciliator: ConciliatorChoice,
    recorder: Option<Arc<dyn Recorder>>,
}

impl Default for ConsensusBuilder {
    fn default() -> ConsensusBuilder {
        ConsensusBuilder {
            memory: AtomicMemory,
            n: 0,
            values: 2,
            scheme: None,
            schedule: WriteSchedule::impatient(),
            fast_path: true,
            max_conciliator_rounds: None,
            conciliator: ConciliatorChoice::Impatient,
            recorder: None,
        }
    }
}

impl ConsensusBuilder {
    /// A builder with every knob at its default (binary protocol over
    /// plain atomics); [`n`](ConsensusBuilder::n) must still be set.
    pub fn new() -> ConsensusBuilder {
        ConsensusBuilder::default()
    }
}

impl<M: SharedMemory> ConsensusBuilder<M> {
    /// Maximum number of participating threads. Required.
    #[must_use]
    pub fn n(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    /// Number of distinct proposal values (default 2). `2` selects the
    /// binary quorum scheme, larger values the binomial scheme — exactly
    /// the old `binary`/`multivalued` split. Ignored when an explicit
    /// [`scheme`](ConsensusBuilder::scheme) is set.
    #[must_use]
    pub fn values(mut self, m: u64) -> Self {
        self.values = m;
        self
    }

    /// Explicit quorum scheme, overriding
    /// [`values`](ConsensusBuilder::values).
    #[must_use]
    pub fn scheme(mut self, scheme: Arc<dyn QuorumScheme>) -> Self {
        self.scheme = Some(scheme);
        self
    }

    /// Write-probability schedule for the conciliators (default
    /// [`WriteSchedule::impatient`]).
    #[must_use]
    pub fn schedule(mut self, schedule: WriteSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Whether to run the `R₋₁; R₀` fast path (default `true`).
    #[must_use]
    pub fn fast_path(mut self, on: bool) -> Self {
        self.fast_path = on;
        self
    }

    /// Bound `f` on conciliator stages for
    /// [`build_bounded`](ConsensusBuilder::build_bounded) (Theorem 5).
    #[must_use]
    pub fn max_conciliator_rounds(mut self, rounds: u32) -> Self {
        self.max_conciliator_rounds = Some(rounds);
        self
    }

    /// Which conciliator the `C` stages instantiate (default
    /// [`ConciliatorChoice::Impatient`]): the impatient probabilistic-write
    /// racer, the Theorem 6 coin wrapper, or the telemetry-fed adaptive
    /// policy. Non-impatient choices require binary capacity.
    #[must_use]
    pub fn conciliator(mut self, choice: ConciliatorChoice) -> Self {
        self.conciliator = choice;
        self
    }

    /// Telemetry event sink. Counters are collected either way; a recorder
    /// additionally streams structured [`TelemetryEvent`]s.
    ///
    /// [`TelemetryEvent`]: mc_telemetry::TelemetryEvent
    #[must_use]
    pub fn recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Register substrate the object's registers live in, replacing the
    /// default plain atomics — e.g. a lab memory or a
    /// [`FaultyMemory`](crate::FaultyMemory) layer.
    #[must_use]
    pub fn memory<M2: SharedMemory>(self, memory: M2) -> ConsensusBuilder<M2> {
        ConsensusBuilder {
            memory,
            n: self.n,
            values: self.values,
            scheme: self.scheme,
            schedule: self.schedule,
            fast_path: self.fast_path,
            max_conciliator_rounds: self.max_conciliator_rounds,
            conciliator: self.conciliator,
            recorder: self.recorder,
        }
    }

    /// The [`ConsensusOptions`] this builder resolves to, for callers that
    /// need the options value itself (an engine, a service, a test matrix).
    ///
    /// # Panics
    ///
    /// Panics if `n` was never set, or if `values < 2` with no explicit
    /// scheme.
    pub fn options(&self) -> ConsensusOptions {
        assert!(self.n > 0, "ConsensusBuilder::n is required (and nonzero)");
        let scheme = match &self.scheme {
            Some(scheme) => Arc::clone(scheme),
            None => {
                assert!(self.values >= 2, "consensus needs at least 2 values");
                if self.values == 2 {
                    Arc::new(BinaryScheme::new()) as Arc<dyn QuorumScheme>
                } else {
                    Arc::new(BinomialScheme::for_capacity(self.values).expect("m ≥ 2"))
                }
            }
        };
        ConsensusOptions {
            n: self.n,
            scheme,
            schedule: self.schedule,
            fast_path: self.fast_path,
            max_conciliator_rounds: self.max_conciliator_rounds,
            conciliator: self.conciliator.clone(),
        }
    }

    pub(crate) fn telemetry(&self, options: &ConsensusOptions) -> Arc<RuntimeTelemetry> {
        Arc::new(match &self.recorder {
            Some(recorder) => RuntimeTelemetry::new(options.n, Arc::clone(recorder)),
            None => RuntimeTelemetry::noop(options.n),
        })
    }

    /// Builds the unbounded consensus object `R₋₁; R₀; C₁; R₁; …`.
    ///
    /// # Panics
    ///
    /// As [`options`](ConsensusBuilder::options).
    pub fn build(self) -> Consensus<M> {
        let options = self.options();
        let telemetry = self.telemetry(&options);
        Consensus::with_telemetry_in(self.memory, Arc::new(options), telemetry)
    }

    /// Builds Theorem 5's bounded object `R₋₁; R₀; (C; R)^f; K` with the
    /// single-writer leader fallback.
    ///
    /// # Panics
    ///
    /// As [`options`](ConsensusBuilder::options).
    pub fn build_bounded(self) -> BoundedConsensus<M> {
        let fallback = LeaderFallback::new_in(&self.memory, self.n.max(1));
        self.build_bounded_with(fallback)
    }

    /// Builds the bounded object with an explicit fallback protocol `K`.
    ///
    /// # Panics
    ///
    /// As [`options`](ConsensusBuilder::options).
    pub fn build_bounded_with<F: Fallback>(self, fallback: F) -> BoundedConsensus<M, F> {
        let options = self.options();
        let telemetry = self.telemetry(&options);
        BoundedConsensus::from_parts(
            Consensus::with_telemetry_in(self.memory, Arc::new(options), telemetry),
            fallback,
        )
    }
}

impl<M: SharedMemory> std::fmt::Debug for ConsensusBuilder<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConsensusBuilder")
            .field("n", &self.n)
            .field("values", &self.values)
            .field("scheme", &self.scheme.as_ref().map(|s| s.name()))
            .field("fast_path", &self.fast_path)
            .field("recorder", &self.recorder.is_some())
            .finish_non_exhaustive()
    }
}

/// Fluent constructor for [`ConsensusEngine`]. Obtain one from
/// [`ConsensusEngine::builder`].
///
/// Wraps a [`ConsensusBuilder`] (all its knobs apply to every pooled
/// instance) plus the engine's own sharding/backpressure tuning.
#[derive(Clone, Debug)]
pub struct EngineBuilder<M: SharedMemory = AtomicMemory> {
    consensus: ConsensusBuilder<M>,
    engine: EngineOptions,
}

impl Default for EngineBuilder {
    fn default() -> EngineBuilder {
        EngineBuilder {
            consensus: ConsensusBuilder::default(),
            engine: EngineOptions::default(),
        }
    }
}

impl EngineBuilder {
    /// A builder with every knob at its default;
    /// [`n`](EngineBuilder::n) must still be set.
    pub fn new() -> EngineBuilder {
        EngineBuilder::default()
    }
}

impl<M: SharedMemory> EngineBuilder<M> {
    /// Maximum number of participating threads per instance. Required.
    #[must_use]
    pub fn n(mut self, n: usize) -> Self {
        self.consensus = self.consensus.n(n);
        self
    }

    /// Number of distinct proposal values (default 2); see
    /// [`ConsensusBuilder::values`].
    #[must_use]
    pub fn values(mut self, m: u64) -> Self {
        self.consensus = self.consensus.values(m);
        self
    }

    /// Explicit quorum scheme; see [`ConsensusBuilder::scheme`].
    #[must_use]
    pub fn scheme(mut self, scheme: Arc<dyn QuorumScheme>) -> Self {
        self.consensus = self.consensus.scheme(scheme);
        self
    }

    /// Conciliator write schedule; see [`ConsensusBuilder::schedule`].
    #[must_use]
    pub fn schedule(mut self, schedule: WriteSchedule) -> Self {
        self.consensus = self.consensus.schedule(schedule);
        self
    }

    /// Fast-path toggle; see [`ConsensusBuilder::fast_path`].
    #[must_use]
    pub fn fast_path(mut self, on: bool) -> Self {
        self.consensus = self.consensus.fast_path(on);
        self
    }

    /// Conciliator portfolio choice for every pooled instance; see
    /// [`ConsensusBuilder::conciliator`].
    #[must_use]
    pub fn conciliator(mut self, choice: ConciliatorChoice) -> Self {
        self.consensus = self.consensus.conciliator(choice);
        self
    }

    /// Telemetry event sink; see [`ConsensusBuilder::recorder`].
    #[must_use]
    pub fn recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.consensus = self.consensus.recorder(recorder);
        self
    }

    /// Register substrate; see [`ConsensusBuilder::memory`].
    #[must_use]
    pub fn memory<M2: SharedMemory>(self, memory: M2) -> EngineBuilder<M2> {
        EngineBuilder {
            consensus: self.consensus.memory(memory),
            engine: self.engine,
        }
    }

    /// Number of shards instances are hashed across (default: one per
    /// available core).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.engine.shards = shards;
        self
    }

    /// Maximum instances live at once per shard (default 64).
    #[must_use]
    pub fn max_live_per_shard(mut self, bound: usize) -> Self {
        self.engine.max_live_per_shard = bound;
        self
    }

    /// Submits each instance receives before it is retired (default: `n`,
    /// every participant).
    #[must_use]
    pub fn participants(mut self, participants: usize) -> Self {
        self.engine.participants = participants;
        self
    }

    /// The resolved `(ConsensusOptions, EngineOptions)` pair.
    ///
    /// # Panics
    ///
    /// As [`ConsensusBuilder::options`].
    pub fn options(&self) -> (ConsensusOptions, EngineOptions) {
        (self.consensus.options(), self.engine)
    }

    /// Builds the engine.
    ///
    /// # Panics
    ///
    /// As [`ConsensusBuilder::options`], plus the engine's own validation
    /// (`max_live_per_shard > 0`, `participants ≤ n`).
    pub fn build(self) -> ConsensusEngine<M> {
        let options = self.consensus.options();
        let telemetry = self.consensus.telemetry(&options);
        ConsensusEngine::with_telemetry_in(self.consensus.memory, options, self.engine, telemetry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    #[test]
    fn builder_defaults_match_the_binary_protocol() {
        let options = Consensus::builder().n(4).options();
        assert_eq!(options.n, 4);
        assert_eq!(options.scheme.capacity(), 2);
        assert!(options.fast_path);
        assert_eq!(options.max_conciliator_rounds, None);
        assert_eq!(options.conciliator, ConciliatorChoice::Impatient);
    }

    #[test]
    fn conciliator_choice_flows_through_all_builders() {
        use crate::coin::CoinKind;
        let choice = ConciliatorChoice::Coin(CoinKind::voting());
        let options = Consensus::builder()
            .n(2)
            .conciliator(choice.clone())
            .options();
        assert_eq!(options.conciliator, choice);
        let (engine_opts, _) = ConsensusEngine::builder()
            .n(2)
            .conciliator(choice.clone())
            .options();
        assert_eq!(engine_opts.conciliator, choice);
        // And the built object actually runs on the coin path.
        let c = Consensus::builder().n(1).conciliator(choice).build();
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(c.decide(1, &mut rng), 1);
        assert_eq!(
            c.selected_conciliator(),
            mc_telemetry::ConciliatorKind::Coin
        );
    }

    #[test]
    fn values_selects_the_binomial_scheme() {
        let c = Consensus::builder().n(2).values(20).build();
        assert_eq!(c.capacity(), 20);
        let mut rng = SmallRng::seed_from_u64(0);
        // Single caller decides its own value.
        let c1 = Consensus::builder().n(1).values(16).build();
        assert_eq!(c1.decide(11, &mut rng), 11);
    }

    #[test]
    fn recorder_flows_into_the_built_object() {
        let agg = Arc::new(mc_telemetry::AggregatingRecorder::new());
        let c = Consensus::builder()
            .n(1)
            .recorder(Arc::clone(&agg) as Arc<dyn Recorder>)
            .build();
        assert!(c.telemetry().events_on());
        let mut rng = SmallRng::seed_from_u64(0);
        c.decide(1, &mut rng);
        assert_eq!(agg.decisions(), 1);
    }

    #[test]
    fn bounded_builder_terminates_and_shares_options_shape() {
        let c = Consensus::builder()
            .n(1)
            .values(8)
            .max_conciliator_rounds(3)
            .build_bounded();
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(c.decide(0, 5, &mut rng), 5);
    }

    #[test]
    fn engine_builder_builds_a_working_engine() {
        let engine = ConsensusEngine::builder()
            .n(1)
            .values(64)
            .shards(2)
            .participants(1)
            .build();
        assert_eq!(engine.shard_count(), 2);
        assert_eq!(engine.participants(), 1);
        let mut rng = SmallRng::seed_from_u64(0);
        for id in 0..10u64 {
            assert_eq!(engine.submit(id, id % 64, &mut rng), id % 64);
        }
        assert_eq!(engine.live_instances(), 0);
    }

    #[test]
    #[should_panic(expected = "ConsensusBuilder::n is required")]
    fn unset_n_is_rejected() {
        Consensus::builder().build();
    }

    #[test]
    #[should_panic(expected = "at least 2 values")]
    fn tiny_capacity_rejected() {
        Consensus::builder().n(2).values(1).build();
    }
}
