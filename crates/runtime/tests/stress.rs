//! Thread-runtime stress tests: many threads, many instances, scoped
//! spawning via crossbeam (no Arc juggling).

use crossbeam::thread;
use mc_runtime::{Consensus, Election, ImpatientConciliator, TestAndSet, TypedConsensus};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn sixteen_thread_consensus_storm() {
    let threads = 16;
    for instance in 0..40u64 {
        let consensus = Consensus::builder().n(threads).values(32).build();
        let decisions = thread::scope(|s| {
            let handles: Vec<_> = (0..threads as u64)
                .map(|t| {
                    let c = &consensus;
                    s.spawn(move |_| {
                        let mut rng = SmallRng::seed_from_u64(instance * 1000 + t);
                        c.decide((t * 5 + instance) % 32, &mut rng)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panics"))
                .collect::<Vec<u64>>()
        })
        .expect("scope");
        let first = decisions[0];
        assert!(
            decisions.iter().all(|&d| d == first),
            "instance {instance}: {decisions:?}"
        );
        assert!(
            (0..threads as u64).any(|t| (t * 5 + instance) % 32 == first),
            "instance {instance}: decided non-proposal {first}"
        );
    }
}

#[test]
fn conciliator_under_heavy_contention_is_always_valid() {
    let threads = 12;
    for instance in 0..100u64 {
        let conciliator = ImpatientConciliator::new(threads);
        let results = thread::scope(|s| {
            let handles: Vec<_> = (0..threads as u64)
                .map(|t| {
                    let c = &conciliator;
                    s.spawn(move |_| {
                        let mut rng = SmallRng::seed_from_u64(instance * 31 + t);
                        c.propose(t, &mut rng)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<u64>>()
        })
        .unwrap();
        for v in results {
            assert!(v < threads as u64);
        }
    }
}

#[test]
fn election_storm_has_single_leader_every_time() {
    let threads = 10;
    for instance in 0..60u64 {
        let election = Election::new(threads);
        let winners = thread::scope(|s| {
            (0..threads as u64)
                .map(|me| {
                    let e = &election;
                    s.spawn(move |_| {
                        let mut rng = SmallRng::seed_from_u64(instance * 7 + me);
                        e.elect(me, &mut rng)
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<u64>>()
        })
        .unwrap();
        let leader = winners[0];
        assert!(winners.iter().all(|&w| w == leader));
        assert!(leader < threads as u64);
    }
}

#[test]
fn tas_storm_has_exactly_one_winner_every_time() {
    let threads = 8;
    for instance in 0..60u64 {
        let tas = TestAndSet::new(threads);
        let wins = thread::scope(|s| {
            (0..threads as u64)
                .map(|me| {
                    let t = &tas;
                    s.spawn(move |_| {
                        let mut rng = SmallRng::seed_from_u64(instance * 11 + me);
                        t.try_set(me, &mut rng)
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<bool>>()
        })
        .unwrap();
        assert_eq!(
            wins.iter().filter(|&&w| w).count(),
            1,
            "instance {instance}"
        );
    }
}

#[test]
fn typed_consensus_storm_over_u16() {
    let threads = 6;
    for instance in 0..40u64 {
        let consensus = TypedConsensus::<u16>::new(threads);
        let decisions = thread::scope(|s| {
            (0..threads as u64)
                .map(|t| {
                    let c = &consensus;
                    s.spawn(move |_| {
                        let mut rng = SmallRng::seed_from_u64(instance * 3 + t);
                        c.decide((t * 1000 + instance) as u16, &mut rng)
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<u16>>()
        })
        .unwrap();
        assert!(decisions.windows(2).all(|w| w[0] == w[1]));
    }
}
