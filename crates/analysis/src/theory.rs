//! The paper's closed-form bounds, for "paper vs measured" columns.

/// Theorem 7's agreement-probability lower bound for the impatient
/// first-mover conciliator: `(1 − e^{−1/4}) · (1/4) ≈ 0.0553`.
pub fn impatient_agreement_lower_bound() -> f64 {
    (1.0 - (-0.25f64).exp()) * 0.25
}

/// `⌈lg x⌉` for `x ≥ 1`.
pub fn ceil_lg(x: u64) -> u64 {
    assert!(x >= 1, "lg of zero");
    64 - (x - 1).leading_zeros() as u64
}

/// Theorem 7's worst-case individual work for the impatient conciliator:
/// `2⌈lg n⌉ + 4` operations.
pub fn impatient_individual_work_bound(n: u64) -> u64 {
    2 * ceil_lg(n.max(1)) + 4
}

/// Theorem 7's expected total work bound for the impatient conciliator:
/// `6n` operations.
pub fn impatient_total_work_bound(n: u64) -> u64 {
    6 * n
}

/// §6.2 item 1: operations of the binary ratifier.
pub const BINARY_RATIFIER_OPS: u64 = 4;

/// §6.2 item 1: registers of the binary ratifier.
pub const BINARY_RATIFIER_REGISTERS: u64 = 3;

/// §6.2 item 3: registers of the bit-vector `m`-valued ratifier,
/// `2⌈lg m⌉ + 1` (including the proposal register).
pub fn bitvector_ratifier_registers(m: u64) -> u64 {
    2 * ceil_lg(m.max(2)) + 1
}

/// §6.2 item 3: worst-case operations of the bit-vector ratifier,
/// `2⌈lg m⌉ + 2`.
pub fn bitvector_ratifier_ops(m: u64) -> u64 {
    2 * ceil_lg(m.max(2)) + 2
}

/// Theorem 6: extra registers of the coin→conciliator construction over
/// the underlying weak shared coin — the two announce registers.
pub const COIN_CONCILIATOR_EXTRA_REGISTERS: u64 = 2;

/// Theorem 6: extra operations per process of the coin→conciliator
/// construction over the coin — one announce write plus one announce read.
pub const COIN_CONCILIATOR_EXTRA_OPS: u64 = 2;

/// Theorem 6: agreement parameter of the conciliator built from a weak
/// shared coin with per-side agreement parameter `delta` — the coin's `δ`
/// carries over unchanged. A process that bypasses the coin halts with its
/// own input `v` (it announced `v` and saw no other value announced), and
/// every deferring process agrees with it whenever the coin lands `v` —
/// which it does with probability at least `δ` per side.
pub fn coin_conciliator_delta(delta: f64) -> f64 {
    assert!(
        delta > 0.0 && delta <= 0.5,
        "per-side δ must be in (0, 1/2]"
    );
    delta
}

/// Per-side agreement parameter of `n` independent local coin flips:
/// `2^{−n}` (the probability all `n` flips land a given side). Valid only
/// against an *oblivious* adversary — an adaptive one sees local flips
/// before choosing whom to schedule, and the "coin" has no shared state to
/// defend itself with.
pub fn local_coin_delta(n: u64) -> f64 {
    assert!((1..=1024).contains(&n), "n must be in 1..=1024");
    0.5f64.powi(n as i32)
}

/// Upper tail of the standard normal, `P(Z ≥ z)`, via the
/// Abramowitz–Stegun 7.1.26 erf approximation (absolute error < 1.5·10⁻⁷).
pub fn normal_upper_tail(z: f64) -> f64 {
    assert!(z >= 0.0, "tail is taken at z ≥ 0");
    let x = z / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    0.5 * poly * (-x * x).exp()
}

/// Conservative per-side agreement lower bound for the Aspnes–Herlihy
/// voting coin with vote quorum `T = c·n²` under a *content-oblivious*
/// scheduler: `Φ̄(2/√c)`.
///
/// The sum of `T` fair ±1 votes has standard deviation `n√c`; any two
/// processes' views of it differ by at most `2n` votes (≤ `n` pending
/// unwritten votes hidden from a reader, ≤ `n` extra votes cast past the
/// quorum), so all processes see the same sign whenever the true sum lands
/// beyond `±2n` — a normal tail at `z = 2n / (n√c) = 2/√c` per side.
pub fn voting_coin_delta_lower_bound(quorum_factor: u32) -> f64 {
    assert!(quorum_factor > 0, "quorum factor must be positive");
    normal_upper_tail(2.0 / (quorum_factor as f64).sqrt())
}

/// [`voting_coin_delta_lower_bound`] against the *adaptive* adversary,
/// with a factor-4 safety margin: the adversary sees every local flip
/// before scheduling the write, and stopping voters mid-cast biases the
/// decisive sum by more than the ±2n view-difference argument accounts
/// for. Aspnes–Herlihy show the constant survives; the margin keeps this
/// bound conservative without reproducing their martingale argument.
pub fn voting_coin_adaptive_delta_lower_bound(quorum_factor: u32) -> f64 {
    voting_coin_delta_lower_bound(quorum_factor) / 4.0
}

/// §4.1.1: expected number of conciliator rounds before agreement, `1/δ`.
pub fn expected_rounds(delta: f64) -> f64 {
    assert!(delta > 0.0 && delta <= 1.0, "δ must be in (0, 1]");
    1.0 / delta
}

/// Theorem 5: probability that the bounded construction reaches its
/// fallback after `k` conciliator rounds, `(1 − δ)^k`.
pub fn fallback_probability(delta: f64, k: u32) -> f64 {
    assert!((0.0..=1.0).contains(&delta), "δ must be in [0, 1]");
    (1.0 - delta).powi(k as i32)
}

/// Theorem 5: rounds needed to push the fallback probability below
/// `epsilon` — the `k = O(log n)` of the bounded construction.
pub fn rounds_for_fallback_probability(delta: f64, epsilon: f64) -> u32 {
    assert!(delta > 0.0 && delta < 1.0, "δ must be in (0, 1)");
    assert!(epsilon > 0.0 && epsilon < 1.0, "ε must be in (0, 1)");
    (epsilon.ln() / (1.0 - delta).ln()).ceil() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_matches_paper_value() {
        let d = impatient_agreement_lower_bound();
        assert!((d - 0.0553).abs() < 0.0001, "δ = {d}");
    }

    #[test]
    fn ceil_lg_values() {
        assert_eq!(ceil_lg(1), 0);
        assert_eq!(ceil_lg(2), 1);
        assert_eq!(ceil_lg(3), 2);
        assert_eq!(ceil_lg(4), 2);
        assert_eq!(ceil_lg(5), 3);
        assert_eq!(ceil_lg(1 << 20), 20);
        assert_eq!(ceil_lg((1 << 20) + 1), 21);
    }

    #[test]
    fn work_bounds() {
        assert_eq!(impatient_individual_work_bound(16), 12);
        assert_eq!(impatient_individual_work_bound(1), 4);
        assert_eq!(impatient_total_work_bound(10), 60);
    }

    #[test]
    fn ratifier_bounds() {
        assert_eq!(bitvector_ratifier_registers(2), 3);
        assert_eq!(bitvector_ratifier_registers(16), 9);
        assert_eq!(bitvector_ratifier_ops(16), 10);
    }

    #[test]
    fn round_expectations() {
        assert_eq!(expected_rounds(0.5), 2.0);
        let delta = impatient_agreement_lower_bound();
        assert!(expected_rounds(delta) < 19.0);
        assert!((fallback_probability(0.5, 3) - 0.125).abs() < 1e-12);
        assert_eq!(fallback_probability(1.0, 5), 0.0);
        // k = Θ(log(1/ε)) rounds suffice.
        let k = rounds_for_fallback_probability(delta, 1e-6);
        assert!(k > 0 && k < 300, "k = {k}");
        assert!(fallback_probability(delta, k) <= 1e-6);
    }

    #[test]
    #[should_panic(expected = "lg of zero")]
    fn lg_zero_rejected() {
        ceil_lg(0);
    }

    #[test]
    fn theorem6_cost_constants() {
        assert_eq!(COIN_CONCILIATOR_EXTRA_REGISTERS, 2);
        assert_eq!(COIN_CONCILIATOR_EXTRA_OPS, 2);
        assert_eq!(coin_conciliator_delta(0.25), 0.25);
    }

    #[test]
    fn local_coin_delta_halves_per_process() {
        assert_eq!(local_coin_delta(1), 0.5);
        assert_eq!(local_coin_delta(3), 0.125);
        assert!(local_coin_delta(3) == 2.0 * local_coin_delta(4));
    }

    #[test]
    fn normal_tail_matches_known_values() {
        // Φ̄(0) = 1/2, Φ̄(1) ≈ 0.1587, Φ̄(2) ≈ 0.02275, Φ̄(3) ≈ 0.00135.
        assert!((normal_upper_tail(0.0) - 0.5).abs() < 1e-6);
        assert!((normal_upper_tail(1.0) - 0.158_655).abs() < 1e-4);
        assert!((normal_upper_tail(2.0) - 0.022_750).abs() < 1e-4);
        assert!((normal_upper_tail(3.0) - 0.001_350).abs() < 1e-4);
    }

    #[test]
    fn voting_coin_bounds_grow_with_the_quorum_factor() {
        let c1 = voting_coin_delta_lower_bound(1);
        let c4 = voting_coin_delta_lower_bound(4);
        assert!(c1 < c4, "{c1} vs {c4}");
        // c = 4 puts the tail at z = 1: δ ≥ Φ̄(1) ≈ 0.1587.
        assert!((c4 - 0.158_655).abs() < 1e-4);
        // The adaptive bound concedes a factor 4.
        assert!((voting_coin_adaptive_delta_lower_bound(4) - c4 / 4.0).abs() < 1e-12);
        // Every bound is a genuine probability, bounded by 1/2 per side.
        for factor in [1, 2, 4, 8, 64] {
            let d = voting_coin_delta_lower_bound(factor);
            assert!(d > 0.0 && d < 0.5, "factor {factor}: {d}");
        }
    }

    #[test]
    #[should_panic(expected = "quorum factor must be positive")]
    fn zero_quorum_factor_has_no_bound() {
        voting_coin_delta_lower_bound(0);
    }
}
