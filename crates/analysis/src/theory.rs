//! The paper's closed-form bounds, for "paper vs measured" columns.

/// Theorem 7's agreement-probability lower bound for the impatient
/// first-mover conciliator: `(1 − e^{−1/4}) · (1/4) ≈ 0.0553`.
pub fn impatient_agreement_lower_bound() -> f64 {
    (1.0 - (-0.25f64).exp()) * 0.25
}

/// `⌈lg x⌉` for `x ≥ 1`.
pub fn ceil_lg(x: u64) -> u64 {
    assert!(x >= 1, "lg of zero");
    64 - (x - 1).leading_zeros() as u64
}

/// Theorem 7's worst-case individual work for the impatient conciliator:
/// `2⌈lg n⌉ + 4` operations.
pub fn impatient_individual_work_bound(n: u64) -> u64 {
    2 * ceil_lg(n.max(1)) + 4
}

/// Theorem 7's expected total work bound for the impatient conciliator:
/// `6n` operations.
pub fn impatient_total_work_bound(n: u64) -> u64 {
    6 * n
}

/// §6.2 item 1: operations of the binary ratifier.
pub const BINARY_RATIFIER_OPS: u64 = 4;

/// §6.2 item 1: registers of the binary ratifier.
pub const BINARY_RATIFIER_REGISTERS: u64 = 3;

/// §6.2 item 3: registers of the bit-vector `m`-valued ratifier,
/// `2⌈lg m⌉ + 1` (including the proposal register).
pub fn bitvector_ratifier_registers(m: u64) -> u64 {
    2 * ceil_lg(m.max(2)) + 1
}

/// §6.2 item 3: worst-case operations of the bit-vector ratifier,
/// `2⌈lg m⌉ + 2`.
pub fn bitvector_ratifier_ops(m: u64) -> u64 {
    2 * ceil_lg(m.max(2)) + 2
}

/// §4.1.1: expected number of conciliator rounds before agreement, `1/δ`.
pub fn expected_rounds(delta: f64) -> f64 {
    assert!(delta > 0.0 && delta <= 1.0, "δ must be in (0, 1]");
    1.0 / delta
}

/// Theorem 5: probability that the bounded construction reaches its
/// fallback after `k` conciliator rounds, `(1 − δ)^k`.
pub fn fallback_probability(delta: f64, k: u32) -> f64 {
    assert!((0.0..=1.0).contains(&delta), "δ must be in [0, 1]");
    (1.0 - delta).powi(k as i32)
}

/// Theorem 5: rounds needed to push the fallback probability below
/// `epsilon` — the `k = O(log n)` of the bounded construction.
pub fn rounds_for_fallback_probability(delta: f64, epsilon: f64) -> u32 {
    assert!(delta > 0.0 && delta < 1.0, "δ must be in (0, 1)");
    assert!(epsilon > 0.0 && epsilon < 1.0, "ε must be in (0, 1)");
    (epsilon.ln() / (1.0 - delta).ln()).ceil() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_matches_paper_value() {
        let d = impatient_agreement_lower_bound();
        assert!((d - 0.0553).abs() < 0.0001, "δ = {d}");
    }

    #[test]
    fn ceil_lg_values() {
        assert_eq!(ceil_lg(1), 0);
        assert_eq!(ceil_lg(2), 1);
        assert_eq!(ceil_lg(3), 2);
        assert_eq!(ceil_lg(4), 2);
        assert_eq!(ceil_lg(5), 3);
        assert_eq!(ceil_lg(1 << 20), 20);
        assert_eq!(ceil_lg((1 << 20) + 1), 21);
    }

    #[test]
    fn work_bounds() {
        assert_eq!(impatient_individual_work_bound(16), 12);
        assert_eq!(impatient_individual_work_bound(1), 4);
        assert_eq!(impatient_total_work_bound(10), 60);
    }

    #[test]
    fn ratifier_bounds() {
        assert_eq!(bitvector_ratifier_registers(2), 3);
        assert_eq!(bitvector_ratifier_registers(16), 9);
        assert_eq!(bitvector_ratifier_ops(16), 10);
    }

    #[test]
    fn round_expectations() {
        assert_eq!(expected_rounds(0.5), 2.0);
        let delta = impatient_agreement_lower_bound();
        assert!(expected_rounds(delta) < 19.0);
        assert!((fallback_probability(0.5, 3) - 0.125).abs() < 1e-12);
        assert_eq!(fallback_probability(1.0, 5), 0.0);
        // k = Θ(log(1/ε)) rounds suffice.
        let k = rounds_for_fallback_probability(delta, 1e-6);
        assert!(k > 0 && k < 300, "k = {k}");
        assert!(fallback_probability(delta, k) <= 1e-6);
    }

    #[test]
    #[should_panic(expected = "lg of zero")]
    fn lg_zero_rejected() {
        ceil_lg(0);
    }
}
