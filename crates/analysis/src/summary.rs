//! Descriptive statistics and interval estimates.

use std::fmt;

/// Descriptive statistics of a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected).
    pub sd: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Summarizes a sample of `f64`s.
    ///
    /// Returns a zeroed summary for an empty sample.
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                sd: 0.0,
                min: 0.0,
                max: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
            };
        }
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0)
        } else {
            0.0
        };
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
        let q = |p: f64| {
            let ix = ((n as f64 - 1.0) * p).round() as usize;
            sorted[ix.min(n - 1)]
        };
        Summary {
            n,
            mean,
            sd: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            p50: q(0.50),
            p95: q(0.95),
            p99: q(0.99),
        }
    }

    /// Summarizes a sample of counts.
    pub fn of_counts(xs: &[u64]) -> Summary {
        let floats: Vec<f64> = xs.iter().map(|&x| x as f64).collect();
        Summary::of(&floats)
    }

    /// A 95% normal-theory confidence interval for the mean.
    pub fn mean_ci(&self) -> ConfidenceInterval {
        if self.n < 2 {
            return ConfidenceInterval {
                center: self.mean,
                low: self.mean,
                high: self.mean,
            };
        }
        let half = 1.96 * self.sd / (self.n as f64).sqrt();
        ConfidenceInterval {
            center: self.mean,
            low: self.mean - half,
            high: self.mean + half,
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.2} sd={:.2} min={:.0} p50={:.0} p95={:.0} max={:.0}",
            self.n, self.mean, self.sd, self.min, self.p50, self.p95, self.max
        )
    }
}

/// A two-sided interval estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate.
    pub center: f64,
    /// Lower bound.
    pub low: f64,
    /// Upper bound.
    pub high: f64,
}

impl ConfidenceInterval {
    /// Whether the interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        self.low <= x && x <= self.high
    }
}

impl fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} [{:.4}, {:.4}]", self.center, self.low, self.high)
    }
}

/// 95% Wilson score interval for a binomial proportion — the right interval
/// for agreement rates, especially near 0 or 1 where the normal
/// approximation breaks down.
pub fn wilson_interval(successes: usize, trials: usize) -> ConfidenceInterval {
    if trials == 0 {
        return ConfidenceInterval {
            center: 0.0,
            low: 0.0,
            high: 1.0,
        };
    }
    let z = 1.96_f64;
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ConfidenceInterval {
        center: p,
        low: (center - half).max(0.0),
        high: (center + half).min(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_simple_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.n, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.p50, 3.0);
        assert!((s.sd - (2.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_handles_empty_and_singleton() {
        assert_eq!(Summary::of(&[]).n, 0);
        let s = Summary::of(&[7.0]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.sd, 0.0);
        assert_eq!(s.mean_ci().low, 7.0);
    }

    #[test]
    fn counts_conversion() {
        let s = Summary::of_counts(&[2, 4, 6]);
        assert_eq!(s.mean, 4.0);
    }

    #[test]
    fn ci_shrinks_with_sample_size() {
        let small = Summary::of(&[1.0, 2.0].repeat(5)).mean_ci();
        let large = Summary::of(&[1.0, 2.0].repeat(500)).mean_ci();
        assert!(large.high - large.low < small.high - small.low);
        assert!(large.contains(1.5));
    }

    #[test]
    fn wilson_is_sane() {
        let ci = wilson_interval(50, 100);
        assert!((ci.center - 0.5).abs() < 1e-12);
        assert!(ci.low > 0.39 && ci.low < 0.5);
        assert!(ci.high < 0.61 && ci.high > 0.5);
        // Extremes stay in [0, 1].
        let zero = wilson_interval(0, 20);
        assert_eq!(zero.low, 0.0);
        assert!(zero.high > 0.0);
        let all = wilson_interval(20, 20);
        assert_eq!(all.high, 1.0);
        assert!(all.low < 1.0);
    }

    #[test]
    fn wilson_of_no_trials_is_vacuous() {
        let ci = wilson_interval(0, 0);
        assert_eq!((ci.low, ci.high), (0.0, 1.0));
    }

    #[test]
    fn display_forms() {
        let s = Summary::of(&[1.0, 2.0]);
        assert!(s.to_string().contains("mean=1.50"));
        let ci = wilson_interval(1, 2);
        assert!(ci.to_string().starts_with("0.5000"));
    }
}
