//! Fixed-width histograms with terminal rendering.

use std::fmt;

/// A fixed-width-bin histogram over integer samples (operation counts,
/// stage depths, …), with a proportional bar rendering for experiment
/// output.
#[derive(Debug, Clone)]
pub struct Histogram {
    bin_width: u64,
    /// `counts[i]` counts samples in `[i·w, (i+1)·w)`.
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with the given bin width.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width == 0`.
    pub fn new(bin_width: u64) -> Histogram {
        assert!(bin_width > 0, "bin width must be positive");
        Histogram {
            bin_width,
            counts: Vec::new(),
            total: 0,
        }
    }

    /// Builds a histogram from samples with the given bin width.
    pub fn of(samples: &[u64], bin_width: u64) -> Histogram {
        let mut h = Histogram::new(bin_width);
        for &s in samples {
            h.record(s);
        }
        h
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        let bin = usize::try_from(sample / self.bin_width).expect("bin index fits");
        if bin >= self.counts.len() {
            self.counts.resize(bin + 1, 0);
        }
        self.counts[bin] += 1;
        self.total += 1;
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The count in the bin containing `sample`.
    pub fn count_for(&self, sample: u64) -> u64 {
        self.counts
            .get(usize::try_from(sample / self.bin_width).expect("bin index fits"))
            .copied()
            .unwrap_or(0)
    }

    /// `(lower bound, count)` for each non-empty trailing-trimmed bin.
    pub fn bins(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(|(ix, &c)| (ix as u64 * self.bin_width, c))
    }

    /// The smallest sample bound `b` such that at least `q` (0..=1) of the
    /// samples fall below `b` (a coarse quantile at bin resolution).
    pub fn quantile_bound(&self, q: f64) -> u64 {
        let target = (self.total as f64 * q).ceil() as u64;
        let mut seen = 0;
        for (ix, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return (ix as u64 + 1) * self.bin_width;
            }
        }
        self.counts.len() as u64 * self.bin_width
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        for (lo, count) in self.bins() {
            let width = (count * 40 / max) as usize;
            writeln!(
                f,
                "{:>8}..{:<8} {:>7} {}",
                lo,
                lo + self.bin_width,
                count,
                "#".repeat(width)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_bins() {
        let h = Histogram::of(&[0, 1, 2, 5, 9, 10], 5);
        assert_eq!(h.total(), 6);
        assert_eq!(h.count_for(0), 3); // 0,1,2
        assert_eq!(h.count_for(7), 2); // 5,9
        assert_eq!(h.count_for(10), 1);
        assert_eq!(h.count_for(99), 0);
    }

    #[test]
    fn quantiles_at_bin_resolution() {
        let h = Histogram::of(&[1, 1, 1, 1, 1, 1, 1, 1, 1, 100], 10);
        assert_eq!(h.quantile_bound(0.5), 10);
        assert_eq!(h.quantile_bound(0.9), 10);
        assert_eq!(h.quantile_bound(1.0), 110);
    }

    #[test]
    fn renders_bars() {
        let h = Histogram::of(&[0, 0, 0, 0, 7], 5);
        let s = h.to_string();
        assert!(s.contains("0..5"), "{s}");
        assert!(s.contains("####"), "{s}");
    }

    #[test]
    #[should_panic(expected = "bin width")]
    fn zero_width_rejected() {
        Histogram::new(0);
    }
}
