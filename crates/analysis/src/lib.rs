//! Statistics, fits, and table rendering for consensus experiments.
//!
//! Everything the experiment harness needs to turn raw trial data into the
//! paper-shaped tables of `EXPERIMENTS.md`:
//!
//! * [`Summary`] — descriptive statistics with quantiles and normal-theory
//!   confidence intervals.
//! * [`wilson_interval`] — binomial proportion intervals for agreement
//!   rates.
//! * [`fit`] — least-squares fits against the paper's predicted shapes
//!   (`a·lg n + b`, `a·n + b`), with `R²` to judge the fit.
//! * [`Table`] / [`Series`] — plain-text rendering for experiment output.
//! * [`theory`] — the paper's closed-form bounds (Theorem 5, 7, 10
//!   constants) for printing "paper vs measured" columns.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fit;
mod histogram;
mod summary;
mod table;
pub mod theory;

pub use fit::{fit_linear, fit_log2, fit_power, Fit, PowerFit};
pub use histogram::Histogram;
pub use summary::{wilson_interval, ConfidenceInterval, Summary};
pub use table::{Series, Table};
