//! Least-squares fits against the paper's predicted cost shapes.

use std::fmt;

/// A least-squares fit `y ≈ slope·g(x) + intercept` for some feature map
/// `g` (identity for [`fit_linear`], `log₂` for [`fit_log2`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fit {
    /// Coefficient of the feature.
    pub slope: f64,
    /// Constant term.
    pub intercept: f64,
    /// Coefficient of determination in the feature space.
    pub r_squared: f64,
}

impl Fit {
    /// Predicted `y` at feature value `g(x)`.
    pub fn predict_feature(&self, feature: f64) -> f64 {
        self.slope * feature + self.intercept
    }
}

impl fmt::Display for Fit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3}·x + {:.3} (R²={:.4})",
            self.slope, self.intercept, self.r_squared
        )
    }
}

fn least_squares(features: &[f64], ys: &[f64]) -> Fit {
    assert_eq!(features.len(), ys.len(), "mismatched sample lengths");
    let n = features.len() as f64;
    assert!(n >= 2.0, "need at least two points to fit a line");
    let mean_x = features.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in features.iter().zip(ys) {
        sxx += (x - mean_x) * (x - mean_x);
        sxy += (x - mean_x) * (y - mean_y);
        syy += (y - mean_y) * (y - mean_y);
    }
    assert!(sxx > 0.0, "features are constant; cannot fit a slope");
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Fit {
        slope,
        intercept,
        r_squared,
    }
}

/// Fits `y ≈ a·x + b`. Used to confirm `O(n)` total-work shapes.
///
/// # Panics
///
/// Panics on mismatched lengths, fewer than 2 points, or constant `x`s.
///
/// # Example
///
/// ```
/// let fit = mc_analysis::fit_linear(&[1.0, 2.0, 3.0], &[6.0, 12.0, 18.0]);
/// assert!((fit.slope - 6.0).abs() < 1e-9);
/// assert!(fit.r_squared > 0.999);
/// ```
pub fn fit_linear(xs: &[f64], ys: &[f64]) -> Fit {
    least_squares(xs, ys)
}

/// Fits `y ≈ a·lg x + b`. Used to confirm `O(log n)` individual-work
/// shapes (Theorem 7: the slope should be ≈ 2 for the impatient
/// conciliator).
///
/// # Panics
///
/// Panics on mismatched lengths, fewer than 2 points, constant `x`s, or any
/// non-positive `x`.
pub fn fit_log2(xs: &[f64], ys: &[f64]) -> Fit {
    let features: Vec<f64> = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "log fit needs positive x values");
            x.log2()
        })
        .collect();
    least_squares(&features, ys)
}

/// Fits a power law `y ≈ c·x^e` by least squares in log-log space,
/// returning `(exponent e, coefficient c, R²)` as a [`PowerFit`].
///
/// Used to confirm polynomial cost shapes — e.g. the voting shared coin's
/// `Θ(n³)` total work or the fixed-schedule conciliator's `Θ(n)` solo
/// individual work.
///
/// # Panics
///
/// Panics on mismatched lengths, fewer than 2 points, constant `x`s, or any
/// non-positive `x` or `y`.
pub fn fit_power(xs: &[f64], ys: &[f64]) -> PowerFit {
    let log_xs: Vec<f64> = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "power fit needs positive x values");
            x.ln()
        })
        .collect();
    let log_ys: Vec<f64> = ys
        .iter()
        .map(|&y| {
            assert!(y > 0.0, "power fit needs positive y values");
            y.ln()
        })
        .collect();
    let fit = least_squares(&log_xs, &log_ys);
    PowerFit {
        exponent: fit.slope,
        coefficient: fit.intercept.exp(),
        r_squared: fit.r_squared,
    }
}

/// A fitted power law `y ≈ coefficient · x^exponent`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerFit {
    /// The exponent `e`.
    pub exponent: f64,
    /// The coefficient `c`.
    pub coefficient: f64,
    /// Coefficient of determination in log-log space.
    pub r_squared: f64,
}

impl PowerFit {
    /// Predicted `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.coefficient * x.powf(self.exponent)
    }
}

impl fmt::Display for PowerFit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3}·x^{:.2} (R²={:.4})",
            self.coefficient, self.exponent, self.r_squared
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_linear_fit() {
        let fit = fit_linear(&[0.0, 1.0, 2.0], &[1.0, 3.0, 5.0]);
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 1.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict_feature(10.0) - 21.0).abs() < 1e-12);
    }

    #[test]
    fn exact_power_fit() {
        // y = 3·x³ — the voting-coin total-work shape.
        let xs = [2.0f64, 4.0, 8.0, 16.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x.powi(3)).collect();
        let fit = fit_power(&xs, &ys);
        assert!((fit.exponent - 3.0).abs() < 1e-9, "{fit}");
        assert!((fit.coefficient - 3.0).abs() < 1e-6);
        assert!((fit.r_squared - 1.0).abs() < 1e-9);
        assert!((fit.predict(10.0) - 3000.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "positive y")]
    fn nonpositive_y_rejected_for_power() {
        fit_power(&[1.0, 2.0], &[0.0, 1.0]);
    }

    #[test]
    fn exact_log_fit() {
        // y = 2·lg x + 4, the Theorem 7 shape.
        let xs: [f64; 5] = [2.0, 4.0, 8.0, 16.0, 32.0];
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x.log2() + 4.0).collect();
        let fit = fit_log2(&xs, &ys);
        assert!((fit.slope - 2.0).abs() < 1e-9);
        assert!((fit.intercept - 4.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_fit_has_lower_r2() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let ys = [2.0, 5.0, 4.0, 9.0, 8.0, 13.0];
        let fit = fit_linear(&xs, &ys);
        assert!(fit.r_squared > 0.5 && fit.r_squared < 1.0);
    }

    #[test]
    fn constant_y_is_perfectly_fit() {
        let fit = fit_linear(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]);
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    #[should_panic(expected = "constant")]
    fn constant_x_rejected() {
        fit_linear(&[2.0, 2.0], &[1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "positive x")]
    fn nonpositive_x_rejected_for_log() {
        fit_log2(&[0.0, 2.0], &[1.0, 2.0]);
    }

    #[test]
    fn display_form() {
        let fit = fit_linear(&[0.0, 1.0], &[0.0, 2.0]);
        assert_eq!(fit.to_string(), "2.000·x + 0.000 (R²=1.0000)");
    }
}
