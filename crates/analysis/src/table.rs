//! Plain-text tables and series for experiment output.

use std::fmt;

/// A titled table rendered as GitHub-flavored markdown (which is also
/// pleasant to read raw in a terminal).
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Column widths over headers + cells.
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "### {}", self.title)?;
        writeln!(f)?;
        let render_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (cell, w) in cells.iter().zip(&widths) {
                write!(f, " {cell:>w$} |")?;
            }
            writeln!(f)
        };
        render_row(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<width$}|", "", width = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            render_row(f, row)?;
        }
        Ok(())
    }
}

/// A named series of `(x, y)` points, rendered as aligned columns — the
/// textual stand-in for a figure.
#[derive(Debug, Clone)]
pub struct Series {
    name: String,
    x_label: String,
    y_label: String,
    points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(
        name: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Series {
        Series {
            name: name.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) -> &mut Series {
        self.points.push((x, y));
        self
    }

    /// The collected points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// The x values.
    pub fn xs(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.0).collect()
    }

    /// The y values.
    pub fn ys(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.1).collect()
    }
}

impl fmt::Display for Series {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# {} — {} vs {}", self.name, self.y_label, self.x_label)?;
        for (x, y) in &self.points {
            writeln!(f, "{x:>12.2}  {y:>12.4}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new("Demo", &["n", "work"]);
        t.row(&["2".into(), "10".into()]);
        t.row(&["4".into(), "25".into()]);
        let rendered = t.to_string();
        assert!(rendered.contains("### Demo"));
        assert!(rendered.contains("| n | work |"), "{rendered}");
        assert!(rendered.contains("| 4 |   25 |"), "{rendered}");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_rejected() {
        Table::new("t", &["a", "b"]).row(&["only-one".into()]);
    }

    #[test]
    fn series_accumulates_points() {
        let mut s = Series::new("work", "n", "ops");
        s.push(2.0, 8.0).push(4.0, 16.0);
        assert_eq!(s.points().len(), 2);
        assert_eq!(s.xs(), vec![2.0, 4.0]);
        assert_eq!(s.ys(), vec![8.0, 16.0]);
        let rendered = s.to_string();
        assert!(rendered.contains("# work — ops vs n"));
    }
}
