//! A std-only stand-in for the subset of `parking_lot` this workspace
//! uses: [`RwLock`] and [`Mutex`] with non-poisoning, guard-returning
//! `lock`/`read`/`write` methods, backed by `std::sync`.
//!
//! The workspace must build with no registry access, so the real
//! `parking_lot` cannot be fetched. Poisoning is handled by ignoring it
//! (parking_lot has no poisoning): a panic while holding a guard does not
//! make later acquisitions fail.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock whose `read`/`write` never return `Result`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A mutex whose `lock` never returns `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn rwlock_reads_and_writes() {
        let lock = RwLock::new(vec![1, 2]);
        assert_eq!(lock.read().len(), 2);
        lock.write().push(3);
        assert_eq!(*lock.read(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(5u64);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }
}
