//! A std-only stand-in for the subset of `crossbeam` this workspace uses:
//! [`thread::scope`] with crossbeam's `Result`-returning signature, backed
//! by `std::thread::scope`.
//!
//! The workspace must build with no registry access, so the real
//! `crossbeam` cannot be fetched. Semantics differ from crossbeam in one
//! corner: a panic in an *unjoined* scoped thread aborts the scope by
//! panicking (std behaviour) instead of surfacing as `Err`; every caller in
//! this workspace joins all handles, so the difference is unobservable.

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// A scope handle for spawning threads that may borrow from the stack.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope so it can
        /// spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope in which threads may borrow non-`'static` data.
    ///
    /// # Errors
    ///
    /// Never fails in this implementation; the `Result` mirrors
    /// crossbeam's signature so call sites can `?`/`expect` unchanged.
    #[allow(clippy::unnecessary_wraps)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let total = thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&v| s.spawn(move |_| v * 10)).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .sum::<u64>()
        })
        .expect("scope");
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let result = thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7).join().expect("inner"))
                .join()
                .expect("outer")
        })
        .expect("scope");
        assert_eq!(result, 7);
    }
}
