//! A dependency-free, std-only stand-in for the subset of the `criterion`
//! benchmarking API this workspace uses: groups, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! The workspace must build with no registry access, so the real
//! `criterion` cannot be fetched. Measurement here is intentionally simple:
//! each benchmark is warmed up, then timed over `sample_size` samples of
//! adaptively sized iteration batches, and the per-iteration mean, median,
//! and minimum are printed. There are no plots, no statistical regression
//! analysis, and no baseline storage — but numbers printed by the same
//! binary on the same machine are comparable run to run.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id rendered as the bare parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId {
            id: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId { id: name }
    }
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` repeatedly and records per-sample wall-clock times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and size the iteration batch so one sample takes
        // roughly a millisecond (bounded to keep total time sane).
        let warmup_start = Instant::now();
        black_box(f());
        let one = warmup_start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(1);
        let iters = (target.as_nanos() / one.as_nanos()).clamp(1, 10_000) as u64;
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() || self.iters_per_sample == 0 {
            return;
        }
        let per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        let mut sorted = per_iter.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        println!(
            "bench {id:<40} mean {:>12} median {:>12} min {:>12} ({} samples x {} iters)",
            fmt_ns(mean),
            fmt_ns(median),
            fmt_ns(min),
            self.samples.len(),
            self.iters_per_sample,
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named group of related benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, size: usize) -> &mut Self {
        self.sample_size = size.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            ..Bencher::default()
        };
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            ..Bencher::default()
        };
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Ends the group (a no-op, kept for API compatibility).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.sample_size == 0 {
            20
        } else {
            self.sample_size
        };
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("").bench_function(id, f);
        self
    }
}

/// Bundles benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` from one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
