//! A dependency-free, std-only stand-in for the subset of the `rand` crate
//! this workspace uses: [`Rng`], [`TryRng`], [`RngExt`], [`SeedableRng`],
//! and [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64).
//!
//! The workspace must build with no registry access, so the real `rand`
//! cannot be fetched; this crate is wired in by path from the workspace
//! manifest. Only the API surface actually exercised by the workspace is
//! provided. Generators here are deterministic, reproducible, and **not**
//! cryptographically secure — exactly the contract the consensus protocols
//! need for their local coins.

use std::convert::Infallible;
use std::ops::{Range, RangeInclusive};

/// A fallible random number generator.
///
/// Mirrors `rand`'s fallible core trait: infallible generators implement
/// this with `Error = Infallible` and get [`Rng`] for free via the blanket
/// impl.
pub trait TryRng {
    /// The error type returned by a failed generation.
    type Error;

    /// Returns the next random `u32`.
    fn try_next_u32(&mut self) -> Result<u32, Self::Error>;

    /// Returns the next random `u64`.
    fn try_next_u64(&mut self) -> Result<u64, Self::Error>;

    /// Fills `dst` with random bytes.
    fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Self::Error>;
}

/// An infallible random number generator (object safe).
pub trait Rng {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dst` with random bytes.
    fn fill_bytes(&mut self, dst: &mut [u8]);
}

impl<T: TryRng<Error = Infallible>> Rng for T {
    fn next_u32(&mut self) -> u32 {
        match self.try_next_u32() {
            Ok(v) => v,
        }
    }

    fn next_u64(&mut self) -> u64 {
        match self.try_next_u64() {
            Ok(v) => v,
        }
    }

    fn fill_bytes(&mut self, dst: &mut [u8]) {
        match self.try_fill_bytes(dst) {
            Ok(()) => {}
        }
    }
}

/// A range that [`RngExt::random_range`] can sample from uniformly.
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;

    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from(self, rng: &mut (impl Rng + ?Sized)) -> Self::Output;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut (impl Rng + ?Sized)) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + sample_below(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut (impl Rng + ?Sized)) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + sample_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut (impl Rng + ?Sized)) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(sample_below(rng, span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut (impl Rng + ?Sized)) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = end.wrapping_sub(start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(sample_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;

    fn sample_from(self, rng: &mut (impl Rng + ?Sized)) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = unit_f64(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;

    fn sample_from(self, rng: &mut (impl Rng + ?Sized)) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = unit_f64(rng) as f32;
        self.start + unit * (self.end - self.start)
    }
}

/// Uniform sample in `[0, 1)` with 53 bits of precision.
fn unit_f64(rng: &mut (impl Rng + ?Sized)) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform sample in `[0, span)` via 128-bit widening multiply.
///
/// The modulo bias of this method is below `span / 2^64`, far below
/// anything the workspace's statistical tests can detect.
fn sample_below(rng: &mut (impl Rng + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`]
/// (including `dyn Rng`).
pub trait RngExt: Rng {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        unit_f64(self) < p
    }

    /// Draws a uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// A generator that can be created from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 so
    /// that nearby seeds give uncorrelated streams.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{SeedableRng, TryRng};
    use std::convert::Infallible;

    /// A small, fast, non-cryptographic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> SmallRng {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro256++ requires a nonzero state.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            SmallRng { s }
        }
    }

    impl TryRng for SmallRng {
        type Error = Infallible;

        fn try_next_u32(&mut self) -> Result<u32, Infallible> {
            Ok((self.try_next_u64()? >> 32) as u32)
        }

        fn try_next_u64(&mut self) -> Result<u64, Infallible> {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            Ok(result)
        }

        fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Infallible> {
            for chunk in dst.chunks_mut(8) {
                let bytes = self.try_next_u64()?.to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn nearby_seeds_decorrelate() {
        let mut a = SmallRng::seed_from_u64(0);
        let mut b = SmallRng::seed_from_u64(1);
        let matches = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.random_range(5u64..17);
            assert!((5..17).contains(&v));
            let w = rng.random_range(1..=8usize);
            assert!((1..=8).contains(&w));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn range_samples_cover_all_values() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.random_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "{hits}");
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn dyn_rng_supports_ext_methods() {
        let mut rng = SmallRng::seed_from_u64(0);
        let dyn_rng: &mut dyn Rng = &mut rng;
        let v = dyn_rng.random_range(0..10u32);
        assert!(v < 10);
        let _ = dyn_rng.random_bool(0.5);
    }
}
