//! `any::<T>()`: strategies for whole primitive domains.

use std::fmt::Debug;

use rand::rngs::SmallRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws one uniformly distributed value of the full domain.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the entire domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        marker: std::marker::PhantomData,
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
