//! Collection strategies.

use std::ops::Range;

use rand::rngs::SmallRng;
use rand::RngExt;

use crate::strategy::Strategy;

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = if self.len.start + 1 >= self.len.end {
            self.len.start
        } else {
            rng.random_range(self.len.clone())
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// A strategy for vectors of `element` with a length drawn from `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}
