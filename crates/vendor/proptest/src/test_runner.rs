//! Case execution: configuration, deterministic per-case RNGs, and the
//! failure type that `prop_assert!` and `?` produce.

use std::fmt;
use std::hash::{DefaultHasher, Hash, Hasher};

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Configuration for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to sample per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Applies the `PROPTEST_CASES` environment override to a configured count.
pub fn resolve_cases(configured: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(configured)
}

/// A deterministic RNG for case `case` of the property named `name`.
pub fn case_rng(name: &str, case: u32) -> SmallRng {
    let mut hasher = DefaultHasher::new();
    name.hash(&mut hasher);
    case.hash(&mut hasher);
    SmallRng::seed_from_u64(hasher.finish())
}

/// Why one sampled case failed.
///
/// Produced by `prop_assert!` and by `?` on any error type (the `From`
/// impl covers everything implementing [`std::error::Error`]).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure carrying `message`.
    pub fn fail(message: String) -> TestCaseError {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl<E: std::error::Error> From<E> for TestCaseError {
    fn from(err: E) -> TestCaseError {
        TestCaseError {
            message: err.to_string(),
        }
    }
}
