//! A dependency-free stand-in for the subset of `proptest` this workspace
//! uses: the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`,
//! range and tuple strategies, [`arbitrary::any`], [`collection::vec`],
//! `prop_assert!`/`prop_assert_eq!`, and [`test_runner::ProptestConfig`].
//!
//! The workspace must build with no registry access, so the real `proptest`
//! cannot be fetched. This implementation samples randomly (deterministic
//! per test name) but does **not** shrink failing inputs: a failure panics
//! with the sampled values instead of a minimized counterexample. Set
//! `PROPTEST_CASES` to change the number of cases per property.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) so the runner can report the sampled inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Asserts two values are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples its strategies for a number of cases
/// and runs the body, reporting the sampled inputs on failure.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let cases = $crate::test_runner::resolve_cases(config.cases);
            for case in 0..cases {
                let mut __rng = $crate::test_runner::case_rng(stringify!($name), case);
                let mut __inputs = ::std::string::String::new();
                $(
                    let $pat = {
                        let value =
                            $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                        __inputs.push_str(&format!(
                            "\n  {} = {:?}",
                            stringify!($pat),
                            &value
                        ));
                        value
                    };
                )+
                let outcome: ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(err) = outcome {
                    panic!(
                        "property {} failed at case {case}/{cases}: {err}\ninputs:{}",
                        stringify!($name),
                        __inputs
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}
