//! Sampling-only strategies: the value-generation half of proptest.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::RngExt;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no shrinking: `sample` draws one value.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut SmallRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        self.inner.sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut SmallRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
