//! The one error type for store submissions.

use std::error::Error;
use std::fmt;

use mc_runtime::EngineError;

/// Why a command submitted to a
/// [`ReplicatedStore`](crate::ReplicatedStore) did not produce a state-
/// machine response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreError {
    /// The underlying consensus path failed to order the command's batch
    /// (worker death past its restart budget, admission permanently
    /// refused). The batch was abandoned; the command was never applied.
    Ordering(EngineError),
    /// The command's sequence number predates the session's last applied
    /// one — the session table's cached response has already been
    /// overwritten, so not even the duplicate answer survives. A client
    /// that respects the sequential-session discipline (retry a command
    /// only until its response arrives) never sees this.
    Stale {
        /// The session's last applied sequence number.
        last_seq: u64,
    },
    /// The store is shutting down; the command was refused at intake and
    /// never ordered.
    Shutdown,
    /// A [`CommandHandle::wait_timeout`](crate::CommandHandle::wait_timeout)
    /// elapsed first. The command is still in flight: waiting again can
    /// succeed.
    Timeout,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Ordering(e) => write!(f, "consensus ordering failed: {e}"),
            StoreError::Stale { last_seq } => {
                write!(
                    f,
                    "sequence number predates the session's last ({last_seq})"
                )
            }
            StoreError::Shutdown => write!(f, "the store is shut down"),
            StoreError::Timeout => write!(f, "timed out waiting for the response"),
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Ordering(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for StoreError {
    fn from(e: EngineError) -> StoreError {
        StoreError::Ordering(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_display_and_chain_sources() {
        let e = StoreError::Ordering(EngineError::Poisoned);
        assert!(e.to_string().contains("worker died"));
        assert!(e.source().is_some());
        assert!(StoreError::Stale { last_seq: 4 }.to_string().contains('4'));
        assert!(StoreError::Shutdown.source().is_none());
        assert_ne!(
            StoreError::Timeout.to_string(),
            StoreError::Shutdown.to_string()
        );
    }
}
