//! The state-machine contract a [`ReplicatedStore`](crate::ReplicatedStore)
//! replicates.

/// A deterministic state machine driven by totally-ordered commands.
///
/// The replication layer guarantees every replica applies the same
/// commands in the same order; **determinism is the machine's half of the
/// bargain**: `apply` must depend only on the current state and the
/// command — no clocks, no randomness, no ambient I/O — or replicas
/// diverge silently.
///
/// Snapshot/restore is the compaction hook: the store captures
/// [`snapshot`](StateMachine::snapshot) at a configurable cadence and
/// compacts the log below the applied index, so retained log stays
/// bounded by apply lag instead of growing per command. `restore` must be
/// `snapshot`'s exact inverse: `S::restore(&s.snapshot())` behaves
/// identically to `s` on every future command sequence.
pub trait StateMachine: Send + 'static {
    /// One operation on the machine. Cloned into retries and batches.
    type Command: Clone + Send + 'static;
    /// What one command returns. Cached per session for duplicate
    /// suppression, so it must be cloneable.
    type Response: Clone + Send + 'static;
    /// A frozen copy of the whole state.
    type Snapshot: Clone + Send + 'static;

    /// Applies one command, mutating the state and producing the response
    /// the issuing client sees. Must be deterministic.
    fn apply(&mut self, command: &Self::Command) -> Self::Response;

    /// Captures the current state.
    fn snapshot(&self) -> Self::Snapshot;

    /// Rebuilds a machine from a snapshot. Must invert
    /// [`snapshot`](StateMachine::snapshot) exactly.
    fn restore(snapshot: &Self::Snapshot) -> Self;
}
