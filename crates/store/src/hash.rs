//! A fast non-cryptographic hasher for the store's `u64`-keyed tables.
//!
//! The session table, lease table, and [`KvStore`](crate::KvStore) map
//! all sit on the apply worker's critical path and are keyed by ids the
//! store (or its own clients) assign — SipHash's hash-flooding resistance
//! buys nothing there, while its per-operation cost is measurable at
//! millions of commands per second, and growth rehashes the whole table.
//! This hasher finalizes each `u64` with the splitmix64 mixing function,
//! which scrambles sequential client ids into well-distributed buckets in
//! a handful of arithmetic instructions.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed through [`FastHasher`].
pub(crate) type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// splitmix64-finalizing [`Hasher`] for fixed-width integer keys.
#[derive(Clone, Copy, Default)]
pub(crate) struct FastHasher(u64);

impl Hasher for FastHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    /// Byte-stream fallback (FNV-1a) so non-integer keys still hash
    /// correctly; the store's tables never take this path.
    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }

    fn write_u64(&mut self, n: u64) {
        let mut z = self.0 ^ n;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.0 = z ^ (z >> 31);
    }

    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_ids_spread_across_low_bits() {
        // Table indices come from the low bits of the hash; sequential
        // client ids must not collide there the way identity hashing would.
        let mask = 0xFFF;
        let mut buckets = std::collections::HashSet::new();
        for id in 0u64..4096 {
            let mut h = FastHasher::default();
            h.write_u64(id);
            buckets.insert(h.finish() & mask);
        }
        // A uniform random spray of 4096 balls into 4096 bins hits ~63%
        // of them; anything above half rules out degenerate clustering.
        assert!(
            buckets.len() > 2048,
            "only {} distinct buckets",
            buckets.len()
        );
    }

    #[test]
    fn byte_fallback_distinguishes_inputs() {
        let hash = |bytes: &[u8]| {
            let mut h = FastHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_ne!(hash(b"alpha"), hash(b"beta"));
        assert_ne!(hash(b""), hash(b"\0"));
    }
}
