//! The store end of the unified builder chain:
//! `ConsensusBuilder → EngineBuilder → ServiceBuilder → StoreBuilder`.

use std::sync::Arc;
use std::time::Duration;

use mc_runtime::{
    AtomicMemory, BackpressurePolicy, ChaosPlan, CircuitOptions, ConciliatorChoice, ReplicatedLog,
    ServiceBuilder, SharedMemory, SupervisorOptions,
};
use mc_telemetry::Recorder;

use crate::machine::StateMachine;
use crate::store::ReplicatedStore;

/// Store-layer knobs, separate from the consensus/engine/service knobs
/// the builder passes through.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Proposer threads ordering batches — also the consensus `n` and the
    /// engine's `participants` (each sequencer submits exactly once per
    /// slot, retiring the instance). Default 2.
    pub sequencers: usize,
    /// Maximum commands drafted into one batch (one log slot). Group
    /// commit: one consensus round orders up to this many commands.
    /// Default 512.
    pub batch_commands: usize,
    /// Command-slab capacity: batches formed but not yet applied. Bounds
    /// the consensus value space to `max_inflight_batches + 1` codes.
    /// Default 1024.
    pub max_inflight_batches: usize,
    /// Capture a state-machine snapshot every this many applied slots
    /// (riding the same pass that compacts the log). `0` disables
    /// snapshots. Default 1024.
    pub snapshot_every: u64,
    /// Read-lease lifetime for lease-gated fast reads. Default 5ms.
    pub lease_ttl: Duration,
    /// Capacity hint for the session table. Workloads that open sessions
    /// by the million (one per client id) pay a full-table rehash every
    /// time the map doubles; pre-sizing to the expected session count
    /// removes that from the apply worker's critical path. `0` (the
    /// default) starts empty and grows on demand.
    pub expected_sessions: usize,
}

impl Default for StoreOptions {
    fn default() -> StoreOptions {
        StoreOptions {
            sequencers: 2,
            batch_commands: 512,
            max_inflight_batches: 1024,
            snapshot_every: 1024,
            lease_ttl: Duration::from_millis(5),
            expected_sessions: 0,
        }
    }
}

/// Builds a [`ReplicatedStore`]: store knobs here, everything beneath
/// (conciliator choice, sharding, workers, backpressure, supervision,
/// chaos, circuit breaker) passed through to the wrapped
/// [`ServiceBuilder`] — one fluent chain from coin flips to KV responses.
///
/// ```
/// use mc_store::{KvStore, ReplicatedStore};
///
/// let store = ReplicatedStore::<KvStore>::builder()
///     .sequencers(3)
///     .batch_commands(64)
///     .build();
/// # drop(store);
/// ```
#[derive(Debug)]
pub struct StoreBuilder<S: StateMachine, M: SharedMemory = AtomicMemory> {
    service: ServiceBuilder<M>,
    options: StoreOptions,
    initial: S,
}

impl<S: StateMachine + Default> StoreBuilder<S> {
    /// A builder with default options and `S::default()` as the initial
    /// state.
    pub fn new() -> StoreBuilder<S> {
        StoreBuilder {
            service: ServiceBuilder::new(),
            options: StoreOptions::default(),
            initial: S::default(),
        }
    }
}

impl<S: StateMachine + Default> Default for StoreBuilder<S> {
    fn default() -> StoreBuilder<S> {
        StoreBuilder::new()
    }
}

impl<S: StateMachine, M: SharedMemory> StoreBuilder<S, M> {
    // ---- store knobs -------------------------------------------------

    /// Proposer threads (consensus `n` / engine `participants`).
    pub fn sequencers(mut self, sequencers: usize) -> Self {
        self.options.sequencers = sequencers.max(1);
        self
    }

    /// Maximum commands per batch (per log slot).
    pub fn batch_commands(mut self, commands: usize) -> Self {
        self.options.batch_commands = commands.max(1);
        self
    }

    /// Command-slab capacity (batches in flight between formation and
    /// apply).
    pub fn max_inflight_batches(mut self, batches: usize) -> Self {
        self.options.max_inflight_batches = batches.max(1);
        self
    }

    /// Snapshot cadence in applied slots (`0` disables).
    pub fn snapshot_every(mut self, slots: u64) -> Self {
        self.options.snapshot_every = slots;
        self
    }

    /// Read-lease lifetime for fast reads.
    pub fn lease_ttl(mut self, ttl: Duration) -> Self {
        self.options.lease_ttl = ttl;
        self
    }

    /// Pre-sizes the session table for workloads with a known client
    /// population; see [`StoreOptions::expected_sessions`].
    pub fn expected_sessions(mut self, sessions: usize) -> Self {
        self.options.expected_sessions = sessions;
        self
    }

    /// Replaces every store knob at once.
    pub fn options(mut self, options: StoreOptions) -> Self {
        self.options = options;
        self.options.sequencers = self.options.sequencers.max(1);
        self.options.batch_commands = self.options.batch_commands.max(1);
        self.options.max_inflight_batches = self.options.max_inflight_batches.max(1);
        self
    }

    /// Starts the machine from `initial` instead of `S::default()`.
    pub fn initial_state(mut self, initial: S) -> Self {
        self.initial = initial;
        self
    }

    /// Starts the machine from a snapshot — [`StateMachine::restore`]'s
    /// builder-side entry point.
    pub fn restore_from(mut self, snapshot: &S::Snapshot) -> Self {
        self.initial = S::restore(snapshot);
        self
    }

    // ---- service/engine/consensus passthroughs -----------------------

    /// Conciliator powering each slot's consensus; see
    /// [`ServiceBuilder::conciliator`].
    pub fn conciliator(mut self, choice: ConciliatorChoice) -> Self {
        self.service = self.service.conciliator(choice);
        self
    }

    /// Telemetry recorder threaded down the whole stack.
    pub fn recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.service = self.service.recorder(recorder);
        self
    }

    /// Swaps the shared-memory implementation (chaos memory, recorders).
    pub fn memory<M2: SharedMemory>(self, memory: M2) -> StoreBuilder<S, M2> {
        StoreBuilder {
            service: self.service.memory(memory),
            options: self.options,
            initial: self.initial,
        }
    }

    /// Engine shard count; see [`ServiceBuilder::shards`].
    pub fn shards(mut self, shards: usize) -> Self {
        self.service = self.service.shards(shards);
        self
    }

    /// Service worker threads; see [`ServiceBuilder::workers`].
    pub fn workers(mut self, workers: usize) -> Self {
        self.service = self.service.workers(workers);
        self
    }

    /// Intake-ring capacity; see [`ServiceBuilder::ring_capacity`].
    pub fn ring_capacity(mut self, capacity: usize) -> Self {
        self.service = self.service.ring_capacity(capacity);
        self
    }

    /// Worker drain batch bound; see [`ServiceBuilder::batch_max`].
    pub fn batch_max(mut self, batch: usize) -> Self {
        self.service = self.service.batch_max(batch);
        self
    }

    /// Admission policy when the intake ring is full; see
    /// [`ServiceBuilder::backpressure`].
    pub fn backpressure(mut self, policy: BackpressurePolicy) -> Self {
        self.service = self.service.backpressure(policy);
        self
    }

    /// Seed for the stack's deterministic randomness.
    pub fn seed(mut self, seed: u64) -> Self {
        self.service = self.service.seed(seed);
        self
    }

    /// Worker supervision; see [`ServiceBuilder::supervisor`].
    pub fn supervisor(mut self, supervisor: SupervisorOptions) -> Self {
        self.service = self.service.supervisor(supervisor);
        self
    }

    /// Worker restart budget; see [`ServiceBuilder::restart_budget`].
    pub fn restart_budget(mut self, budget: u32) -> Self {
        self.service = self.service.restart_budget(budget);
        self
    }

    /// Fault-injection plan; see [`ServiceBuilder::chaos`].
    pub fn chaos(mut self, plan: ChaosPlan) -> Self {
        self.service = self.service.chaos(plan);
        self
    }

    /// Circuit breaker; see [`ServiceBuilder::circuit`].
    pub fn circuit(mut self, circuit: CircuitOptions) -> Self {
        self.service = self.service.circuit(circuit);
        self
    }

    // ---- build -------------------------------------------------------

    /// Builds the service (consensus `n` = engine `participants` =
    /// `sequencers`; value space = slab capacity + 1 for the no-op code),
    /// wires an externally-driven [`ReplicatedLog`], and starts the
    /// store's sequencer and apply threads.
    pub fn build(self) -> ReplicatedStore<S, M> {
        let values = self.options.max_inflight_batches as u64 + 1;
        let service = self
            .service
            .n(self.options.sequencers)
            .values(values)
            .participants(self.options.sequencers)
            .build();
        let log = ReplicatedLog::new(self.options.sequencers, values);
        ReplicatedStore::start(service, log, self.options, self.initial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::{KvCommand, KvResponse, KvStore};

    #[test]
    fn defaults_are_documented() {
        let options = StoreOptions::default();
        assert_eq!(options.sequencers, 2);
        assert_eq!(options.batch_commands, 512);
        assert_eq!(options.max_inflight_batches, 1024);
        assert_eq!(options.snapshot_every, 1024);
        assert_eq!(options.lease_ttl, Duration::from_millis(5));
        assert_eq!(options.expected_sessions, 0);
    }

    #[test]
    fn degenerate_knobs_are_clamped_to_one() {
        let mut store = StoreBuilder::<KvStore>::new()
            .sequencers(0)
            .batch_commands(0)
            .max_inflight_batches(0)
            .snapshot_every(0)
            .build();
        let mut client = store.client();
        assert_eq!(
            client.call(KvCommand::Put { key: 1, value: 1 }).unwrap(),
            KvResponse::Stored(None)
        );
        store.shutdown();
    }

    #[test]
    fn restore_from_resumes_a_snapshotted_machine() {
        let snapshot = vec![(1u64, 10u64), (2, 20)];
        let mut store = StoreBuilder::<KvStore>::new()
            .restore_from(&snapshot)
            .sequencers(1)
            .build();
        assert_eq!(store.read_with(1, |kv| kv.get(2)), Some(20));
        let mut client = store.client();
        assert_eq!(
            client.call(KvCommand::Get { key: 1 }).unwrap(),
            KvResponse::Value(Some(10))
        );
        store.shutdown();
    }

    #[test]
    fn passthroughs_compose_with_store_knobs() {
        let mut store = StoreBuilder::<KvStore>::new()
            .seed(7)
            .workers(2)
            .shards(2)
            .ring_capacity(256)
            .sequencers(2)
            .batch_commands(4)
            .lease_ttl(Duration::from_millis(1))
            .build();
        let mut client = store.client();
        for i in 0..10 {
            client.call(KvCommand::Put { key: i, value: i }).unwrap();
        }
        assert_eq!(store.applied_commands(), 10);
        store.shutdown();
    }
}
