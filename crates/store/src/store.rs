//! The replicated store: group-commit sequencers ordering command batches
//! through the consensus service, a dedicated apply worker, and the
//! session table that makes delivery exactly-once.
//!
//! # How a command becomes a response
//!
//! 1. [`ReplicatedStore::submit`] parks the command (with its client id,
//!    sequence number, and a response cell) in the intake queue.
//! 2. A **sequencer** drains up to `batch_commands` pending commands into
//!    a batch, interns it in the command slab (its index + 1 is the
//!    batch's *code* — code 0 is the no-op), and proposes the code for
//!    its current slot through the [`ConsensusService`]. Consensus picks
//!    one code per slot; a losing sequencer re-proposes the same batch at
//!    the next slot. Decisions are recorded into the [`ReplicatedLog`]
//!    via [`learn_decided`](ReplicatedLog::learn_decided).
//! 3. The **apply worker** walks the log's learned prefix in slot order,
//!    resolves each code back to its batch, applies each command through
//!    the session table (duplicates answered from the cache, never
//!    re-applied), fills the response cells, and compacts the log below
//!    the applied index — capturing a state-machine snapshot at the
//!    configured cadence.
//!
//! # Why every sequencer touches every slot
//!
//! The engine retires a consensus instance after exactly `participants`
//! submissions, so the store runs `sequencers` proposer threads and each
//! submits exactly once per slot — a real batch when it has one, the
//! no-op code when idle or catching up to the decision frontier. An idle
//! sequencer therefore trails the frontier retiring decided slots, and
//! the whole store quiesces (no spinning) when no commands are pending.

use std::collections::hash_map::Entry;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use mc_runtime::clock;
use mc_runtime::{
    AtomicMemory, ConsensusService, EngineError, ReplicatedLog, RuntimeTelemetry, SharedMemory,
};

use crate::builder::{StoreBuilder, StoreOptions};
use crate::cell::{CommandHandle, ResponseCell};
use crate::error::StoreError;
use crate::hash::FastMap;
use crate::kv::KvStore;
use crate::machine::StateMachine;

/// The reserved "empty slot" command code. Real batch codes are
/// `1..=max_inflight_batches`.
const NOOP: u64 = 0;

/// Admission-refusal retries a sequencer attempts (50µs apart) before
/// declaring the ordering path dead. Only reachable under non-blocking
/// backpressure policies; the default `Block` policy never refuses.
const ORDER_RETRY_LIMIT: u32 = 2_000;

/// One submitted command waiting to be ordered and applied.
struct Pending<S: StateMachine> {
    client: u64,
    seq: u64,
    command: S::Command,
    cell: Arc<ResponseCell<S::Response>>,
}

/// Intake queue: commands submitted but not yet drafted into a batch.
struct Intake<S: StateMachine> {
    queue: VecDeque<Pending<S>>,
    closed: bool,
}

/// The command table: in-flight batches, addressed by code − 1. A code is
/// allocated when a sequencer forms a batch and freed when the apply
/// worker consumes the batch at its decided slot — so a code can never
/// denote two different batches among unapplied slots.
struct Slab<S: StateMachine> {
    entries: Vec<Option<Vec<Pending<S>>>>,
    free: Vec<usize>,
}

impl<S: StateMachine> Slab<S> {
    fn with_capacity(cap: usize) -> Slab<S> {
        Slab {
            entries: (0..cap).map(|_| None).collect(),
            free: (0..cap).rev().collect(),
        }
    }

    fn alloc(&mut self, batch: Vec<Pending<S>>) -> Option<u64> {
        let ix = self.free.pop()?;
        self.entries[ix] = Some(batch);
        Some(ix as u64 + 1)
    }

    fn take(&mut self, code: u64) -> Vec<Pending<S>> {
        let ix = (code - 1) as usize;
        let batch = self.entries[ix].take().expect("code maps to a live batch");
        self.free.push(ix);
        batch
    }
}

/// One client session's exactly-once state: the last applied sequence
/// number and its cached response. Clients are sequential (a command is
/// retried only until its response arrives), so one cached response per
/// session suffices — the viewstamped-replication client-table model.
struct Session<R> {
    last_seq: u64,
    last_response: R,
}

struct StoreInner<S: StateMachine, M: SharedMemory> {
    service: ConsensusService<M>,
    /// External-drive mode: sequencers run consensus through `service`
    /// and record outcomes with `learn_decided`; the log keeps the
    /// learned prefix, entry storage, and compaction machinery.
    log: ReplicatedLog,
    options: StoreOptions,
    intake: Mutex<Intake<S>>,
    /// Paired with `intake`: wakes sequencers on new work, frontier
    /// advance, apply progress (slab space), and shutdown.
    work_cv: Condvar,
    slab: Mutex<Slab<S>>,
    state: Mutex<S>,
    sessions: Mutex<FastMap<u64, Session<S::Response>>>,
    /// Read leases by client id: expiry instants from the shared
    /// monotonic-clock helper.
    leases: Mutex<FastMap<u64, Instant>>,
    latest_snapshot: Mutex<Option<(u64, S::Snapshot)>>,
    /// 1 + highest slot any sequencer has learned decided; the next fresh
    /// slot. Idle sequencers trail this, retiring decided slots.
    frontier: AtomicU64,
    apply_mx: Mutex<()>,
    apply_cv: Condvar,
    shutdown: AtomicBool,
    sequencers_live: AtomicU64,
    next_client: AtomicU64,
}

impl<S: StateMachine, M: SharedMemory> StoreInner<S, M> {
    fn telemetry(&self) -> &RuntimeTelemetry {
        self.service.telemetry()
    }

    fn lock_intake(&self) -> std::sync::MutexGuard<'_, Intake<S>> {
        self.intake.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues one command, returning its handle. A closed intake
    /// answers [`StoreError::Shutdown`] immediately.
    fn submit(&self, client: u64, seq: u64, command: S::Command) -> CommandHandle<S::Response> {
        let cell = Arc::new(ResponseCell::new());
        let handle = CommandHandle::new(Arc::clone(&cell));
        let mut intake = self.lock_intake();
        if intake.closed {
            drop(intake);
            cell.fill(Err(StoreError::Shutdown));
            return handle;
        }
        intake.queue.push_back(Pending {
            client,
            seq,
            command,
            cell,
        });
        drop(intake);
        self.work_cv.notify_one();
        handle
    }

    /// Drafts up to `batch_commands` pending commands into a slab batch,
    /// returning its code — `None` when the slab is full (apply lag; the
    /// apply worker's progress will wake us).
    fn try_form_batch(&self, intake: &mut Intake<S>) -> Option<u64> {
        let mut slab = self.slab.lock().unwrap_or_else(PoisonError::into_inner);
        if slab.free.is_empty() {
            return None;
        }
        let take = intake.queue.len().min(self.options.batch_commands);
        let batch: Vec<Pending<S>> = intake.queue.drain(..take).collect();
        slab.alloc(batch)
    }

    /// Proposes `code` for `slot` through the consensus service and waits
    /// for the slot's decision.
    fn order(&self, slot: u64, code: u64) -> Result<u64, StoreError> {
        let mut refusals = 0u32;
        loop {
            match self.service.submit(slot, code) {
                Ok(handle) => return handle.wait().map_err(StoreError::Ordering),
                Err(
                    e @ (EngineError::Rejected
                    | EngineError::Shed { .. }
                    | EngineError::CircuitOpen
                    | EngineError::RetriesExhausted { .. }),
                ) => {
                    refusals += 1;
                    if refusals > ORDER_RETRY_LIMIT {
                        return Err(StoreError::Ordering(e));
                    }
                    std::thread::sleep(std::time::Duration::from_micros(50));
                }
                Err(e) => return Err(StoreError::Ordering(e)),
            }
        }
    }

    /// Fails every command of a fatally-stranded batch and poisons the
    /// store so later submissions are refused at intake.
    fn fail_batch(&self, code: Option<u64>, error: StoreError) {
        if let Some(code) = code {
            let batch = {
                let mut slab = self.slab.lock().unwrap_or_else(PoisonError::into_inner);
                slab.take(code)
            };
            for pending in batch {
                pending.cell.fill(Err(error));
            }
        }
        self.shutdown.store(true, Ordering::Release);
        {
            let mut intake = self.lock_intake();
            intake.closed = true;
            self.work_cv.notify_all();
        }
        let _g = self.apply_mx.lock().unwrap_or_else(PoisonError::into_inner);
        self.apply_cv.notify_all();
    }

    /// One sequencer's life: visit slots in order, proposing a real batch
    /// when one is pending and the no-op when idle-but-behind, learning
    /// every decision into the log.
    fn run_sequencer(self: &Arc<Self>) {
        let mut cursor: u64 = 0;
        let mut current: Option<u64> = None;
        loop {
            if current.is_none() {
                let mut intake = self.lock_intake();
                loop {
                    if !intake.queue.is_empty() {
                        current = self.try_form_batch(&mut intake);
                        if current.is_some() {
                            break;
                        }
                        // Slab full: if behind the frontier we can still
                        // do useful catch-up work; otherwise wait for the
                        // apply worker to free a code.
                    }
                    if cursor < self.frontier.load(Ordering::Acquire) {
                        break;
                    }
                    if self.shutdown.load(Ordering::Acquire) && intake.queue.is_empty() {
                        self.note_sequencer_exit();
                        return;
                    }
                    intake = self
                        .work_cv
                        .wait(intake)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
            // Propose the real batch only at a slot at (or past) the
            // observed frontier. A slot behind the frontier is already
            // decided, and its stale decision can equal our code from the
            // code's *previous* life in the slab — which would read as "we
            // won" and strand the batch. At `cursor >= frontier` that
            // aliasing is impossible: the code's previous owner stopped
            // proposing at its winning slot, which apply passed before the
            // code was recycled to us, so `decided == code` here can only
            // mean this very batch won.
            let proposal = if current.is_some() && cursor >= self.frontier.load(Ordering::Acquire) {
                current.unwrap_or(NOOP)
            } else {
                NOOP
            };
            let decided = match self.order(cursor, proposal) {
                Ok(v) => v,
                Err(e) => {
                    self.fail_batch(current.take(), e);
                    self.note_sequencer_exit();
                    return;
                }
            };
            self.log.learn_decided(cursor as usize, decided);
            let next = cursor + 1;
            if self.frontier.fetch_max(next, Ordering::AcqRel) < next {
                let _g = self.lock_intake();
                self.work_cv.notify_all();
            }
            {
                let _g = self.apply_mx.lock().unwrap_or_else(PoisonError::into_inner);
                self.apply_cv.notify_all();
            }
            if proposal != NOOP && decided == proposal {
                current = None;
            }
            cursor = next;
        }
    }

    fn note_sequencer_exit(&self) {
        self.sequencers_live.fetch_sub(1, Ordering::AcqRel);
        let _g = self.apply_mx.lock().unwrap_or_else(PoisonError::into_inner);
        self.apply_cv.notify_all();
    }

    /// The apply worker: walks the learned prefix in slot order, applies
    /// batches through the session table, fills response cells, snapshots
    /// at the configured cadence, and compacts the log behind itself.
    fn run_apply(self: &Arc<Self>) {
        let mut applied_slots: u64 = 0;
        let mut applied_commands: u64 = 0;
        let mut last_snapshot_slot: u64 = 0;
        loop {
            {
                let mut g = self.apply_mx.lock().unwrap_or_else(PoisonError::into_inner);
                loop {
                    if (self.log.learned_prefix() as u64) > applied_slots {
                        break;
                    }
                    if self.sequencers_live.load(Ordering::Acquire) == 0 {
                        return;
                    }
                    g = self
                        .apply_cv
                        .wait(g)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
            let prefix = self.log.learned_prefix() as u64;
            while applied_slots < prefix {
                let code = self
                    .log
                    .get(applied_slots as usize)
                    .expect("slot below the learned prefix is readable");
                if code != NOOP {
                    let batch = {
                        let mut slab = self.slab.lock().unwrap_or_else(PoisonError::into_inner);
                        slab.take(code)
                    };
                    applied_commands += self.apply_batch(batch, applied_commands);
                }
                applied_slots += 1;
            }
            if self.options.snapshot_every > 0
                && applied_slots - last_snapshot_slot >= self.options.snapshot_every
            {
                let snapshot = {
                    let state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
                    state.snapshot()
                };
                *self
                    .latest_snapshot
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner) = Some((applied_commands, snapshot));
                self.telemetry().on_store_snapshot();
                last_snapshot_slot = applied_slots;
            }
            // Retained log stays bounded by apply lag.
            self.log.compact_below(applied_slots as usize);
            // Freed slab codes may unblock batch formation.
            {
                let _g = self.lock_intake();
                self.work_cv.notify_all();
            }
        }
    }

    /// Applies one decided batch through the session table, returning how
    /// many commands actually mutated the machine (duplicates and stale
    /// retries excluded).
    fn apply_batch(&self, batch: Vec<Pending<S>>, applied_before: u64) -> u64 {
        let telemetry = self.telemetry();
        // Responses are buffered and released only after every counter for
        // the batch has been bumped: a caller that has observed its
        // response (and anything it implies completed) must also observe
        // that work in the telemetry ledger.
        let mut fills = Vec::with_capacity(batch.len());
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let mut sessions = self.sessions.lock().unwrap_or_else(PoisonError::into_inner);
        let mut applied = 0u64;
        for pending in batch {
            match sessions.entry(pending.client) {
                Entry::Vacant(vacant) => {
                    telemetry.on_session_created();
                    let response = state.apply(&pending.command);
                    vacant.insert(Session {
                        last_seq: pending.seq,
                        last_response: response.clone(),
                    });
                    fills.push((pending.cell, Ok(response)));
                    applied += 1;
                }
                Entry::Occupied(mut occupied) => {
                    let session = occupied.get_mut();
                    if pending.seq > session.last_seq {
                        let response = state.apply(&pending.command);
                        session.last_seq = pending.seq;
                        session.last_response = response.clone();
                        fills.push((pending.cell, Ok(response)));
                        applied += 1;
                    } else if pending.seq == session.last_seq {
                        telemetry.on_duplicate_served();
                        fills.push((pending.cell, Ok(session.last_response.clone())));
                    } else {
                        telemetry.on_stale_command();
                        fills.push((
                            pending.cell,
                            Err(StoreError::Stale {
                                last_seq: session.last_seq,
                            }),
                        ));
                    }
                }
            }
        }
        drop(sessions);
        drop(state);
        telemetry.on_commands_applied(applied, applied_before + applied);
        for (cell, result) in fills {
            cell.fill(result);
        }
        applied
    }

    /// Lease-gated fast read: checks (or grants) the client's read lease,
    /// then runs `f` against the applied state — no log slot consumed.
    fn read_with<R>(&self, client: u64, f: impl FnOnce(&S) -> R) -> R {
        let now = clock::now();
        let ttl = self.options.lease_ttl;
        {
            let mut leases = self.leases.lock().unwrap_or_else(PoisonError::into_inner);
            match leases.entry(client) {
                Entry::Occupied(mut occupied) => {
                    if *occupied.get() <= now {
                        *occupied.get_mut() = clock::deadline_from(now, ttl);
                        self.telemetry()
                            .on_lease_granted(client, true, ttl.as_nanos() as u64);
                    }
                }
                Entry::Vacant(vacant) => {
                    vacant.insert(clock::deadline_from(now, ttl));
                    self.telemetry()
                        .on_lease_granted(client, false, ttl.as_nanos() as u64);
                }
            }
        }
        self.telemetry().on_fast_read();
        let state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        f(&state)
    }
}

/// A linearizable replicated state machine over the consensus stack.
///
/// Construct with [`ReplicatedStore::builder`] (the end of the
/// `ConsensusBuilder → EngineBuilder → ServiceBuilder → StoreBuilder`
/// chain), obtain sessions with [`client`](ReplicatedStore::client), and
/// see the [crate docs](crate) for the data path. Dropping the store
/// drains in-flight commands and joins its worker threads.
pub struct ReplicatedStore<S: StateMachine, M: SharedMemory = AtomicMemory> {
    inner: Arc<StoreInner<S, M>>,
    sequencers: Vec<JoinHandle<()>>,
    apply: Option<JoinHandle<()>>,
}

impl<S: StateMachine + Default> ReplicatedStore<S> {
    /// The store end of the unified builder chain.
    pub fn builder() -> StoreBuilder<S> {
        StoreBuilder::new()
    }
}

impl<S: StateMachine, M: SharedMemory> ReplicatedStore<S, M> {
    /// Wires the store over an already-built service and log and starts
    /// its worker threads. Called by [`StoreBuilder::build`].
    pub(crate) fn start(
        service: ConsensusService<M>,
        log: ReplicatedLog,
        options: StoreOptions,
        initial: S,
    ) -> ReplicatedStore<S, M> {
        let sequencer_count = options.sequencers;
        let slab_capacity = options.max_inflight_batches;
        let mut sessions = FastMap::default();
        sessions.reserve(options.expected_sessions);
        let inner = Arc::new(StoreInner {
            service,
            log,
            options,
            intake: Mutex::new(Intake {
                queue: VecDeque::new(),
                closed: false,
            }),
            work_cv: Condvar::new(),
            slab: Mutex::new(Slab::with_capacity(slab_capacity)),
            state: Mutex::new(initial),
            sessions: Mutex::new(sessions),
            leases: Mutex::new(FastMap::default()),
            latest_snapshot: Mutex::new(None),
            frontier: AtomicU64::new(0),
            apply_mx: Mutex::new(()),
            apply_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            sequencers_live: AtomicU64::new(sequencer_count as u64),
            next_client: AtomicU64::new(1),
        });
        let sequencers = (0..sequencer_count)
            .map(|ix| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("mc-store-seq-{ix}"))
                    .spawn(move || inner.run_sequencer())
                    .expect("spawn sequencer")
            })
            .collect();
        let apply = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("mc-store-apply".into())
                .spawn(move || inner.run_apply())
                .expect("spawn apply worker")
        };
        ReplicatedStore {
            inner,
            sequencers,
            apply: Some(apply),
        }
    }

    /// A fresh client session with a store-unique client id.
    pub fn client(&self) -> StoreClient<S, M> {
        let id = self.inner.next_client.fetch_add(1, Ordering::Relaxed);
        self.client_with_id(id)
    }

    /// A session with an explicit client id — for tests and benchmarks
    /// that simulate many sessions, and for a client resuming an id it
    /// used before (the session table remembers its last sequence
    /// number). Two *concurrent* sessions sharing an id violate the
    /// sequential-session model and will see each other's commands as
    /// duplicates or stale.
    pub fn client_with_id(&self, client: u64) -> StoreClient<S, M> {
        StoreClient {
            inner: Arc::clone(&self.inner),
            client,
            seq: 0,
        }
    }

    /// Raw session-interface submit: enqueues `(client, seq, command)`
    /// for ordering and returns the response handle. Duplicate
    /// submissions of the same `(client, seq)` are answered exactly once
    /// from the session table's cache. Prefer [`StoreClient`] — it stamps
    /// the sequence numbers.
    pub fn submit(&self, client: u64, seq: u64, command: S::Command) -> CommandHandle<S::Response> {
        self.inner.submit(client, seq, command)
    }

    /// Batch submit under one intake lock — the producer-side
    /// amortization benchmarks use. Handles come back in input order.
    pub fn submit_batch(
        &self,
        items: impl IntoIterator<Item = (u64, u64, S::Command)>,
    ) -> Vec<CommandHandle<S::Response>> {
        let mut cells = Vec::new();
        let mut intake = self.inner.lock_intake();
        let closed = intake.closed;
        for (client, seq, command) in items {
            let cell = Arc::new(ResponseCell::new());
            cells.push(CommandHandle::new(Arc::clone(&cell)));
            if closed {
                cell.fill(Err(StoreError::Shutdown));
            } else {
                intake.queue.push_back(Pending {
                    client,
                    seq,
                    command,
                    cell,
                });
            }
        }
        drop(intake);
        self.inner.work_cv.notify_all();
        cells
    }

    /// Lease-gated fast read: runs `f` against the applied state under
    /// `client`'s read lease (granting or renewing it as needed), without
    /// consuming a log slot. Linearizable because responses are released
    /// only at apply time: every command whose response the caller could
    /// have observed is already in the applied state. The slow path — the
    /// read as a logged command, e.g. [`KvCommand::Get`] — is the
    /// conformance oracle for this fast path.
    ///
    /// [`KvCommand::Get`]: crate::KvCommand::Get
    pub fn read_with<R>(&self, client: u64, f: impl FnOnce(&S) -> R) -> R {
        self.inner.read_with(client, f)
    }

    /// The latest state-machine snapshot the apply worker captured, with
    /// the number of commands applied when it was taken. `None` before
    /// the first snapshot cadence elapses.
    pub fn latest_snapshot(&self) -> Option<(u64, S::Snapshot)> {
        self.inner
            .latest_snapshot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Aggregate metrics: the applied-index gauge, session-table
    /// counters, lease grants, plus everything the underlying service and
    /// engine count.
    pub fn telemetry(&self) -> &RuntimeTelemetry {
        self.inner.telemetry()
    }

    /// Slots the log has learned decided (contiguous prefix).
    pub fn learned_slots(&self) -> usize {
        self.inner.log.learned_prefix()
    }

    /// Commands applied to the state machine so far (duplicates excluded).
    pub fn applied_commands(&self) -> u64 {
        self.telemetry().commands_applied()
    }

    /// Drains in-flight commands and joins the worker threads. Called by
    /// `Drop`; explicit calls are idempotent. Every handle not yet
    /// answered resolves — applied commands with their responses, never-
    /// ordered ones with [`StoreError::Shutdown`].
    pub fn shutdown(&mut self) {
        {
            let mut intake = self.inner.lock_intake();
            intake.closed = true;
            self.inner.shutdown.store(true, Ordering::Release);
            self.inner.work_cv.notify_all();
        }
        for handle in self.sequencers.drain(..) {
            let _ = handle.join();
        }
        {
            let _g = self
                .inner
                .apply_mx
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            self.inner.apply_cv.notify_all();
        }
        if let Some(handle) = self.apply.take() {
            let _ = handle.join();
        }
        // A fatal sequencer exit can strand queued commands; fail them so
        // no waiter hangs.
        let leftovers: Vec<Pending<S>> = {
            let mut intake = self.inner.lock_intake();
            intake.queue.drain(..).collect()
        };
        for pending in leftovers {
            pending.cell.fill(Err(StoreError::Shutdown));
        }
    }
}

impl<S: StateMachine, M: SharedMemory> Drop for ReplicatedStore<S, M> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl<S: StateMachine, M: SharedMemory> std::fmt::Debug for ReplicatedStore<S, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicatedStore")
            .field("learned_slots", &self.learned_slots())
            .field("applied_commands", &self.applied_commands())
            .field("sequencers", &self.inner.options.sequencers)
            .finish_non_exhaustive()
    }
}

/// A client session: owns a client id and stamps per-session sequence
/// numbers, giving exactly-once application under retry. Sessions are
/// sequential — issue (and retry) one command until its response arrives
/// before moving to the next — which is what lets the session table cache
/// a single response per client.
pub struct StoreClient<S: StateMachine, M: SharedMemory = AtomicMemory> {
    inner: Arc<StoreInner<S, M>>,
    client: u64,
    seq: u64,
}

impl<S: StateMachine, M: SharedMemory> StoreClient<S, M> {
    /// This session's client id.
    pub fn id(&self) -> u64 {
        self.client
    }

    /// The sequence number of the most recently submitted command (0
    /// before the first).
    pub fn last_seq(&self) -> u64 {
        self.seq
    }

    /// Submits the next command and blocks for its response.
    ///
    /// # Errors
    ///
    /// As [`CommandHandle::wait`].
    pub fn call(&mut self, command: S::Command) -> Result<S::Response, StoreError> {
        self.submit(command).wait()
    }

    /// Submits the next command (stamping the next sequence number) and
    /// returns without waiting.
    pub fn submit(&mut self, command: S::Command) -> CommandHandle<S::Response> {
        self.seq += 1;
        self.inner.submit(self.client, self.seq, command)
    }

    /// Re-submits a command under an already-used sequence number — the
    /// retry path. However many copies land in the log, the command
    /// applies once; every copy's handle resolves with the same response
    /// (the extra copies served from the session cache).
    pub fn resend(&self, seq: u64, command: S::Command) -> CommandHandle<S::Response> {
        self.inner.submit(self.client, seq, command)
    }

    /// Lease-gated fast read under this session's lease; see
    /// [`ReplicatedStore::read_with`].
    pub fn read<R>(&self, f: impl FnOnce(&S) -> R) -> R {
        self.inner.read_with(self.client, f)
    }
}

impl<S: StateMachine, M: SharedMemory> std::fmt::Debug for StoreClient<S, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreClient")
            .field("client", &self.client)
            .field("seq", &self.seq)
            .finish()
    }
}

// The default store type parameter wants a name in rustdoc examples.
impl ReplicatedStore<KvStore> {
    /// A ready-to-use linearizable KV store with default options —
    /// shorthand for `ReplicatedStore::<KvStore>::builder().build()`.
    pub fn kv() -> ReplicatedStore<KvStore> {
        ReplicatedStore::<KvStore>::builder().build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::{KvCommand, KvResponse};

    fn small_store() -> ReplicatedStore<KvStore> {
        ReplicatedStore::<KvStore>::builder()
            .sequencers(2)
            .batch_commands(8)
            .snapshot_every(4)
            .build()
    }

    #[test]
    fn single_client_round_trips() {
        let mut store = small_store();
        let mut client = store.client();
        assert_eq!(
            client.call(KvCommand::Put { key: 1, value: 5 }).unwrap(),
            KvResponse::Stored(None)
        );
        assert_eq!(
            client.call(KvCommand::Get { key: 1 }).unwrap(),
            KvResponse::Value(Some(5))
        );
        assert_eq!(
            client
                .call(KvCommand::Cas {
                    key: 1,
                    expect: Some(5),
                    value: 6
                })
                .unwrap(),
            KvResponse::Swapped {
                applied: true,
                actual: Some(5)
            }
        );
        assert_eq!(
            client.call(KvCommand::Delete { key: 1 }).unwrap(),
            KvResponse::Removed(Some(6))
        );
        assert_eq!(store.applied_commands(), 4);
        store.shutdown();
    }

    #[test]
    fn duplicate_resends_apply_once_and_share_the_response() {
        let mut store = small_store();
        let mut client = store.client();
        client.call(KvCommand::Put { key: 9, value: 1 }).unwrap();
        let seq = client.last_seq();
        // Three duplicate deliveries of the same logical command.
        let retries: Vec<_> = (0..3)
            .map(|_| client.resend(seq, KvCommand::Put { key: 9, value: 1 }))
            .collect();
        for handle in retries {
            assert_eq!(handle.wait().unwrap(), KvResponse::Stored(None));
        }
        // The put applied exactly once: the stored "previous value" stayed
        // None, and the machine still holds 1.
        assert_eq!(
            client.call(KvCommand::Get { key: 9 }).unwrap(),
            KvResponse::Value(Some(1))
        );
        assert_eq!(store.telemetry().duplicates_served(), 3);
        assert_eq!(store.applied_commands(), 2);
        store.shutdown();
    }

    #[test]
    fn stale_sequence_numbers_are_refused() {
        let mut store = small_store();
        let mut client = store.client();
        client.call(KvCommand::Put { key: 1, value: 1 }).unwrap();
        client.call(KvCommand::Put { key: 1, value: 2 }).unwrap();
        let stale = client.resend(1, KvCommand::Put { key: 1, value: 1 });
        assert_eq!(stale.wait(), Err(StoreError::Stale { last_seq: 2 }));
        assert_eq!(store.telemetry().stale_commands(), 1);
        store.shutdown();
    }

    #[test]
    fn concurrent_clients_all_get_applied_exactly_once() {
        let mut store = ReplicatedStore::<KvStore>::builder()
            .sequencers(3)
            .batch_commands(16)
            .build();
        let clients = 6u64;
        let per_client = 40u64;
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let mut session = store.client_with_id(100 + c);
                std::thread::spawn(move || {
                    for i in 0..per_client {
                        let resp = session
                            .call(KvCommand::Put {
                                key: (100 + c) * 1_000 + i,
                                value: i,
                            })
                            .unwrap();
                        assert_eq!(resp, KvResponse::Stored(None));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.applied_commands(), clients * per_client);
        assert_eq!(store.telemetry().sessions_created(), clients);
        let total = store.read_with(999, |kv| kv.len());
        assert_eq!(total as u64, clients * per_client);
        store.shutdown();
    }

    #[test]
    fn fast_reads_observe_completed_writes_and_grant_leases() {
        let mut store = small_store();
        let mut client = store.client();
        client.call(KvCommand::Put { key: 3, value: 30 }).unwrap();
        assert_eq!(client.read(|kv| kv.get(3)), Some(30));
        let t = store.telemetry();
        assert_eq!(t.fast_reads(), 1);
        assert_eq!(t.lease_grants(), 1);
        // Within the TTL the second read rides the same lease.
        assert_eq!(client.read(|kv| kv.get(3)), Some(30));
        assert_eq!(store.telemetry().lease_grants(), 1);
        store.shutdown();
    }

    #[test]
    fn snapshots_ride_compaction_at_the_configured_cadence() {
        let mut store = ReplicatedStore::<KvStore>::builder()
            .sequencers(1)
            .batch_commands(1)
            .snapshot_every(2)
            .build();
        let mut client = store.client();
        for i in 0..20 {
            client.call(KvCommand::Put { key: i, value: i }).unwrap();
        }
        assert!(store.telemetry().store_snapshots() >= 1);
        let (applied_at, snapshot) = store.latest_snapshot().expect("cadence elapsed");
        assert!(applied_at >= 2);
        assert_eq!(snapshot.len() as u64, applied_at);
        // Compaction kept retention bounded: the log has dropped slots.
        assert!(store.inner.log.compacted_below() > 0);
        // Restore is snapshot's inverse.
        let restored = KvStore::restore(&snapshot);
        assert_eq!(restored.snapshot(), snapshot);
        store.shutdown();
    }

    #[test]
    fn submissions_after_shutdown_are_refused() {
        let mut store = small_store();
        let mut client = store.client();
        client.call(KvCommand::Put { key: 1, value: 1 }).unwrap();
        store.shutdown();
        assert_eq!(
            client.call(KvCommand::Put { key: 2, value: 2 }),
            Err(StoreError::Shutdown)
        );
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_is_clean() {
        let mut store = small_store();
        let mut client = store.client();
        client.call(KvCommand::Put { key: 1, value: 1 }).unwrap();
        store.shutdown();
        store.shutdown();
        drop(store);
    }

    #[test]
    fn batch_submit_preserves_input_order_of_handles() {
        let mut store = small_store();
        let handles = store.submit_batch((1..=10u64).map(|i| {
            (
                77,
                i,
                KvCommand::Put {
                    key: i,
                    value: i * 2,
                },
            )
        }));
        for (i, handle) in handles.iter().enumerate() {
            assert_eq!(
                handle.wait().unwrap(),
                KvResponse::Stored(None),
                "command {i}"
            );
        }
        assert_eq!(store.read_with(77, |kv| kv.get(10)), Some(20));
        store.shutdown();
    }
}
