//! The response cell a submitted command's caller waits on.

use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

use mc_runtime::clock;

use crate::error::StoreError;

/// One command's response slot: filled exactly once by the apply worker
/// (or by teardown), waited on by the submitting client. First fill wins;
/// later fills are ignored, which makes teardown's blanket error fill
/// safe against a response that raced it.
///
/// The waiter count lives inside the mutex so `fill` can skip the condvar
/// notification entirely when nobody is blocked — the overwhelmingly
/// common case under pipelined load, where responses land long before the
/// producer reaches its `wait` call. A waiter registers itself under the
/// same lock before blocking, so `fill` can never miss one.
pub(crate) struct ResponseCell<R> {
    slot: Mutex<Slot<R>>,
    cv: Condvar,
}

struct Slot<R> {
    value: Option<Result<R, StoreError>>,
    waiters: u32,
}

impl<R: Clone> ResponseCell<R> {
    pub(crate) fn new() -> ResponseCell<R> {
        ResponseCell {
            slot: Mutex::new(Slot {
                value: None,
                waiters: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Fills the cell if still empty and wakes every waiter.
    pub(crate) fn fill(&self, result: Result<R, StoreError>) {
        let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        if slot.value.is_none() {
            slot.value = Some(result);
            if slot.waiters > 0 {
                self.cv.notify_all();
            }
        }
    }

    fn read(&self) -> Option<Result<R, StoreError>> {
        self.slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .value
            .clone()
    }

    fn wait(&self) -> Result<R, StoreError> {
        let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = slot.value.as_ref() {
                return result.clone();
            }
            slot.waiters += 1;
            slot = self.cv.wait(slot).unwrap_or_else(PoisonError::into_inner);
            slot.waiters -= 1;
        }
    }

    fn wait_timeout(&self, timeout: Duration) -> Result<R, StoreError> {
        let deadline = clock::deadline_within(timeout);
        let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = slot.value.as_ref() {
                return result.clone();
            }
            let now = clock::now();
            if now >= deadline {
                return Err(StoreError::Timeout);
            }
            slot.waiters += 1;
            let (next, _) = self
                .cv
                .wait_timeout(slot, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            slot = next;
            slot.waiters -= 1;
        }
    }
}

/// A handle on one submitted command's eventual response.
///
/// The response is released when the apply worker applies the command
/// (or serves it from the session table's duplicate cache) — never
/// earlier, which is what makes lease-gated fast reads linearizable.
pub struct CommandHandle<R> {
    cell: Arc<ResponseCell<R>>,
}

impl<R: Clone> CommandHandle<R> {
    pub(crate) fn new(cell: Arc<ResponseCell<R>>) -> CommandHandle<R> {
        CommandHandle { cell }
    }

    /// The response if it already arrived, without blocking.
    pub fn poll(&self) -> Option<Result<R, StoreError>> {
        self.cell.read()
    }

    /// Blocks until the command is applied and its response released.
    ///
    /// # Errors
    ///
    /// [`StoreError::Stale`] when the sequence number predates the
    /// session's cache; [`StoreError::Shutdown`] /
    /// [`StoreError::Ordering`] when the store tore down or the consensus
    /// path failed before the command could be applied.
    pub fn wait(&self) -> Result<R, StoreError> {
        self.cell.wait()
    }

    /// Blocks until the response arrives or `timeout` elapses — computed
    /// through the shared [`clock`](mc_runtime::clock) helper, like every
    /// deadline in the runtime.
    ///
    /// # Errors
    ///
    /// [`StoreError::Timeout`] when the wait elapsed (the command is
    /// still in flight; waiting again can succeed), otherwise as
    /// [`wait`](CommandHandle::wait).
    pub fn wait_timeout(&self, timeout: Duration) -> Result<R, StoreError> {
        self.cell.wait_timeout(timeout)
    }
}

impl<R> std::fmt::Debug for CommandHandle<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = if self
            .cell
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .value
            .is_some()
        {
            "done"
        } else {
            "waiting"
        };
        f.debug_struct("CommandHandle")
            .field("state", &state)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_fill_wins_and_wakes_waiters() {
        let cell = Arc::new(ResponseCell::<u64>::new());
        let handle = CommandHandle::new(Arc::clone(&cell));
        assert!(handle.poll().is_none());
        let waiter = {
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || cell.wait())
        };
        cell.fill(Ok(7));
        cell.fill(Err(StoreError::Shutdown));
        assert_eq!(waiter.join().unwrap(), Ok(7));
        assert_eq!(handle.wait(), Ok(7), "second fill was ignored");
    }

    #[test]
    fn wait_timeout_expires_then_succeeds_on_a_late_fill() {
        let cell = Arc::new(ResponseCell::<u64>::new());
        let handle = CommandHandle::new(Arc::clone(&cell));
        assert_eq!(
            handle.wait_timeout(Duration::from_millis(5)),
            Err(StoreError::Timeout)
        );
        cell.fill(Ok(3));
        assert_eq!(handle.wait_timeout(Duration::from_millis(5)), Ok(3));
    }
}
