//! The reference state machine: a linearizable `u64 → u64` map.

use crate::hash::FastMap;
use crate::machine::StateMachine;

/// One KV operation. `u64` keys and values keep the machine allocation-
/// free on the apply hot path; layer your own encoding on top (the
/// [`TypedConsensus`](mc_runtime::TypedConsensus) pattern) for richer
/// types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvCommand {
    /// Reads `key` (through the log — the slow, always-linearizable path;
    /// see [`ReplicatedStore::read_with`](crate::ReplicatedStore::read_with)
    /// for the lease-gated fast path).
    Get {
        /// Key to read.
        key: u64,
    },
    /// Sets `key` to `value`.
    Put {
        /// Key to write.
        key: u64,
        /// Value to store.
        value: u64,
    },
    /// Sets `key` to `value` iff the current value equals `expect`
    /// (`None` = key absent).
    Cas {
        /// Key to update.
        key: u64,
        /// Required current value (`None`: key must be absent).
        expect: Option<u64>,
        /// Value to store when the comparison holds.
        value: u64,
    },
    /// Removes `key`.
    Delete {
        /// Key to remove.
        key: u64,
    },
}

/// What one [`KvCommand`] returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvResponse {
    /// `Get`: the value, or `None` when absent.
    Value(Option<u64>),
    /// `Put`: the previous value, or `None` when the key was fresh.
    Stored(Option<u64>),
    /// `Cas`: whether the swap applied, and the value actually found.
    Swapped {
        /// `true` iff the comparison held and the write landed.
        applied: bool,
        /// The value observed at comparison time.
        actual: Option<u64>,
    },
    /// `Delete`: the removed value, or `None` when the key was absent.
    Removed(Option<u64>),
}

/// The reference [`StateMachine`]: a hash map from `u64` to `u64`.
///
/// Replicated through a [`ReplicatedStore`](crate::ReplicatedStore) it is
/// a linearizable KV service; standalone it doubles as the sequential
/// specification the lab's conformance check replays commands against.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KvStore {
    map: FastMap<u64, u64>,
}

impl KvStore {
    /// An empty map.
    pub fn new() -> KvStore {
        KvStore::default()
    }

    /// Direct read of `key` — used by lease-gated fast reads, where the
    /// closure runs against the applied state.
    pub fn get(&self, key: u64) -> Option<u64> {
        self.map.get(&key).copied()
    }

    /// Number of keys present.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl StateMachine for KvStore {
    type Command = KvCommand;
    type Response = KvResponse;
    /// Sorted key/value pairs: deterministic, directly comparable in
    /// round-trip tests.
    type Snapshot = Vec<(u64, u64)>;

    fn apply(&mut self, command: &KvCommand) -> KvResponse {
        match *command {
            KvCommand::Get { key } => KvResponse::Value(self.map.get(&key).copied()),
            KvCommand::Put { key, value } => KvResponse::Stored(self.map.insert(key, value)),
            KvCommand::Cas { key, expect, value } => {
                let actual = self.map.get(&key).copied();
                let applied = actual == expect;
                if applied {
                    self.map.insert(key, value);
                }
                KvResponse::Swapped { applied, actual }
            }
            KvCommand::Delete { key } => KvResponse::Removed(self.map.remove(&key)),
        }
    }

    fn snapshot(&self) -> Vec<(u64, u64)> {
        let mut pairs: Vec<(u64, u64)> = self.map.iter().map(|(&k, &v)| (k, v)).collect();
        pairs.sort_unstable();
        pairs
    }

    fn restore(snapshot: &Vec<(u64, u64)>) -> KvStore {
        KvStore {
            map: snapshot.iter().copied().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_apply_with_their_documented_responses() {
        let mut kv = KvStore::new();
        assert_eq!(
            kv.apply(&KvCommand::Get { key: 1 }),
            KvResponse::Value(None)
        );
        assert_eq!(
            kv.apply(&KvCommand::Put { key: 1, value: 10 }),
            KvResponse::Stored(None)
        );
        assert_eq!(
            kv.apply(&KvCommand::Put { key: 1, value: 11 }),
            KvResponse::Stored(Some(10))
        );
        assert_eq!(
            kv.apply(&KvCommand::Cas {
                key: 1,
                expect: Some(11),
                value: 12
            }),
            KvResponse::Swapped {
                applied: true,
                actual: Some(11)
            }
        );
        assert_eq!(
            kv.apply(&KvCommand::Cas {
                key: 1,
                expect: Some(11),
                value: 13
            }),
            KvResponse::Swapped {
                applied: false,
                actual: Some(12)
            }
        );
        assert_eq!(
            kv.apply(&KvCommand::Delete { key: 1 }),
            KvResponse::Removed(Some(12))
        );
        assert_eq!(
            kv.apply(&KvCommand::Delete { key: 1 }),
            KvResponse::Removed(None)
        );
        assert!(kv.is_empty());
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let mut kv = KvStore::new();
        for k in 0..100 {
            kv.apply(&KvCommand::Put {
                key: k,
                value: k * 3,
            });
        }
        kv.apply(&KvCommand::Delete { key: 50 });
        let snap = kv.snapshot();
        let mut restored = KvStore::restore(&snap);
        assert_eq!(restored, kv);
        // And the restored machine behaves identically going forward.
        assert_eq!(
            restored.apply(&KvCommand::Get { key: 49 }),
            kv.apply(&KvCommand::Get { key: 49 })
        );
        assert_eq!(restored.snapshot(), kv.snapshot());
    }
}
