//! A linearizable replicated state machine on the consensus runtime —
//! the paper's repeated-consensus composition (Corollary 4) turned into a
//! workload layer.
//!
//! The stack below this crate agrees on *one value at a time*:
//! [`ConsensusService`](mc_runtime::ConsensusService) pipelines one-shot
//! instances, [`ReplicatedLog`](mc_runtime::ReplicatedLog) strings their
//! decisions into totally-ordered slots. This crate closes the loop the
//! consensus problem exists for: a deterministic [`StateMachine`] applied
//! in slot order on every replica is a linearizable shared object, and
//! every operation — `get`, `put`, `cas` — is one command in the log.
//!
//! # The pieces
//!
//! - [`StateMachine`]: deterministic `apply`, plus snapshot/restore hooks.
//! - [`KvStore`]: the reference machine — a linearizable `u64 → u64` map
//!   with `get`/`put`/`cas`/`delete`.
//! - [`ReplicatedStore`]: orders commands through a [`ConsensusService`]
//!   into [`ReplicatedLog`] slots (batch at a time — group commit), applies
//!   the learned prefix on a dedicated apply worker, and answers each
//!   command exactly once via a viewstamped-replication-style session
//!   table (client id + per-session sequence number; duplicates return the
//!   cached response, never a re-apply).
//! - [`StoreClient`]: a client session — owns the client id, stamps
//!   sequence numbers, supports explicit duplicate [`resend`] for retry.
//! - Lease-gated fast reads ([`ReplicatedStore::read_with`]): served from
//!   the applied state without a log slot. Linearizable because a
//!   command's response is only released *at apply time*, so everything a
//!   caller could have observed complete is already in the applied state.
//!
//! [`ConsensusService`]: mc_runtime::ConsensusService
//! [`ReplicatedLog`]: mc_runtime::ReplicatedLog
//! [`resend`]: StoreClient::resend
//!
//! # Quickstart
//!
//! ```
//! use mc_store::{KvCommand, KvResponse, KvStore, ReplicatedStore};
//!
//! let mut store = ReplicatedStore::<KvStore>::builder().build();
//! let mut client = store.client();
//! client.call(KvCommand::Put { key: 7, value: 1 }).unwrap();
//! assert_eq!(
//!     client.call(KvCommand::Get { key: 7 }).unwrap(),
//!     KvResponse::Value(Some(1))
//! );
//! // Lease-gated fast read: no log slot consumed.
//! assert_eq!(client.read(|kv: &KvStore| kv.get(7)), Some(1));
//! store.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod cell;
mod error;
mod hash;
mod kv;
mod machine;
mod store;

pub use builder::{StoreBuilder, StoreOptions};
pub use cell::CommandHandle;
pub use error::StoreError;
pub use kv::{KvCommand, KvResponse, KvStore};
pub use machine::StateMachine;
pub use store::{ReplicatedStore, StoreClient};
